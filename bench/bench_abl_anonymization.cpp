// Ablation: anonymization mode (DESIGN.md section 5).
//
// The paper's ethics setup hashes IP addresses before analysis (§2.1).
// This ablation verifies that the analyses the paper runs are invariant
// under both anonymization modes -- AS/port-level aggregates use the
// exporter's AS annotations, unique-IP counts survive because both modes
// are injective -- and measures the anonymization cost.
#include "analysis/class_activity.hpp"
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using flow::AnonymizationMode;
using net::Date;
using net::TimeRange;
using synth::VantagePointId;

struct Measurement {
  double total_bytes = 0;
  std::size_t gaming_unique_ips = 0;
};

Measurement measure(const flow::Anonymizer* anonymizer) {
  const auto ixp = synth::build_vantage(VantagePointId::kIxpSe, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();
  analysis::ClassActivityTracker tracker(classifier, view,
                                         analysis::AppClass::kGaming);
  double bytes = 0.0;

  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 500});
  flow::ExportPump pump(ixp.protocol,
                        [&](const flow::FlowRecord& r) {
                          bytes += static_cast<double>(r.bytes);
                          tracker.add(r);
                        },
                        anonymizer);
  synth.synthesize(TimeRange::day_of(Date(2020, 3, 25)), pump.as_sink());
  pump.flush();

  Measurement m;
  m.total_bytes = bytes;
  for (const auto& point : tracker.hourly()) m.gaming_unique_ips += point.unique_ips;
  return m;
}

void print_reproduction() {
  std::cout << "=== Ablation: anonymization modes (ethics pipeline, §2.1) ===\n\n";

  const flow::Anonymizer full({0xfeed, 0xbeef}, AnonymizationMode::kFullHash);
  const flow::Anonymizer prefix({0xfeed, 0xbeef},
                                AnonymizationMode::kPrefixPreserving);

  const Measurement raw = measure(nullptr);
  const Measurement hashed = measure(&full);
  const Measurement preserved = measure(&prefix);

  util::Table table({"mode", "total bytes", "gaming unique-IP hour-sum"});
  table.add_row({"none", util::format_bytes(raw.total_bytes),
                 std::to_string(raw.gaming_unique_ips)});
  table.add_row({"full hash (Feistel)", util::format_bytes(hashed.total_bytes),
                 std::to_string(hashed.gaming_unique_ips)});
  table.add_row({"prefix-preserving", util::format_bytes(preserved.total_bytes),
                 std::to_string(preserved.gaming_unique_ips)});
  std::cout << table << "\n";
  std::cout << "(takeaway: volumes are identical by construction and unique-IP\n"
            << " counts match exactly because both modes are bijections --\n"
            << " the paper's on-premise hashing does not distort any analysis\n"
            << " reproduced here)\n\n";
}

void BM_Abl_AnonymizeRecord(benchmark::State& state) {
  const flow::Anonymizer anon({1, 2}, static_cast<AnonymizationMode>(state.range(0)));
  flow::FlowRecord r;
  r.src_addr = net::Ipv4Address(10, 1, 2, 3);
  r.dst_addr = net::Ipv4Address(100, 64, 3, 7);
  for (auto _ : state) {
    flow::FlowRecord copy = r;
    anon.anonymize(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Abl_AnonymizeRecord)
    ->Arg(static_cast<int>(AnonymizationMode::kFullHash))
    ->Arg(static_cast<int>(AnonymizationMode::kPrefixPreserving));

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
