// Ablation: exact vs sketched unique-IP counting (Fig 8's metric).
//
// The paper counts distinct IP addresses per hour as a household proxy.
// Exact sets are fine at our synthetic scale but not at a multi-Tbps IXP;
// this ablation replays the Fig 8 gaming analysis with HyperLogLog
// sketches at several precisions and reports the error on the headline
// ratio (lockdown vs before) plus memory/time costs.
#include <set>

#include "analysis/app_filter.hpp"
#include "bench_common.hpp"
#include "net/ip.hpp"
#include "stats/hyperloglog.hpp"
#include "util/rng.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

struct HourCounts {
  std::set<std::size_t> exact;
  std::vector<stats::HyperLogLog> sketches;
};

void print_reproduction() {
  std::cout << "=== Ablation: exact vs HyperLogLog unique-IP counting ===\n"
            << "(the Fig 8 gaming unique-IP metric at IXP-SE)\n\n";

  const auto ixp = synth::build_vantage(VantagePointId::kIxpSe, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();
  const std::vector<unsigned> precisions = {8, 10, 12, 14};

  // Two comparison days: one pre-lockdown, one during.
  const Date days[] = {Date(2020, 2, 19), Date(2020, 3, 25)};
  double exact_total[2] = {0, 0};
  std::vector<std::array<double, 2>> sketch_total(precisions.size(), {0, 0});

  for (int d = 0; d < 2; ++d) {
    std::map<std::int64_t, HourCounts> hours;
    run_pipeline(ixp, TimeRange::day_of(days[d]), 1500,
                 [&](const flow::FlowRecord& r) {
                   if (classifier.classify(r, view) != analysis::AppClass::kGaming) {
                     return;
                   }
                   auto& hc = hours[r.first.floor_hour().seconds()];
                   if (hc.sketches.empty()) {
                     for (const unsigned p : precisions) hc.sketches.emplace_back(p);
                   }
                   const net::IpAddressHash hash;
                   for (const auto& addr : {r.src_addr, r.dst_addr}) {
                     const std::size_t h = hash(addr);
                     hc.exact.insert(h);
                     for (auto& sk : hc.sketches) sk.add_hash(h);
                   }
                 });
    for (const auto& [hour, hc] : hours) {
      exact_total[d] += static_cast<double>(hc.exact.size());
      for (std::size_t i = 0; i < precisions.size(); ++i) {
        sketch_total[i][d] += hc.sketches[i].estimate();
      }
    }
  }

  const double exact_ratio = exact_total[1] / exact_total[0];
  util::Table table({"method", "memory/hour", "pre-lockdown IPs",
                     "lockdown IPs", "growth ratio", "ratio error"});
  table.add_row({"exact set", "O(n) * 8B", fmt(exact_total[0], 0),
                 fmt(exact_total[1], 0), fmt(exact_ratio), "--"});
  for (std::size_t i = 0; i < precisions.size(); ++i) {
    const double ratio = sketch_total[i][1] / sketch_total[i][0];
    table.add_row({"HLL p=" + std::to_string(precisions[i]),
                   std::to_string(1u << precisions[i]) + " B",
                   fmt(sketch_total[i][0], 0), fmt(sketch_total[i][1], 0),
                   fmt(ratio), pct(100 * (ratio - exact_ratio) / exact_ratio)});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: a 4 KiB sketch per hour reproduces the Fig 8 growth\n"
            << " ratio within ~2%; the analysis does not require exact sets)\n\n";
}

void BM_Abl_ExactVsHll(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<std::size_t> hashes(100000);
  for (auto& h : hashes) h = static_cast<std::size_t>(rng.engine()());
  const bool use_hll = state.range(0) != 0;
  for (auto _ : state) {
    if (use_hll) {
      stats::HyperLogLog hll(12);
      for (const auto h : hashes) hll.add_hash(h);
      benchmark::DoNotOptimize(hll.estimate());
    } else {
      std::set<std::size_t> exact(hashes.begin(), hashes.end());
      benchmark::DoNotOptimize(exact.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hashes.size()));
}
BENCHMARK(BM_Abl_ExactVsHll)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
