// Ablation: pattern-classifier aggregation window (DESIGN.md section 5).
//
// The paper classifies days from 6-hour bins. This sweep re-runs Fig 2's
// classification with 1/2/3/4/6/12-hour bins and reports (a) agreement
// with actual day types before the lockdown and (b) the fraction of
// post-lockdown days classified weekend-like.
#include "analysis/pattern.hpp"
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Ablation: workday/weekend classifier bin width ===\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 1, 1)),
                         Timestamp::from_date(Date(2020, 5, 12))},
               220, agg.sink());

  util::Table table({"bin width", "pre-lockdown agreement",
                     "post-lockdown weekend-like"});
  for (const unsigned bin_hours : {1u, 2u, 3u, 4u, 6u, 12u}) {
    analysis::PatternClassifier classifier(bin_hours);
    classifier.train(agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                             Timestamp::from_date(Date(2020, 2, 29))});
    const auto days = classifier.classify(
        agg.series(), TimeRange{Timestamp::from_date(Date(2020, 1, 7)),
                                Timestamp::from_date(Date(2020, 5, 12))});
    std::size_t pre_agree = 0, pre_total = 0, post_weekend = 0, post_total = 0;
    for (const auto& day : days) {
      if (day.date < Date(2020, 3, 16)) {
        ++pre_total;
        pre_agree += day.agrees() ? 1 : 0;
      } else {
        ++post_total;
        post_weekend += day.classified == analysis::DayPattern::kWeekendLike ? 1 : 0;
      }
    }
    table.add_row({std::to_string(bin_hours) + "h",
                   fmt(100.0 * pre_agree / pre_total, 1) + "%",
                   fmt(100.0 * post_weekend / post_total, 1) + "%"});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: the result is robust across bin widths; 6h -- the\n"
            << " paper's choice -- is the coarsest setting that still keeps\n"
            << " pre-lockdown agreement high, at a quarter of the feature size)\n\n";
}

void BM_Abl_ClassifierBins(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                         Timestamp::from_date(Date(2020, 4, 1))},
               200, agg.sink());
  for (auto _ : state) {
    analysis::PatternClassifier classifier(static_cast<unsigned>(state.range(0)));
    classifier.train(agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                             Timestamp::from_date(Date(2020, 2, 29))});
    benchmark::DoNotOptimize(classifier.classify(
        agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                Timestamp::from_date(Date(2020, 4, 1))}));
  }
}
BENCHMARK(BM_Abl_ClassifierBins)->Arg(1)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
