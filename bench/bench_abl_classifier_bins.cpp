// Ablation: pattern-classifier aggregation window (DESIGN.md section 5),
// plus the app-classifier compilation ablation (DESIGN.md section 9):
// flat-table classify() vs the interpreted classify_reference() scan on
// identical traffic.
//
// The paper classifies days from 6-hour bins. This sweep re-runs Fig 2's
// classification with 1/2/3/4/6/12-hour bins and reports (a) agreement
// with actual day types before the lockdown and (b) the fraction of
// post-lockdown days classified weekend-like.
#include <chrono>

#include "analysis/app_filter.hpp"
#include "analysis/pattern.hpp"
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_app_classifier_ablation();

void print_reproduction() {
  std::cout << "=== Ablation: workday/weekend classifier bin width ===\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 1, 1)),
                         Timestamp::from_date(Date(2020, 5, 12))},
               220, agg.sink());

  util::Table table({"bin width", "pre-lockdown agreement",
                     "post-lockdown weekend-like"});
  for (const unsigned bin_hours : {1u, 2u, 3u, 4u, 6u, 12u}) {
    analysis::PatternClassifier classifier(bin_hours);
    classifier.train(agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                             Timestamp::from_date(Date(2020, 2, 29))});
    const auto days = classifier.classify(
        agg.series(), TimeRange{Timestamp::from_date(Date(2020, 1, 7)),
                                Timestamp::from_date(Date(2020, 5, 12))});
    std::size_t pre_agree = 0, pre_total = 0, post_weekend = 0, post_total = 0;
    for (const auto& day : days) {
      if (day.date < Date(2020, 3, 16)) {
        ++pre_total;
        pre_agree += day.agrees() ? 1 : 0;
      } else {
        ++post_total;
        post_weekend += day.classified == analysis::DayPattern::kWeekendLike ? 1 : 0;
      }
    }
    table.add_row({std::to_string(bin_hours) + "h",
                   fmt(100.0 * pre_agree / pre_total, 1) + "%",
                   fmt(100.0 * post_weekend / post_total, 1) + "%"});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: the result is robust across bin widths; 6h -- the\n"
            << " paper's choice -- is the coarsest setting that still keeps\n"
            << " pre-lockdown agreement high, at a quarter of the feature size)\n\n";

  print_app_classifier_ablation();
}

/// Flat vs reference app classification on one synthesized lockdown day:
/// both paths must agree flow for flow, and the compiled tables must beat
/// the scan by the acceptance bar (>= 5x).
void print_app_classifier_ablation() {
  std::cout << "=== Ablation: compiled vs interpreted app classification ===\n\n";

  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 800});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 25)));
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();

  std::size_t agree = 0;
  for (const auto& r : records) {
    agree += classifier.classify(r, view) == classifier.classify_reference(r, view)
                 ? 1
                 : 0;
  }

  const auto time_ns_per_rec = [&](auto&& classify_fn) {
    constexpr int kReps = 20;
    std::size_t hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      for (const auto& r : records) hits += classify_fn(r).has_value() ? 1 : 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(hits);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (kReps * static_cast<double>(records.size()));
  };
  const double flat = time_ns_per_rec(
      [&](const flow::FlowRecord& r) { return classifier.classify(r, view); });
  const double ref = time_ns_per_rec([&](const flow::FlowRecord& r) {
    return classifier.classify_reference(r, view);
  });

  util::Table table({"path", "ns/record", "agreement"});
  table.add_row({"reference scan", fmt(ref, 1),
                 std::to_string(agree) + "/" + std::to_string(records.size())});
  table.add_row({"flat tables", fmt(flat, 1), "(same by construction)"});
  std::cout << table << "\n";
  std::cout << "speedup: " << fmt(ref / flat, 2) << "x (acceptance bar: >= 5x)\n\n";
}

void BM_Abl_ClassifierBins(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                         Timestamp::from_date(Date(2020, 4, 1))},
               200, agg.sink());
  for (auto _ : state) {
    analysis::PatternClassifier classifier(static_cast<unsigned>(state.range(0)));
    classifier.train(agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                             Timestamp::from_date(Date(2020, 2, 29))});
    benchmark::DoNotOptimize(classifier.classify(
        agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                Timestamp::from_date(Date(2020, 4, 1))}));
  }
}
BENCHMARK(BM_Abl_ClassifierBins)->Arg(1)->Arg(6)->Unit(benchmark::kMicrosecond);

struct AppClassifyFixture {
  AppClassifyFixture()
      : view(registry().trie()), classifier(analysis::AppClassifier::table1()) {
    const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                          {.seed = 42});
    const synth::FlowSynthesizer synth(ixp.model, registry(),
                                       {.connections_per_hour = 500});
    records = synth.collect(TimeRange::day_of(Date(2020, 3, 25)));
  }
  analysis::AsView view;
  analysis::AppClassifier classifier;
  std::vector<flow::FlowRecord> records;
};

const AppClassifyFixture& app_fixture() {
  static const AppClassifyFixture f;
  return f;
}

void BM_AppClassify_Flat(benchmark::State& state) {
  const auto& f = app_fixture();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& r : f.records) {
      hits += f.classifier.classify(r, f.view).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AppClassify_Flat)->Unit(benchmark::kMillisecond);

void BM_AppClassify_Reference(benchmark::State& state) {
  const auto& f = app_fixture();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& r : f.records) {
      hits += f.classifier.classify_reference(r, f.view).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AppClassify_Reference)->Unit(benchmark::kMillisecond);

void BM_AppClassify_Batch(benchmark::State& state) {
  const auto& f = app_fixture();
  std::vector<std::optional<synth::AppClass>> out(f.records.size());
  for (auto _ : state) {
    f.classifier.classify_batch(f.records, f.view, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AppClassify_Batch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
