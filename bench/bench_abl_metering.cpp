// Ablation: router flow-cache sizing under lockdown load.
//
// The paper's §9 notes operators feared instability from the traffic
// shifts. One concrete mechanism is metering-cache pressure: more
// simultaneously active users means more concurrent flows; an undersized
// flow table evicts entries early and inflates the record count (same
// bytes, more records, heavier collectors). This ablation converts a
// synthesized lockdown-evening hour into a packet stream, runs it through
// MeteringCache at several table sizes, and reports eviction rate and
// record inflation. Byte conservation holds at every size by construction.
#include "bench_common.hpp"
#include "flow/metering.hpp"
#include "util/rng.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

/// Expand flow records into interleaved, time-ordered packet observations.
std::vector<flow::PacketObservation> packetize(
    const std::vector<flow::FlowRecord>& records, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<flow::PacketObservation> packets;
  for (const auto& r : records) {
    // Up to 12 packets per record, spread over [first, last].
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(12, std::max<std::uint64_t>(1, r.packets)));
    const std::int64_t span =
        std::max<std::int64_t>(1, r.last.seconds() - r.first.seconds());
    std::uint64_t remaining = r.bytes;
    for (std::uint32_t i = 0; i < n; ++i) {
      flow::PacketObservation p;
      p.src_addr = r.src_addr;
      p.dst_addr = r.dst_addr;
      p.src_port = r.src_port;
      p.dst_port = r.dst_port;
      p.protocol = r.protocol;
      p.tcp_flags = r.tcp_flags;
      const std::uint64_t share =
          i + 1 == n ? remaining : std::min<std::uint64_t>(remaining, r.bytes / n);
      p.bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(share, 0xffffffffULL));
      remaining -= share;
      p.timestamp = r.first.plus(static_cast<std::int64_t>(
          rng.uniform_u64(static_cast<std::uint64_t>(span))));
      packets.push_back(p);
    }
  }
  std::sort(packets.begin(), packets.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return packets;
}

void print_reproduction() {
  std::cout << "=== Ablation: metering flow-cache sizing under lockdown load ===\n\n";

  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 8000});
  const auto records = synth.collect(
      TimeRange{net::Timestamp::from_date(Date(2020, 3, 25), 20),
                net::Timestamp::from_date(Date(2020, 3, 25), 21)});
  const auto packets = packetize(records, 7);
  std::cout << packets.size() << " packets from " << records.size()
            << " ground-truth records (one lockdown-evening hour at IXP-CE)\n\n";

  util::Table table({"cache entries", "records exported", "inflation",
                     "evictions", "idle", "active"});
  for (const std::size_t entries : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    std::size_t exported = 0;
    std::uint64_t bytes = 0;
    flow::MeteringCache cache({.idle_timeout_seconds = 15,
                               .active_timeout_seconds = 120,
                               .cache_entries = entries},
                              [&](const flow::FlowRecord& r) {
                                ++exported;
                                bytes += r.bytes;
                              });
    for (const auto& p : packets) cache.observe(p);
    cache.flush();
    table.add_row({std::to_string(entries), std::to_string(exported),
                   fmt(static_cast<double>(exported) / records.size()) + "x",
                   std::to_string(cache.stats().cache_evictions),
                   std::to_string(cache.stats().idle_expirations),
                   std::to_string(cache.stats().active_expirations)});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: undersized flow tables do not lose bytes -- they\n"
            << " inflate the record count via early evictions, which is what\n"
            << " a collector sees when lockdown load outgrows a router's\n"
            << " table; provisioning the cache is part of §9's story)\n\n";
}

void BM_Abl_MeteringThroughput(benchmark::State& state) {
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 400});
  const auto records = synth.collect(
      TimeRange{net::Timestamp::from_date(Date(2020, 3, 25), 20),
                net::Timestamp::from_date(Date(2020, 3, 25), 21)});
  const auto packets = packetize(records, 7);
  for (auto _ : state) {
    flow::MeteringCache cache(
        {.cache_entries = static_cast<std::size_t>(state.range(0))},
        [](const flow::FlowRecord&) {});
    for (const auto& p : packets) cache.observe(p);
    cache.flush();
    benchmark::DoNotOptimize(cache.stats().records_exported);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_Abl_MeteringThroughput)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
