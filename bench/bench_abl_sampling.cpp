// Ablation: flow sampling rate (DESIGN.md section 5).
//
// Real NetFlow deployments sample 1:100 - 1:10000. This ablation sweeps a
// systematic 1:N sampler over the ISP-CE pipeline and reports the error it
// induces on the Fig 1 headline (lockdown-week growth vs base week). The
// estimator is unbiased (sampled records carry scaled counters), so the
// growth estimate should stay centred with variance growing in N.
#include "analysis/volume.hpp"
#include "bench_common.hpp"
#include "flow/sampler.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

double measure_growth(std::uint32_t sampling_interval) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});

  auto week_total = [&](Date start) {
    flow::SystematicSampler sampler(sampling_interval);
    double total = 0.0;
    run_pipeline(isp, TimeRange::week_of(start), 600,
                 [&](const flow::FlowRecord& r) {
                   if (const auto kept = sampler.offer(r)) {
                     total += static_cast<double>(kept->bytes);
                   }
                 });
    return total;
  };
  const double base = week_total(Date(2020, 2, 19));
  const double lockdown = week_total(Date(2020, 3, 18));
  return 100.0 * (lockdown - base) / base;
}

void print_reproduction() {
  std::cout << "=== Ablation: systematic 1:N flow sampling ===\n"
            << "(effect on the measured lockdown-week growth at ISP-CE)\n\n";
  const double reference = measure_growth(1);
  util::Table table({"sampling", "measured growth", "error vs unsampled"});
  for (const std::uint32_t n : {1u, 2u, 10u, 50u, 200u, 1000u}) {
    const double g = measure_growth(n);
    table.add_row({"1:" + std::to_string(n), pct(g), pct(g - reference)});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: byte-scaled systematic sampling keeps the growth\n"
            << " estimate centred; only very aggressive sampling adds noise --\n"
            << " which is why the paper's vantage points can run sampled)\n\n";
}

void BM_Abl_SamplerOverhead(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 600});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  for (auto _ : state) {
    flow::SystematicSampler sampler(static_cast<std::uint32_t>(state.range(0)));
    double total = 0.0;
    for (const auto& r : records) {
      if (const auto kept = sampler.offer(r)) total += static_cast<double>(kept->bytes);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Abl_SamplerOverhead)->Arg(1)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
