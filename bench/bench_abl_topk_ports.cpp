// Ablation: exact vs Space-Saving top-port ranking (Fig 7's metric).
//
// The §4 "top 3-12 ports" query is a heavy-hitter problem. This ablation
// replays a lockdown week at the ISP-CE with bounded-memory Space-Saving
// sketches of several capacities and reports how much of the exact top-12
// (web ports excluded, as in the paper) each recovers.
#include <map>

#include "analysis/ports.hpp"
#include "bench_common.hpp"
#include "stats/space_saving.hpp"

namespace lockdown::bench {
namespace {

using flow::PortKey;
using flow::PortKeyHash;
using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Ablation: exact vs Space-Saving top-port ranking ===\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const TimeRange week = TimeRange::week_of(Date(2020, 3, 19));

  // Exact ranking via the Fig 7 analyzer.
  analysis::PortAnalyzer exact({week});
  // Sketched rankings.
  const std::vector<std::size_t> capacities = {16, 32, 64, 128};
  std::vector<stats::SpaceSaving<PortKey, PortKeyHash>> sketches;
  for (const auto c : capacities) sketches.emplace_back(c);

  // Batch delivery: one span per decoded datagram from the collector.
  run_pipeline_batches(isp, week, 900, [&](std::span<const flow::FlowRecord> batch) {
    for (const flow::FlowRecord& r : batch) {
      exact.add(r);
      const PortKey port = r.service_port();
      for (auto& s : sketches) s.add(port, static_cast<double>(r.bytes));
    }
  });

  const auto exact_top = exact.top_ports(12);

  util::Table table({"method", "counters", "top-12 recovered", "guaranteed"});
  table.add_row({"exact map", "all ports", "12/12", "12/12"});
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    // Query the sketch's full ranking, drop web ports like the paper.
    const auto ranked = sketches[i].top(capacities[i]);
    std::vector<PortKey> sketch_top;
    for (const auto& e : ranked) {
      if (e.key.proto == flow::IpProtocol::kTcp &&
          (e.key.port == 80 || e.key.port == 443)) {
        continue;
      }
      sketch_top.push_back(e.key);
      if (sketch_top.size() == 12) break;
    }
    std::size_t recovered = 0, guaranteed = 0;
    for (const auto& port : exact_top) {
      const bool in_top =
          std::find(sketch_top.begin(), sketch_top.end(), port) != sketch_top.end();
      recovered += in_top ? 1 : 0;
      guaranteed += sketches[i].guaranteed(port) ? 1 : 0;
    }
    table.add_row({"space-saving", std::to_string(capacities[i]),
                   std::to_string(recovered) + "/12",
                   std::to_string(guaranteed) + "/12"});
  }
  std::cout << table << "\n";
  std::cout << "(takeaway: 64 bounded counters recover the paper's entire\n"
            << " top-port set -- the Fig 7 analysis scales to key spaces far\n"
            << " larger than the 16-bit port space, e.g. per-prefix rankings)\n\n";
}

void BM_Abl_SpaceSavingThroughput(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 500});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  for (auto _ : state) {
    stats::SpaceSaving<PortKey, PortKeyHash> sketch(
        static_cast<std::size_t>(state.range(0)));
    for (const auto& r : records) {
      sketch.add(r.service_port(), static_cast<double>(r.bytes));
    }
    benchmark::DoNotOptimize(sketch.top(12));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Abl_SpaceSavingThroughput)->Arg(16)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
