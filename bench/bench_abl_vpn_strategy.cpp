// Ablation: VPN identification strategy (DESIGN.md section 5).
//
// Quantifies the paper's section 6 claim that port-only identification
// vastly undercounts VPN traffic: against the scenario's ground truth
// (which components are VPN), compare the traffic volume recovered by
// (a) ports only, (b) domains only, (c) both combined -- and the recall of
// the www-collision rule variants.
#include "analysis/vpn.hpp"
#include "bench_common.hpp"
#include "dns/corpus.hpp"
#include "dns/vpn_finder.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Ablation: VPN identification strategies ===\n\n";

  const auto corpus = dns::generate_corpus({.seed = 5, .organizations = 3000});
  const auto psl = dns::PublicSuffixList::builtin();
  const auto funnel = dns::VpnCandidateFinder(psl).find(corpus.domains, corpus.dns);

  synth::ScenarioConfig cfg{.seed = 42};
  cfg.vpn_tls_server_ips.assign(funnel.candidate_ips.begin(),
                                funnel.candidate_ips.end());
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(), cfg);

  // Ground truth from the scenario: every flow of a kVpnPort/kVpnTls
  // component is VPN. Measure per-strategy recovered volume during a
  // lockdown week.
  const TimeRange week = TimeRange::week_of(Date(2020, 3, 19));
  analysis::VpnAnalyzer analyzer({week}, funnel.candidate_ips);

  double truth = 0, port_found = 0, domain_found = 0, both_found = 0;
  const auto& vpn_tls = *ixp.model.find("vpn-tls");
  const auto& vpn_nat = *ixp.model.find("vpn-nat-traversal");
  const auto& vpn_gre = *ixp.model.find("vpn-site-tunnels");
  for (net::Timestamp h = week.begin; h < week.end; h = h.plus(3600)) {
    truth += ixp.model.expected_bytes(vpn_tls, h) +
             ixp.model.expected_bytes(vpn_nat, h) +
             ixp.model.expected_bytes(vpn_gre, h);
  }
  run_pipeline(ixp, week, 900, [&](const flow::FlowRecord& r) {
    const bool port = analysis::VpnAnalyzer::is_port_vpn(r);
    const bool domain = analyzer.is_domain_vpn(r);
    const auto bytes = static_cast<double>(r.bytes);
    if (port) port_found += bytes;
    if (domain) domain_found += bytes;
    if (port || domain) both_found += bytes;
  });

  util::Table table({"strategy", "VPN bytes recovered", "share of ground truth"});
  table.add_row({"ports only", util::format_bytes(port_found),
                 fmt(100 * port_found / truth, 1) + "%"});
  table.add_row({"domains only", util::format_bytes(domain_found),
                 fmt(100 * domain_found / truth, 1) + "%"});
  table.add_row({"combined (paper)", util::format_bytes(both_found),
                 fmt(100 * both_found / truth, 1) + "%"});
  table.add_row({"ground truth", util::format_bytes(truth), "100.0%"});
  std::cout << table << "\n";

  // The www rule's effect on the candidate set.
  std::cout << "Candidate funnel variants:\n";
  std::cout << "  without www rule: " << funnel.resolved_ips << " candidate IPs ("
            << funnel.eliminated_shared_ips
            << " of them are shared web front ends -> false positives)\n";
  std::cout << "  with www rule:    " << funnel.candidate_ips.size()
            << " candidate IPs (conservative, like the paper)\n";
  std::cout << "  port-only VPN servers invisible to the domain method: "
            << corpus.portonly_vpn_ips.size() << "\n\n";
  std::cout << "(takeaway: the paper's combined method is the only one that\n"
            << " recovers the VPN-over-TLS volume that drives the lockdown\n"
            << " signal; port-only identification misses it entirely)\n\n";
}

void BM_Abl_VpnClassify(benchmark::State& state) {
  const auto corpus = dns::generate_corpus({.seed = 5, .organizations = 1000});
  const auto psl = dns::PublicSuffixList::builtin();
  const auto funnel = dns::VpnCandidateFinder(psl).find(corpus.domains, corpus.dns);
  synth::ScenarioConfig cfg{.seed = 42};
  cfg.vpn_tls_server_ips.assign(funnel.candidate_ips.begin(),
                                funnel.candidate_ips.end());
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(), cfg);
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 500});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  const analysis::VpnAnalyzer analyzer({TimeRange::day_of(Date(2020, 3, 20))},
                                       funnel.candidate_ips);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& r : records) {
      hits += analysis::VpnAnalyzer::is_port_vpn(r) || analyzer.is_domain_vpn(r);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Abl_VpnClassify)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
