// Columnar batched analysis kernels + parallel slice-scan engine
// (DESIGN.md §15): the cost of running the full figure-aggregator set over
// one record stream, three ways.
//
//   BM_AnalysisPerRecord    the seed path: one type-erased std::function
//                           sink call per (record, aggregator), every
//                           aggregator re-deriving service keys, endpoint
//                           ASes and calendar facts per record.
//   BM_AnalysisBatchColumns the columnar path: FlowColumns built once per
//                           4096-record chunk, every aggregator's
//                           add_batch() reading the shared columns.
//   BM_AnalysisScan/N       the batch path sharded over N ScanEngine
//                           worker lanes with thread-local aggregator
//                           bundles and a deterministic merge (output is
//                           bit-identical for every N).
//
// print_reproduction() cross-checks all three paths produce identical
// figures before anything is timed.
#include <optional>
#include <set>
#include <span>

#include "analysis/app_filter.hpp"
#include "analysis/export.hpp"
#include "analysis/hypergiants.hpp"
#include "analysis/ports.hpp"
#include "analysis/scan.hpp"
#include "analysis/volume.hpp"
#include "analysis/vpn.hpp"
#include "bench_common.hpp"
#include "filter/plan.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

const std::vector<TimeRange>& analysis_weeks() {
  static const std::vector<TimeRange> weeks = {
      TimeRange::week_of(Date(2020, 2, 20)), TimeRange::week_of(Date(2020, 3, 12)),
      TimeRange::week_of(Date(2020, 4, 23))};
  return weeks;
}

/// Monitoring-object volume filters riding on the scan: one per traffic
/// class of interest, mirroring the Table 1 / DESIGN.md §12 monitoring
/// inventory scale (web, QUIC, VPN, conferencing, email, push, gaming,
/// hypergiants, education). The per-record reference bundle evaluates them
/// as interpreted std::function filters (CompiledFilter::match_reference,
/// the seed's type-erased per-record filter cost); the columnar bundle
/// uses the same filters as compiled FilterPlan masks over the shared
/// columns.
const std::vector<filter::CompiledFilter>& monitor_filters() {
  static const std::vector<filter::CompiledFilter> filters = [] {
    const char* sources[] = {
        "proto tcp and port 443,80",
        "proto udp and port 443",
        "proto udp and port 500,4500,1194 or proto 47,50",
        "proto udp and port 3478,5004,8801,9000 or proto tcp and port 5222,8801",
        "proto tcp and port 25,110,143,465,587,993,995",
        "proto tcp and port 5223,5228",
        "proto udp and port 3074,27015,27031,25565,60000",
        "asn 15169,20940,2906,32934,13335",
    };
    std::vector<filter::CompiledFilter> f;
    const filter::AsnTrie* trie = &registry().trie();
    for (const char* src : sources) {
      f.push_back(filter::CompiledFilter::compile(src, trie));
    }
    return f;
  }();
  return filters;
}

/// The figure aggregators lockdown_report/figure_export run per stream,
/// plus the monitoring-object volumes, as one scan bundle (the ScanEngine
/// Bundle concept).
struct AnalysisBundle {
  analysis::VolumeAggregator volume;
  analysis::PortAnalyzer ports;
  analysis::HypergiantAnalyzer hyper;
  analysis::ClassHeatmap heatmap;
  analysis::VpnAnalyzer vpn;
  std::vector<analysis::VolumeAggregator> monitors;

  void add(const flow::FlowRecord& r) {
    volume.add(r);
    ports.add(r);
    hyper.add(r);
    heatmap.add(r);
    vpn.add(r);
    for (auto& m : monitors) m.add(r);
  }

  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols) {
    volume.add_batch(records, cols);
    ports.add_batch(records, cols);
    hyper.add_batch(records, cols);
    heatmap.add_batch(records, cols);
    vpn.add_batch(records, cols);
    for (auto& m : monitors) m.add_batch(records, cols);
  }

  void merge(const AnalysisBundle& o) {
    volume.merge(o.volume);
    ports.merge(o.ports);
    hyper.merge(o.hyper);
    heatmap.merge(o.heatmap);
    vpn.merge(o.vpn);
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      monitors[i].merge(o.monitors[i]);
    }
  }
};

struct ScanFixture {
  ScanFixture()
      : view(registry().trie()),
        classifier(analysis::AppClassifier::table1()),
        hypergiants(analysis::AsnSet(synth::AsRegistry::hypergiant_asns())) {
    const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                          {.seed = 42});
    const synth::FlowSynthesizer synth(ixp.model, registry(),
                                       {.connections_per_hour = 40,
                                        .gen_threads = gen_threads()});
    for (const TimeRange& w : analysis_weeks()) {
      const auto week = synth.collect(w);
      records.insert(records.end(), week.begin(), week.end());
    }
  }

  /// `interpreted_monitors`: evaluate the monitor filters as per-record
  /// std::function filters over the retained AST (the seed shape) instead
  /// of compiled FilterPlan masks. Results are identical either way (the
  /// plan is fuzz-pinned against match_reference).
  [[nodiscard]] AnalysisBundle make_bundle(bool interpreted_monitors) const {
    AnalysisBundle b{
        analysis::VolumeAggregator(stats::Bucket::kDay),
        analysis::PortAnalyzer(analysis_weeks()),
        analysis::HypergiantAnalyzer(view, hypergiants),
        analysis::ClassHeatmap(classifier, view, analysis_weeks()),
        analysis::VpnAnalyzer(analysis_weeks(), {}),
        {}};
    for (const filter::CompiledFilter& plan : monitor_filters()) {
      if (interpreted_monitors) {
        b.monitors.emplace_back(stats::Bucket::kDay,
                                [p = &plan](const flow::FlowRecord& r) {
                                  return p->match_reference(r);
                                });
      } else {
        b.monitors.emplace_back(stats::Bucket::kDay, &plan);
      }
    }
    return b;
  }

  analysis::AsView view;
  analysis::AppClassifier classifier;
  analysis::AsnSet hypergiants;
  std::vector<flow::FlowRecord> records;
};

const ScanFixture& fixture() {
  static const ScanFixture f;
  return f;
}

/// One figure-deterministic string per bundle; byte-compared across paths.
std::string render(AnalysisBundle& b) {
  std::string out = analysis::timeseries_table(b.volume.series()).to_csv();
  for (const auto cls : b.heatmap.observed_classes()) {
    out += analysis::heatmap_table(b.heatmap, cls, analysis_weeks().size() - 1)
               .to_csv();
  }
  out += analysis::vpn_profile_table(b.vpn.profiles()).to_csv();
  for (const auto& p : b.ports.profiles(b.ports.top_ports(8))) {
    out += p.port.to_string() + "/" + std::to_string(p.week_index) + "\n";
  }
  for (const auto& m : b.monitors) {
    out += std::to_string(m.records()) + "\n";
    out += analysis::timeseries_table(m.series()).to_csv();
  }
  return out;
}

void run_per_record(AnalysisBundle& b) {
  // The seed consumption shape: a list of per-record std::function sinks
  // (flow::Collector::Sink), one type-erased call per (record, aggregator).
  std::vector<std::function<void(const flow::FlowRecord&)>> sinks = {
      b.volume.sink(), b.ports.sink(), b.hyper.sink(), b.heatmap.sink(),
      b.vpn.sink()};
  for (auto& m : b.monitors) sinks.push_back(m.sink());
  for (const flow::FlowRecord& r : fixture().records) {
    for (const auto& sink : sinks) sink(r);
  }
}

void run_batch_columns(AnalysisBundle& b) {
  const std::span<const flow::FlowRecord> all(fixture().records);
  filter::FlowColumns cols;
  for (std::size_t off = 0; off < all.size();
       off += analysis::ScanPool::kDefaultChunkRecords) {
    const auto batch = all.subspan(
        off, std::min(analysis::ScanPool::kDefaultChunkRecords, all.size() - off));
    cols.build(batch, &registry().trie());
    b.add_batch(batch, cols);
  }
}

std::string run_scan(unsigned threads) {
  analysis::ScanEngine<AnalysisBundle> engine(
      threads, [] { return fixture().make_bundle(false); }, &registry().trie());
  engine.feed(fixture().records);
  return render(engine.finish());
}

void print_reproduction() {
  const auto& f = fixture();
  std::cout << "=== Analysis scan: columnar batch kernels + slice-scan engine ===\n"
            << "(" << f.records.size() << " IXP-CE records over "
            << analysis_weeks().size() << " analysis weeks; aggregators: "
            << "volume, ports, hypergiants, heatmap, vpn, "
            << monitor_filters().size() << " monitor filters)\n\n";

  AnalysisBundle per_record = f.make_bundle(true);
  run_per_record(per_record);
  AnalysisBundle batch = f.make_bundle(false);
  run_batch_columns(batch);

  const std::string want = render(per_record);
  const bool batch_ok = render(batch) == want;
  const bool scan1_ok = run_scan(1) == want;
  const bool scan4_ok = run_scan(4) == want;
  std::cout << "per-record vs columnar batch figures: "
            << (batch_ok ? "IDENTICAL" : "MISMATCH") << "\n"
            << "per-record vs 1-thread scan figures:  "
            << (scan1_ok ? "IDENTICAL" : "MISMATCH") << "\n"
            << "per-record vs 4-thread scan figures:  "
            << (scan4_ok ? "IDENTICAL" : "MISMATCH") << "\n\n";
  if (!batch_ok || !scan1_ok || !scan4_ok) {
    std::cerr << "error: analysis paths disagree -- timings below are "
                 "meaningless\n";
  }
  std::cout << "records: " << per_record.volume.records()
            << "  web share: " << fmt(100 * per_record.ports.web_share(), 1)
            << "%  hypergiant share: "
            << fmt(100 * per_record.hyper.hypergiant_share(), 1) << "%\n\n";
}

void BM_AnalysisPerRecord(benchmark::State& state) {
  const auto& f = fixture();
  for (auto _ : state) {
    AnalysisBundle b = f.make_bundle(true);
    run_per_record(b);
    benchmark::DoNotOptimize(b.volume.records());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AnalysisPerRecord)->Unit(benchmark::kMillisecond);

void BM_AnalysisBatchColumns(benchmark::State& state) {
  const auto& f = fixture();
  for (auto _ : state) {
    AnalysisBundle b = f.make_bundle(false);
    run_batch_columns(b);
    benchmark::DoNotOptimize(b.volume.records());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AnalysisBatchColumns)->Unit(benchmark::kMillisecond);

void BM_AnalysisScan(benchmark::State& state) {
  const auto& f = fixture();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    analysis::ScanEngine<AnalysisBundle> engine(
        threads, [&f] { return f.make_bundle(false); }, &registry().trie());
    engine.feed(f.records);
    benchmark::DoNotOptimize(engine.finish().volume.records());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_AnalysisScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
