// Shared scaffolding for the per-figure bench binaries. Each binary prints
// its figure/table reproduction (the same rows/series the paper reports)
// and then runs google-benchmark timings of the pipeline that produced it.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/as_view.hpp"
#include "flow/pipeline.hpp"
#include "synth/as_registry.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace lockdown::bench {

inline const synth::AsRegistry& registry() {
  static const synth::AsRegistry reg = synth::AsRegistry::create_default();
  return reg;
}

/// Synthesize `range` at a vantage point and deliver every record through
/// the full wire pipeline (encode -> datagrams -> decode) into `sink`.
template <typename Sink>
void run_pipeline(const synth::VantagePoint& vp, net::TimeRange range,
                  double connections_per_hour, Sink&& sink) {
  const synth::FlowSynthesizer synth(vp.model, registry(),
                                     {.connections_per_hour = connections_per_hour});
  flow::ExportPump pump(vp.protocol, std::forward<Sink>(sink));
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

inline std::string fmt(double v, int decimals = 2) {
  return util::format_fixed(v, decimals);
}

inline std::string pct(double v, int decimals = 1) {
  return (v >= 0 ? "+" : "") + util::format_fixed(v, decimals) + "%";
}

/// Standard micro-benchmark: full synthesize -> wire -> collect throughput
/// of one day at a vantage point. Registered by most binaries so every
/// figure's substrate cost is measured.
inline void bench_pipeline_day(benchmark::State& state, synth::VantagePointId id) {
  const auto vp = synth::build_vantage(id, registry(),
                                       {.seed = 42, .enterprise_transit = false});
  const auto day = net::TimeRange::day_of(net::Date(2020, 3, 25));
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    std::size_t records = 0;
    run_pipeline(vp, day, 500, [&](const flow::FlowRecord& r) {
      bytes += r.bytes;
      ++records;
    });
    benchmark::DoNotOptimize(bytes);
    state.counters["records"] =
        benchmark::Counter(static_cast<double>(records));
  }
}

/// Print-then-benchmark main. Define `print_reproduction()` in the binary
/// and call LOCKDOWN_BENCH_MAIN(print_reproduction).
#define LOCKDOWN_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                         \
    print_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace lockdown::bench
