// Shared scaffolding for the per-figure bench binaries. Each binary prints
// its figure/table reproduction (the same rows/series the paper reports)
// and then runs google-benchmark timings of the pipeline that produced it.
#pragma once

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/as_view.hpp"
#include "flow/pipeline.hpp"
#include "synth/as_registry.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace lockdown::bench {

inline const synth::AsRegistry& registry() {
  static const synth::AsRegistry reg = synth::AsRegistry::create_default();
  return reg;
}

/// Generator threads for every FlowSynthesizer the bench scaffolding
/// builds. Defaults to 1 (inline); set by `--gen-threads N` on any bench
/// binary or the LOCKDOWN_GEN_THREADS environment variable. The record
/// stream is identical for any value (SynthesisConfig::gen_threads
/// determinism contract), so this only changes synthesis wall-clock.
inline std::size_t& gen_threads() {
  static std::size_t value = [] {
    if (const char* env = std::getenv("LOCKDOWN_GEN_THREADS");
        env != nullptr && *env != '\0') {
      return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
    return std::size_t{1};
  }();
  return value;
}

/// Analysis scan lanes (analysis::ScanEngine worker threads) used by
/// benches that scan a record stream outside of a BENCHMARK Arg sweep.
/// Defaults to 1; set by `--scan-threads N` or LOCKDOWN_SCAN_THREADS. The
/// scan output is bit-identical for any value (ScanEngine determinism
/// contract), so this only changes wall-clock.
inline std::size_t& scan_threads() {
  static std::size_t value = [] {
    if (const char* env = std::getenv("LOCKDOWN_SCAN_THREADS");
        env != nullptr && *env != '\0') {
      return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
    return std::size_t{1};
  }();
  return value;
}

/// Strip one `--<name> N` / `--<name>=N` size flag from argv into `value`.
/// Returns the new argc.
inline int parse_size_flag(int argc, char** argv, const std::string& flag,
                           std::size_t& value) {
  const std::string eq_prefix = flag + "=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
      value = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind(eq_prefix, 0) == 0) {
      value = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + eq_prefix.size(), nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

/// Strip the thread flags (`--gen-threads N`, `--scan-threads N`) from argv
/// before benchmark::Initialize sees (and rejects) them.
inline void parse_thread_flags(int& argc, char** argv) {
  argc = parse_size_flag(argc, argv, "--gen-threads", gen_threads());
  argc = parse_size_flag(argc, argv, "--scan-threads", scan_threads());
}

/// Synthesize `range` at a vantage point and deliver every record through
/// the full wire pipeline (encode -> datagrams -> decode) into `sink`.
template <typename Sink>
void run_pipeline(const synth::VantagePoint& vp, net::TimeRange range,
                  double connections_per_hour, Sink&& sink) {
  const synth::FlowSynthesizer synth(
      vp.model, registry(),
      {.connections_per_hour = connections_per_hour, .gen_threads = gen_threads()});
  flow::ExportPump pump(vp.protocol, std::forward<Sink>(sink));
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

/// Like run_pipeline, but the sink is span-shaped (one call per decoded
/// datagram, flow::Collector::BatchSink) -- the compiled hot path the
/// classification benches measure.
template <typename BatchSink>
void run_pipeline_batches(const synth::VantagePoint& vp, net::TimeRange range,
                          double connections_per_hour, BatchSink&& sink) {
  const synth::FlowSynthesizer synth(
      vp.model, registry(),
      {.connections_per_hour = connections_per_hour, .gen_threads = gen_threads()});
  flow::ExportPump pump(vp.protocol,
                        flow::ExportPump::BatchSink(std::forward<BatchSink>(sink)));
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

inline std::string fmt(double v, int decimals = 2) {
  return util::format_fixed(v, decimals);
}

inline std::string pct(double v, int decimals = 1) {
  return (v >= 0 ? "+" : "") + util::format_fixed(v, decimals) + "%";
}

/// Standard micro-benchmark: full synthesize -> wire -> collect throughput
/// of one day at a vantage point. Registered by most binaries so every
/// figure's substrate cost is measured.
inline void bench_pipeline_day(benchmark::State& state, synth::VantagePointId id) {
  const auto vp = synth::build_vantage(id, registry(),
                                       {.seed = 42, .enterprise_transit = false});
  const auto day = net::TimeRange::day_of(net::Date(2020, 3, 25));
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    std::size_t records = 0;
    run_pipeline(vp, day, 500, [&](const flow::FlowRecord& r) {
      bytes += r.bytes;
      ++records;
    });
    benchmark::DoNotOptimize(bytes);
    state.counters["records"] =
        benchmark::Counter(static_cast<double>(records));
  }
}

/// One finished benchmark run, in the shape the perf-smoke CI job consumes.
struct BenchJsonEntry {
  std::string name;
  double ns_per_op = 0.0;
  double records_per_s = 0.0;  ///< 0 when the bench reports no item rate
};

/// Console output plus machine-readable collection: every iteration run
/// that finishes without error is kept for write_bench_json().
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchJsonEntry e;
      e.name = run.benchmark_name();
      if (run.iterations > 0) {
        e.ns_per_op = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9;
      }
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        e.records_per_s = it->second;
      }
      entries_.push_back(std::move(e));
    }
  }

  [[nodiscard]] const std::vector<BenchJsonEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<BenchJsonEntry> entries_;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names never need them
    out.push_back(c);
  }
  return out;
}

/// Peak resident set size of this process so far, in bytes (0 if the query
/// fails). Recorded into every BENCH json so memory regressions of the
/// bench workloads travel with the timing artifacts.
[[nodiscard]] inline std::uint64_t max_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// Write `BENCH_<binary-name>.json` into $LOCKDOWN_BENCH_JSON_DIR (cwd if
/// unset). No file is written when no benchmark ran (e.g. a
/// --benchmark_filter that matches nothing), so CI artifacts only contain
/// real measurements.
inline void write_bench_json(const char* argv0,
                             const std::vector<BenchJsonEntry>& entries) {
  if (entries.empty()) return;
  std::string base = argv0 != nullptr ? argv0 : "bench";
  if (const auto slash = base.find_last_of('/'); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  std::string dir = ".";
  if (const char* env = std::getenv("LOCKDOWN_BENCH_JSON_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + base + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"binary\": \"" << json_escape(base) << "\",\n  \"max_rss_bytes\": "
      << max_rss_bytes() << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    out << "    {\"name\": \"" << json_escape(e.name) << "\", \"ns_per_op\": "
        << e.ns_per_op << ", \"records_per_s\": " << e.records_per_s << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Print-then-benchmark main. Define `print_reproduction()` in the binary
/// and call LOCKDOWN_BENCH_MAIN(print_reproduction). Timings additionally
/// land in BENCH_<binary>.json (see write_bench_json).
#define LOCKDOWN_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                         \
    ::lockdown::bench::parse_thread_flags(argc, argv);      \
    print_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::lockdown::bench::JsonCollectingReporter reporter;     \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);         \
    ::lockdown::bench::write_bench_json(argv[0], reporter.entries()); \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace lockdown::bench
