// Figure 1: "Traffic changes during 2020 at multiple vantage points --
// daily traffic averaged per week, normalized by 3rd week of Jan."
//
// Reproduces the weekly series for the six vantage points of the paper's
// headline figure: ISP-CE, IXP-CE, IXP-SE, IXP-US, the mobile operator and
// the roaming IPX, for calendar weeks 1-18 (Jan 1 - May 5) plus the
// following weeks through mid-May.
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

constexpr VantagePointId kVantages[] = {
    VantagePointId::kIspCe,    VantagePointId::kIxpCe, VantagePointId::kIxpSe,
    VantagePointId::kIxpUs,    VantagePointId::kMobileCe,
    VantagePointId::kIpxCe,
};

void print_reproduction() {
  std::cout << "=== Figure 1: weekly traffic normalized to calendar week 3 ===\n"
            << "(daily traffic averaged per week; weeks 1-19 of 2020)\n\n";

  const TimeRange full{net::Timestamp::from_date(Date(2020, 1, 1)),
                       net::Timestamp::from_date(Date(2020, 5, 18))};

  std::vector<std::string> header = {"week"};
  std::vector<std::vector<std::pair<unsigned, double>>> series;
  for (const auto id : kVantages) {
    const auto vp = synth::build_vantage(id, registry(),
                                         {.seed = 42, .enterprise_transit = false});
    header.push_back(to_string(id));
    analysis::VolumeAggregator agg(stats::Bucket::kDay);
    run_pipeline(vp, full, 180, agg.sink());
    series.push_back(analysis::weekly_normalized(agg.series(), 3));
  }

  util::Table table(header);
  const std::size_t weeks = series.front().size();
  for (std::size_t w = 0; w < weeks; ++w) {
    std::vector<std::string> row = {std::to_string(series.front()[w].first)};
    for (const auto& s : series) row.push_back(fmt(s[w].second));
    table.add_row(std::move(row));
  }
  std::cout << table;

  // The paper's headline: 15-20% growth within a week of the lockdowns
  // (week 11 -> 12/13 in Europe), persistent at the IXPs, decaying at the
  // ISP, collapsing for roaming.
  auto at_week = [&](std::size_t vantage, unsigned week) {
    for (const auto& [w, v] : series[vantage]) {
      if (w == week) return v;
    }
    return 0.0;
  };
  std::cout << "\nHeadline checks (paper section 1 / section 3.1):\n";
  std::cout << "  ISP-CE  week 13: " << pct(100 * (at_week(0, 13) - 1))
            << "  (paper: >+20% after lockdown)\n";
  std::cout << "  ISP-CE  week 19: " << pct(100 * (at_week(0, 19) - 1))
            << "  (paper: ~+6% residual in May)\n";
  std::cout << "  IXP-CE  week 13: " << pct(100 * (at_week(1, 13) - 1))
            << "  (paper: ~+30%)\n";
  std::cout << "  IXP-CE  week 19: " << pct(100 * (at_week(1, 19) - 1))
            << "  (paper: ~+20% persists)\n";
  std::cout << "  IXP-SE  week 13: " << pct(100 * (at_week(2, 13) - 1))
            << "  (paper: ~+12%)\n";
  std::cout << "  IXP-US  week 12: " << pct(100 * (at_week(3, 12) - 1))
            << "  (paper: ~+2%, trails Europe)\n";
  std::cout << "  Roaming week 14: " << pct(100 * (at_week(5, 14) - 1))
            << "  (paper: roaming collapses to ~half)\n\n";
}

void BM_Fig1_FullTimelineIsp(benchmark::State& state) {
  bench_pipeline_day(state, VantagePointId::kIspCe);
}
BENCHMARK(BM_Fig1_FullTimelineIsp)->Unit(benchmark::kMillisecond);

void BM_Fig1_WeeklyNormalization(benchmark::State& state) {
  const auto vp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                       {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kDay);
  run_pipeline(vp,
               TimeRange{net::Timestamp::from_date(Date(2020, 1, 1)),
                         net::Timestamp::from_date(Date(2020, 2, 15))},
               180, agg.sink());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::weekly_normalized(agg.series(), 3));
  }
}
BENCHMARK(BM_Fig1_WeeklyNormalization)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
