// Figure 2: "Drastic shift in Internet usage patterns for times of day and
// weekends/workdays."
//
//  (a) ISP-CE hourly traffic for Wed Feb 19, Sat Feb 22 and Wed Mar 25
//      (lockdown), normalized to the day maximum.
//  (b/c) Workday-like vs weekend-like classification of every day Jan 1 -
//      May 11 at ISP-CE and IXP-CE, trained on February at 6-hour
//      aggregation.
#include "analysis/pattern.hpp"
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_fig2a(const stats::TimeSeries& hourly) {
  std::cout << "--- Fig 2a: ISP-CE hourly pattern (normalized to day max) ---\n";
  util::Table table({"hour", "Wed Feb 19", "Sat Feb 22", "Wed Mar 25 (lockdown)"});
  const Date days[] = {Date(2020, 2, 19), Date(2020, 2, 22), Date(2020, 3, 25)};
  double day_max[3] = {0, 0, 0};
  for (int d = 0; d < 3; ++d) {
    for (unsigned h = 0; h < 24; ++h) {
      day_max[d] = std::max(day_max[d], hourly.at(Timestamp::from_date(days[d], h)));
    }
  }
  for (unsigned h = 0; h < 24; ++h) {
    std::vector<std::string> row = {std::to_string(h)};
    for (int d = 0; d < 3; ++d) {
      row.push_back(fmt(hourly.at(Timestamp::from_date(days[d], h)) / day_max[d]));
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";
}

void print_fig2bc(const char* name, const stats::TimeSeries& hourly) {
  analysis::PatternClassifier classifier(6);
  classifier.train(hourly, TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                     Timestamp::from_date(Date(2020, 2, 29))});
  const auto days = classifier.classify(
      hourly, TimeRange{Timestamp::from_date(Date(2020, 1, 1)),
                        Timestamp::from_date(Date(2020, 5, 12))});

  std::cout << "--- Fig 2" << (name == std::string("ISP-CE") ? 'b' : 'c') << ": "
            << name << " day classification (B=agrees, O=disagrees) ---\n";
  std::cout << "Legend per day: W=classified workday-like, E=weekend-like;\n"
            << "lowercase means the classification disagrees with the actual day.\n";
  Date month_start(2020, 1, 1);
  std::string line;
  for (const auto& day : days) {
    if (day.date.month() != month_start.month()) {
      std::cout << "  " << month_start.year() << "-"
                << (month_start.month() < 10 ? "0" : "")
                << month_start.month() << ": " << line << "\n";
      line.clear();
      month_start = day.date;
    }
    const char symbol = day.classified == analysis::DayPattern::kWeekendLike ? 'E' : 'W';
    line += day.agrees() ? symbol : static_cast<char>(symbol + 32);
  }
  std::cout << "  " << month_start.year() << "-"
            << (month_start.month() < 10 ? "0" : "") << month_start.month()
            << ": " << line << "\n";

  std::size_t pre_agree = 0, pre_total = 0, post_weekend = 0, post_total = 0;
  for (const auto& day : days) {
    if (day.date < Date(2020, 3, 16)) {
      ++pre_total;
      pre_agree += day.agrees() ? 1 : 0;
    } else {
      ++post_total;
      post_weekend += day.classified == analysis::DayPattern::kWeekendLike ? 1 : 0;
    }
  }
  std::cout << "Before Mar 16: " << pre_agree << "/" << pre_total
            << " days classified as their actual type\n";
  std::cout << "From Mar 16:   " << post_weekend << "/" << post_total
            << " days classified weekend-like"
            << "  (paper: almost all days weekend-like)\n\n";
}

void print_reproduction() {
  std::cout << "=== Figure 2: time-of-day and workday/weekend pattern shifts ===\n\n";
  const TimeRange full{Timestamp::from_date(Date(2020, 1, 1)),
                       Timestamp::from_date(Date(2020, 5, 12))};

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator isp_agg(stats::Bucket::kHour);
  run_pipeline(isp, full, 220, isp_agg.sink());
  print_fig2a(isp_agg.series());
  print_fig2bc("ISP-CE", isp_agg.series());

  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  analysis::VolumeAggregator ixp_agg(stats::Bucket::kHour);
  run_pipeline(ixp, full, 220, ixp_agg.sink());
  print_fig2bc("IXP-CE", ixp_agg.series());
}

void BM_Fig2_TrainAndClassify(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                         Timestamp::from_date(Date(2020, 4, 1))},
               200, agg.sink());
  for (auto _ : state) {
    analysis::PatternClassifier classifier(6);
    classifier.train(agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                             Timestamp::from_date(Date(2020, 2, 29))});
    benchmark::DoNotOptimize(classifier.classify(
        agg.series(), TimeRange{Timestamp::from_date(Date(2020, 2, 1)),
                                Timestamp::from_date(Date(2020, 4, 1))}));
  }
}
BENCHMARK(BM_Fig2_TrainAndClassify)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
