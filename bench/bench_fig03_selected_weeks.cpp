// Figure 3: "Time series of normalized aggregated traffic volume per hour
// for ISP-CE and three IXPs for four selected weeks (before, just after,
// after, well after lockdown (base/stage1/stage2/stage3))."
//
//  (a) ISP-CE: hourly series per week, normalized by the minimum across
//      the four weeks (printed as per-day-of-week averages for legibility).
//  (b) IXPs: workday and weekend hourly averages per week.
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

struct Week {
  const char* label;
  Date start;
};

const Week kIspWeeks[] = {{"base (Feb 19-26)", Date(2020, 2, 19)},
                          {"stage1 (Mar 18-25)", Date(2020, 3, 18)},
                          {"stage2 (Apr 22-29)", Date(2020, 4, 22)},
                          {"stage3 (May 10-17)", Date(2020, 5, 10)}};

void print_isp() {
  std::cout << "--- Fig 3a: ISP-CE normalized hourly volume (per week) ---\n";
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  std::vector<stats::TimeSeries> weeks;
  double min_val = 0.0;
  bool first = true;
  for (const Week& w : kIspWeeks) {
    analysis::VolumeAggregator agg(stats::Bucket::kHour);
    run_pipeline(isp, TimeRange::week_of(w.start), 300, agg.sink());
    const double m = agg.series().min_value();
    if (first || m < min_val) min_val = m;
    first = false;
    weeks.push_back(agg.series());
  }

  // Summaries per week: min/mean/max normalized by the global minimum, and
  // the weekday-evening vs weekday-morning contrast that flattens.
  util::Table table({"week", "min", "mean", "max", "morning(10h)/evening(21h)"});
  for (std::size_t i = 0; i < weeks.size(); ++i) {
    double morning = 0, evening = 0;
    int workdays = 0;
    for (int d = 0; d < 7; ++d) {
      const Date day = kIspWeeks[i].start.plus_days(d);
      if (day.is_weekend_day()) continue;
      morning += weeks[i].at(Timestamp::from_date(day, 10));
      evening += weeks[i].at(Timestamp::from_date(day, 21));
      ++workdays;
    }
    table.add_row({kIspWeeks[i].label, fmt(weeks[i].min_value() / min_val),
                   fmt(weeks[i].total() / 168.0 / min_val),
                   fmt(weeks[i].max_value() / min_val),
                   fmt(morning / evening)});
    (void)workdays;
  }
  std::cout << table;
  std::cout << "(paper: traffic increases much earlier in the day after the\n"
            << " lockdown -- the morning/evening ratio rises towards 1)\n\n";
}

void print_ixps() {
  std::cout << "--- Fig 3b: IXPs, workday/weekend hourly averages per week ---\n";
  const VantagePointId ixps[] = {VantagePointId::kIxpCe, VantagePointId::kIxpSe,
                                 VantagePointId::kIxpUs};
  for (const auto id : ixps) {
    const auto vp = synth::build_vantage(id, registry(), {.seed = 42});
    util::Table table({"week", "workday avg", "weekend avg", "min", "max"});
    double norm = 0.0;
    bool first = true;
    std::vector<std::array<double, 4>> rows;
    for (const Week& w : kIspWeeks) {
      analysis::VolumeAggregator agg(stats::Bucket::kHour);
      run_pipeline(vp, TimeRange::week_of(w.start), 250, agg.sink());
      double wd = 0, we = 0;
      int wd_n = 0, we_n = 0;
      for (const auto& [ts, v] : agg.series().points()) {
        if (net::is_weekend(ts.weekday())) {
          we += v;
          ++we_n;
        } else {
          wd += v;
          ++wd_n;
        }
      }
      const double min_v = agg.series().min_value();
      if (first || min_v < norm) norm = min_v;
      first = false;
      rows.push_back({wd / wd_n, we / we_n, min_v, agg.series().max_value()});
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.add_row({kIspWeeks[i].label, fmt(rows[i][0] / norm),
                     fmt(rows[i][1] / norm), fmt(rows[i][2] / norm),
                     fmt(rows[i][3] / norm)});
    }
    std::cout << to_string(id) << ":\n" << table << "\n";
  }
  std::cout << "(paper: at the IXPs both peak and minimum levels increase;\n"
            << " the IXP-US barely changes in March and catches up in April)\n\n";
}

void print_reproduction() {
  std::cout << "=== Figure 3: four selected weeks around the lockdown ===\n\n";
  print_isp();
  print_ixps();
}

void BM_Fig3_IxpPipeline(benchmark::State& state) {
  bench_pipeline_day(state, VantagePointId::kIxpCe);
}
BENCHMARK(BM_Fig3_IxpPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
