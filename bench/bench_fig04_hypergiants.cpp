// Figure 4: "ISP-CE: Normalized daily traffic growth for hypergiants vs
// other ASes across time" -- per calendar week, four time-of-day/day-type
// slices, each normalized by its calendar-week-3 value.
#include "analysis/hypergiants.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Figure 4: hypergiants vs other ASes at ISP-CE ===\n"
            << "(weekly traffic per slice, normalized to calendar week 3)\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const analysis::AsView view(registry().trie());
  analysis::HypergiantAnalyzer analyzer(
      view, analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));

  run_pipeline(isp,
               TimeRange{Timestamp::from_date(Date(2020, 1, 8)),
                         Timestamp::from_date(Date(2020, 5, 6))},
               200, analyzer.sink());

  const auto series = analyzer.weekly_series(3);
  for (const auto slice :
       {analysis::DaySlice::kWorkdayWork, analysis::DaySlice::kWorkdayEvening,
        analysis::DaySlice::kWeekendWork, analysis::DaySlice::kWeekendEvening}) {
    util::Table table({"week", "hypergiants", "other ASes"});
    for (const auto& ws : series) {
      if (ws.slice != slice) continue;
      table.add_row({std::to_string(ws.week), fmt(ws.hypergiant), fmt(ws.other)});
    }
    std::cout << to_string(slice) << ":\n" << table << "\n";
  }

  // Quantitative takeaways (section 3.2).
  double hg12 = 0, ot12 = 0, hg13 = 0, ot13 = 0;
  for (const auto& ws : series) {
    if (ws.slice != analysis::DaySlice::kWorkdayWork) continue;
    if (ws.week == 12) {
      hg12 = ws.hypergiant;
      ot12 = ws.other;
    }
    if (ws.week == 13) {
      hg13 = ws.hypergiant;
      ot13 = ws.other;
    }
  }
  std::cout << "Week 12 (lockdown start), workday work-hours: hypergiants "
            << fmt(hg12) << "x vs others " << fmt(ot12) << "x\n";
  std::cout << "Week 13: hypergiants " << fmt(hg13) << "x vs others " << fmt(ot13)
            << "x\n";
  std::cout << "(paper: the other-ASes curve dominates the hypergiants' after\n"
            << " the lockdown; hypergiants stabilize/decline week 12->13 with\n"
            << " the video-resolution reduction)\n\n";
  std::cout << "Hypergiant share of total bytes: "
            << fmt(100 * analyzer.hypergiant_share(), 1)
            << "%  (paper: ~75%, Table 2 / section 3.2)\n\n";
}

void BM_Fig4_HypergiantAttribution(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 400});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 25)));
  const analysis::AsView view(registry().trie());
  for (auto _ : state) {
    analysis::HypergiantAnalyzer analyzer(
        view, analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));
    for (const auto& r : records) analyzer.add(r);
    benchmark::DoNotOptimize(analyzer.hypergiant_share());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Fig4_HypergiantAttribution)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
