// Figure 5: "IXP-CE: ECDF of link utilization before and during the
// lockdown" -- per-member minimum/average/maximum per-minute port
// utilization for a base-week workday vs a stage-2 workday.
#include "analysis/link_utilization.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;

void print_reproduction() {
  std::cout << "=== Figure 5: IXP-CE member port utilization ECDFs ===\n\n";

  const auto tl = synth::EpidemicTimeline::for_region(synth::Region::kCentralEurope);
  const synth::IxpMemberModel model({.seed = 7, .members = 900}, tl);

  const auto base = analysis::LinkUtilizationAnalyzer::analyze(
      model.simulate_day(Date(2020, 2, 19)));
  const auto stage2 = analysis::LinkUtilizationAnalyzer::analyze(
      model.simulate_day(Date(2020, 4, 22)));

  util::Table table({"utilization", "base min", "base avg", "base max",
                     "stage2 min", "stage2 avg", "stage2 max"});
  for (const double x : analysis::LinkUtilizationAnalyzer::utilization_grid()) {
    table.add_row({fmt(100 * x, 0) + "%", fmt(base.min_util.at(x)),
                   fmt(base.avg_util.at(x)), fmt(base.max_util.at(x)),
                   fmt(stage2.min_util.at(x)), fmt(stage2.avg_util.at(x)),
                   fmt(stage2.max_util.at(x))});
  }
  std::cout << table << "\n";

  const auto shift = analysis::LinkUtilizationAnalyzer::median_shift(base, stage2);
  std::cout << "Median utilization shift (stage2 - base): min "
            << pct(100 * shift.min_shift) << ", avg " << pct(100 * shift.avg_shift)
            << ", max " << pct(100 * shift.max_shift) << "\n";
  std::cout << "(paper: all curves shift to the right during the lockdown)\n";
  std::cout << "Port capacity added by member upgrades: "
            << fmt(model.upgraded_capacity_gbps(), 0)
            << " Gbps  (paper: ~1,500 Gbps at the IXP-CE, section 3.1)\n\n";
}

void BM_Fig5_SimulateDay(benchmark::State& state) {
  const auto tl = synth::EpidemicTimeline::for_region(synth::Region::kCentralEurope);
  const synth::IxpMemberModel model(
      {.seed = 7, .members = static_cast<std::size_t>(state.range(0))}, tl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.simulate_day(Date(2020, 4, 22)));
  }
}
BENCHMARK(BM_Fig5_SimulateDay)->Arg(100)->Arg(900)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
