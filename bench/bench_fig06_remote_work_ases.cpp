// Figure 6: "ISP-CE: Heatmap of traffic shift vs residential traffic shift
// (Feb. vs Mar.)" -- per AS (including transit), the normalized difference
// of mean total volume against the normalized difference of mean
// residential (eyeball-exchanged) volume, for the workday-dominated AS
// group.
#include "analysis/remote_work.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Figure 6: remote-work-relevant ASes at ISP-CE ===\n"
            << "(per-AS total vs residential traffic shift, Feb vs Mar week;\n"
            << " includes the ISP's transit traffic)\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = true});
  const analysis::AsView view(registry().trie());

  std::vector<net::Asn> eyeballs;
  for (const auto* info : registry().by_role(net::AsRole::kEyeballIsp)) {
    eyeballs.push_back(info->asn);
  }
  analysis::RemoteWorkAnalyzer analyzer(
      view, analysis::AsnSet(eyeballs), analysis::AsnSet({net::Asn(64700)}),
      TimeRange::week_of(Date(2020, 2, 19)), TimeRange::week_of(Date(2020, 3, 18)));

  run_pipeline(isp, TimeRange::week_of(Date(2020, 2, 19)), 1200, analyzer.sink());
  run_pipeline(isp, TimeRange::week_of(Date(2020, 3, 18)), 1200, analyzer.sink());

  // 2D histogram of the shift plane (5x5 bins over [-1,1]^2), like the
  // paper's heatmap, for the workday-dominated group.
  int histogram[5][5] = {};
  std::size_t population = 0;
  for (const auto& s : analyzer.shifts()) {
    if (s.group != analysis::WeekRatioGroup::kWorkdayDominated) continue;
    const int x = std::min(4, static_cast<int>((s.total_shift + 1.0) / 0.4));
    const int y = std::min(4, static_cast<int>((s.residential_shift + 1.0) / 0.4));
    ++histogram[4 - y][x];
    ++population;
  }
  std::cout << "AS density over (x: total shift, y: residential shift), "
            << population << " workday-dominated ASes:\n";
  util::Table table({"res \\ total", "[-1,-.6)", "[-.6,-.2)", "[-.2,.2)",
                     "[.2,.6)", "[.6,1]"});
  const char* ylabels[] = {"[.6,1]", "[.2,.6)", "[-.2,.2)", "[-.6,-.2)", "[-1,-.6)"};
  for (int row = 0; row < 5; ++row) {
    std::vector<std::string> cells = {ylabels[row]};
    for (int col = 0; col < 5; ++col) cells.push_back(std::to_string(histogram[row][col]));
    table.add_row(std::move(cells));
  }
  std::cout << table << "\n";

  const auto q = analyzer.quadrants();
  std::cout << "Quadrants (workday-dominated group):\n"
            << "  total up,   residential up:   " << q.up_up << "\n"
            << "  total up,   residential down: " << q.up_down << "\n"
            << "  total down, residential up:   " << q.down_up
            << "   (paper: companies with shrinking internal traffic)\n"
            << "  total down, residential down: " << q.down_down << "\n\n";

  std::cout << "Correlation(total shift, residential shift):\n";
  for (const auto group : {analysis::WeekRatioGroup::kWorkdayDominated,
                           analysis::WeekRatioGroup::kBalanced,
                           analysis::WeekRatioGroup::kWeekendDominated}) {
    std::cout << "  " << to_string(group) << ": "
              << fmt(analyzer.shift_correlation(group)) << "\n";
  }
  std::cout << "(paper: for a majority of ASes the residential increase\n"
            << " correlates with the total increase; weaker in other groups)\n\n";
}

void BM_Fig6_PerAsAccumulation(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = true});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 600});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  const analysis::AsView view(registry().trie());
  std::vector<net::Asn> eyeballs;
  for (const auto* info : registry().by_role(net::AsRole::kEyeballIsp)) {
    eyeballs.push_back(info->asn);
  }
  for (auto _ : state) {
    analysis::RemoteWorkAnalyzer analyzer(
        view, analysis::AsnSet(eyeballs), analysis::AsnSet({net::Asn(64700)}),
        TimeRange::week_of(Date(2020, 2, 19)), TimeRange::week_of(Date(2020, 3, 18)));
    for (const auto& r : records) analyzer.add(r);
    benchmark::DoNotOptimize(analyzer.shifts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Fig6_PerAsAccumulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
