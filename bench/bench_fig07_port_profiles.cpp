// Figure 7: "ISP-CE and IXP-CE traffic by top application ports:
// normalized aggregated traffic volume per hour for three weeks, grouped by
// workday and weekend. We omit TCP/80 and TCP/443 traffic for readability."
//
// For each vantage point: the top 3-12 service ports by volume across the
// three analysis weeks, each port's workday/weekend diurnal profile per
// week (normalized to the port's maximum over all weeks), and the per-port
// growth summaries the paper calls out in section 4.
#include "analysis/ports.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void analyze_vantage(VantagePointId id, const std::vector<Date>& week_starts) {
  const auto vp = synth::build_vantage(id, registry(),
                                       {.seed = 42, .enterprise_transit = false});
  std::vector<TimeRange> weeks;
  for (const Date d : week_starts) weeks.push_back(TimeRange::week_of(d));

  analysis::PortAnalyzer analyzer(weeks);
  for (const TimeRange& w : weeks) run_pipeline(vp, w, 700, analyzer.sink());

  std::cout << "--- " << to_string(id) << " ---\n";
  std::cout << "TCP/443 + TCP/80 share of total bytes: "
            << fmt(100 * analyzer.web_share(), 1) << "%  (paper: "
            << (id == VantagePointId::kIspCe ? "~80%" : "~60%") << ")\n\n";

  const auto top = analyzer.top_ports(12);  // the paper plots the top 3-12 ports
  const auto profiles = analyzer.profiles(top);

  // Per-port summary: weekly workday working-hours & weekend means of the
  // normalized profile -- the quantities behind the section 4 narrative.
  util::Table table({"port", "wk1 workday", "wk2 workday", "wk3 workday",
                     "wk1 weekend", "wk2 weekend", "wk3 weekend"});
  for (const auto& port : top) {
    std::array<double, 3> wd{}, we{};
    for (const auto& p : profiles) {
      if (!(p.port == port)) continue;
      double wsum = 0, esum = 0;
      for (unsigned h = 8; h < 20; ++h) {
        wsum += p.workday[h];
        esum += p.weekend[h];
      }
      wd[p.week_index] = wsum / 12.0;
      we[p.week_index] = esum / 12.0;
    }
    table.add_row({port.to_string(), fmt(wd[0]), fmt(wd[1]), fmt(wd[2]),
                   fmt(we[0]), fmt(we[1]), fmt(we[2])});
  }
  std::cout << table << "\n";
}

void print_reproduction() {
  std::cout << "=== Figure 7: top application ports, three weeks ===\n"
            << "(normalized 8-20h means per week; full 24h profiles available\n"
            << " via analysis::PortAnalyzer::profiles)\n\n";
  // Paper section 4: ISP weeks Feb 20-26, Mar 19-25, Apr 9-15; IXP weeks
  // Feb 20-26, Mar 19-25, Apr 23-29.
  analyze_vantage(VantagePointId::kIspCe,
                  {Date(2020, 2, 20), Date(2020, 3, 19), Date(2020, 4, 9)});
  analyze_vantage(VantagePointId::kIxpCe,
                  {Date(2020, 2, 20), Date(2020, 3, 19), Date(2020, 4, 23)});
  std::cout
      << "(paper section 4 expectations: QUIC +30-80%; UDP/4500 & UDP/1194 up\n"
      << " during working hours; TCP/8080 and UDP/2408 flat; TCP/8200 spreads\n"
      << " over the day at the IXP; UDP/8801 ~10x at the ISP; TCP/993 +60%)\n\n";
}

void BM_Fig7_PortAggregation(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 500});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  for (auto _ : state) {
    analysis::PortAnalyzer analyzer({TimeRange::week_of(Date(2020, 3, 19))});
    for (const auto& r : records) analyzer.add(r);
    benchmark::DoNotOptimize(analyzer.top_ports(12));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Fig7_PortAggregation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
