// Figure 8: "IXP-SE: Application class Gaming before and during lockdown.
// It shows a steep increase in # IPs and traffic volume" -- per-hour unique
// IPs and volume with daily min/avg/max envelopes, weeks 7-17, normalized
// to the observed minimum; includes the two-day gaming-provider outage in
// the first lockdown week.
#include "analysis/class_activity.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Figure 8: gaming at IXP-SE (unique IPs & volume) ===\n"
            << "(daily min/avg/max of hourly values, normalized to minimum;\n"
            << " weeks 7-17 of 2020; Spain locked down Mar 14, week 11)\n\n";

  const auto ixp = synth::build_vantage(VantagePointId::kIxpSe, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();
  analysis::ClassActivityTracker tracker(classifier, view,
                                         analysis::AppClass::kGaming);

  // Weeks 7-17: Feb 10 - Apr 26.
  run_pipeline(ixp,
               TimeRange{net::Timestamp::from_date(Date(2020, 2, 10)),
                         net::Timestamp::from_date(Date(2020, 4, 27))},
               500, tracker.sink());

  const auto ips = tracker.daily_ip_envelope();
  const auto volume = tracker.daily_volume_envelope();

  util::Table table({"date", "week", "IPs min", "IPs avg", "IPs max",
                     "vol min", "vol avg", "vol max"});
  for (std::size_t i = 0; i < ips.size(); i += 2) {  // every other day
    table.add_row({ips[i].date.to_string(),
                   std::to_string(ips[i].date.paper_week()), fmt(ips[i].min, 1),
                   fmt(ips[i].avg, 1), fmt(ips[i].max, 1), fmt(volume[i].min, 1),
                   fmt(volume[i].avg, 1), fmt(volume[i].max, 1)});
  }
  std::cout << table << "\n";

  // Quantitative checks: average of daily averages per phase.
  auto phase_avg = [&](const std::vector<analysis::ClassActivityTracker::DayEnvelope>& env,
                       Date from, Date to) {
    double sum = 0;
    int n = 0;
    for (const auto& day : env) {
      if (!(day.date < from) && day.date < to) {
        sum += day.avg;
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double ip_pre = phase_avg(ips, Date(2020, 2, 10), Date(2020, 3, 9));
  const double ip_post = phase_avg(ips, Date(2020, 3, 16), Date(2020, 4, 13));
  const double vol_pre = phase_avg(volume, Date(2020, 2, 10), Date(2020, 3, 9));
  const double vol_post = phase_avg(volume, Date(2020, 3, 16), Date(2020, 4, 13));
  std::cout << "Unique IPs, lockdown vs before: " << fmt(ip_post / ip_pre)
            << "x   (paper: steep rise from week 10/11)\n";
  std::cout << "Volume,     lockdown vs before: " << fmt(vol_post / vol_pre)
            << "x\n";

  const double outage_avg = phase_avg(volume, Date(2020, 3, 12), Date(2020, 3, 14));
  const double surrounding = phase_avg(volume, Date(2020, 3, 16), Date(2020, 3, 20));
  std::cout << "Outage days (Mar 12-13) vs following week: "
            << fmt(outage_avg / surrounding)
            << "x  (paper: volume plunges for two days -- a large gaming\n"
            << " provider's outage, verified not to be a measurement artifact)\n\n";
}

void BM_Fig8_UniqueIpTracking(benchmark::State& state) {
  const auto ixp = synth::build_vantage(VantagePointId::kIxpSe, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 500});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();
  for (auto _ : state) {
    analysis::ClassActivityTracker tracker(classifier, view,
                                           analysis::AppClass::kGaming);
    for (const auto& r : records) tracker.add(r);
    benchmark::DoNotOptimize(tracker.hourly());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Fig8_UniqueIpTracking)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
