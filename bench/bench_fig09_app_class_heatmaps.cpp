// Figure 9: "Heatmaps of application class volume for three different IXP
// locations as well as for the ISP-CE" -- per application class: the base
// week normalized to [0,1], and the stage-1/stage-2 weeks as percent
// difference vs base, clamped to [-100, +200], early-morning hours (2-7am)
// removed.
#include "analysis/app_filter.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::AppClass;
using synth::VantagePointId;

constexpr AppClass kFigureClasses[] = {
    AppClass::kCdn,     AppClass::kCollabWork, AppClass::kEducational,
    AppClass::kEmail,   AppClass::kMessaging,  AppClass::kSocialMedia,
    AppClass::kGaming,  AppClass::kVod,        AppClass::kWebConf,
};

void analyze_vantage(VantagePointId id, const std::vector<Date>& week_starts) {
  const auto vp = synth::build_vantage(id, registry(),
                                       {.seed = 42, .enterprise_transit = false});
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();

  std::vector<TimeRange> weeks;
  for (const Date d : week_starts) weeks.push_back(TimeRange::week_of(d));
  analysis::ClassHeatmap heatmap(classifier, view, weeks);
  // Batch path end to end: collector batches -> classify_batch -> deposit.
  for (const TimeRange& w : weeks) {
    run_pipeline_batches(vp, w, 600, heatmap.batch_sink());
  }

  std::cout << "--- " << to_string(id) << " ---\n";
  util::Table table({"class", "stage1 working-hours diff", "stage2 working-hours diff"});
  for (const AppClass cls : kFigureClasses) {
    table.add_row({synth::to_string(cls),
                   pct(heatmap.working_hours_growth(cls, 1)),
                   pct(heatmap.working_hours_growth(cls, 2))});
  }
  std::cout << table << "\n";
}

void print_reproduction() {
  std::cout << "=== Figure 9: application-class heatmaps, 4 vantage points ===\n"
            << "(working-hours mean of the clamped [-100,+200]% per-hour\n"
            << " difference vs the base week; full 168-hour heatmaps available\n"
            << " via analysis::ClassHeatmap)\n\n";

  // Paper section 5 week selection: ISP Feb 20 / Mar 19 / Apr 9;
  // IXPs Feb 20 / Mar 12 / Apr 23.
  const std::vector<Date> isp_weeks = {Date(2020, 2, 20), Date(2020, 3, 19),
                                       Date(2020, 4, 9)};
  const std::vector<Date> ixp_weeks = {Date(2020, 2, 20), Date(2020, 3, 12),
                                       Date(2020, 4, 23)};
  analyze_vantage(VantagePointId::kIxpCe, ixp_weeks);
  analyze_vantage(VantagePointId::kIxpSe, ixp_weeks);
  analyze_vantage(VantagePointId::kIxpUs, ixp_weeks);
  analyze_vantage(VantagePointId::kIspCe, isp_weeks);

  std::cout
      << "(paper section 5 expectations: Web conf >+200% everywhere;\n"
      << " messaging soars in Europe but falls in the US while email does the\n"
      << " opposite; VoD grows up to +100% at European IXPs but declines in\n"
      << " the US; gaming grows at all IXPs; social media spikes in stage 1\n"
      << " then flattens; educational declines in the US, grows at the ISP)\n\n";
}

struct ClassifyFixture {
  ClassifyFixture()
      : view(registry().trie()), classifier(analysis::AppClassifier::table1()) {
    const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                          {.seed = 42});
    const synth::FlowSynthesizer synth(ixp.model, registry(),
                                       {.connections_per_hour = 500});
    records = synth.collect(TimeRange::day_of(Date(2020, 3, 20)));
  }
  analysis::AsView view;
  analysis::AppClassifier classifier;
  std::vector<flow::FlowRecord> records;
};

const ClassifyFixture& classify_fixture() {
  static const ClassifyFixture f;
  return f;
}

void BM_Fig9_Classification(benchmark::State& state) {
  const auto& f = classify_fixture();
  for (auto _ : state) {
    std::size_t classified = 0;
    for (const auto& r : f.records) {
      classified += f.classifier.classify(r, f.view).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(classified);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_Fig9_Classification)->Unit(benchmark::kMillisecond);

void BM_Fig9_ClassificationReference(benchmark::State& state) {
  const auto& f = classify_fixture();
  for (auto _ : state) {
    std::size_t classified = 0;
    for (const auto& r : f.records) {
      classified += f.classifier.classify_reference(r, f.view).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(classified);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_Fig9_ClassificationReference)->Unit(benchmark::kMillisecond);

void BM_Fig9_ClassificationBatch(benchmark::State& state) {
  const auto& f = classify_fixture();
  std::vector<std::optional<synth::AppClass>> out(f.records.size());
  for (auto _ : state) {
    f.classifier.classify_batch(f.records, f.view, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.records.size()));
}
BENCHMARK(BM_Fig9_ClassificationBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
