// Figure 10: "VPN traffic at the IXP-CE: normalized aggregated traffic
// volume per hour for three selected weeks. Aggregated workdays are shown
// as positive values, aggregated weekends as negative values. VPN servers
// are identified by ports and *vpn* label in the domain name."
//
// Runs the complete section 6 machinery: synthesize the CT-log/FDNS corpus,
// run the *vpn* label search with www-collision elimination, wire the
// surviving gateway addresses into the scenario, and compare port-based vs
// domain-based VPN identification on the IXP-CE flows.
#include "analysis/vpn.hpp"
#include "bench_common.hpp"
#include "dns/corpus.hpp"
#include "dns/vpn_finder.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Figure 10: VPN traffic at IXP-CE, port vs domain method ===\n\n";

  // Step 1: the domain corpus and the *vpn* candidate funnel (section 6).
  const auto corpus = dns::generate_corpus({.seed = 5, .organizations = 3000});
  const auto psl = dns::PublicSuffixList::builtin();
  const auto funnel = dns::VpnCandidateFinder(psl).find(corpus.domains, corpus.dns);
  std::cout << "Domain funnel (paper: 3M candidate IPs -> 1.7M after the\n"
            << "www-collision rule, from 2.7B CT + 1.9B FDNS + 8M toplist):\n"
            << "  corpus domains:        " << corpus.domains.size() << "\n"
            << "  *vpn* label matches:   " << funnel.matched_domains << "\n"
            << "  candidate IPs:         " << funnel.resolved_ips << "\n"
            << "  eliminated (www rule): " << funnel.eliminated_shared_ips << "\n"
            << "  final candidates:      " << funnel.candidate_ips.size() << "\n\n";

  // Step 2: scenario with the real candidate addresses as VPN-TLS servers.
  synth::ScenarioConfig cfg{.seed = 42};
  cfg.vpn_tls_server_ips.assign(funnel.candidate_ips.begin(),
                                funnel.candidate_ips.end());
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(), cfg);

  const std::vector<TimeRange> weeks = {TimeRange::week_of(Date(2020, 2, 20)),
                                        TimeRange::week_of(Date(2020, 3, 19)),
                                        TimeRange::week_of(Date(2020, 4, 23))};
  analysis::VpnAnalyzer analyzer(weeks, funnel.candidate_ips);
  for (const TimeRange& w : weeks) run_pipeline(ixp, w, 900, analyzer.sink());

  // Step 3: the figure -- hourly profiles per method per week, workday
  // positive / weekend negative like the paper's panels.
  const auto profiles = analyzer.profiles();
  const char* week_names[] = {"February", "March", "April"};
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    util::Table table({"hour", "port workday", "port -weekend", "domain workday",
                       "domain -weekend"});
    const analysis::VpnAnalyzer::Profile* port = nullptr;
    const analysis::VpnAnalyzer::Profile* domain = nullptr;
    for (const auto& p : profiles) {
      if (p.week_index != w) continue;
      (p.method == analysis::VpnMethod::kPort ? port : domain) = &p;
    }
    for (unsigned h = 0; h < 24; h += 2) {
      table.add_row({std::to_string(h), fmt(port->workday[h]),
                     fmt(-port->weekend[h]), fmt(domain->workday[h]),
                     fmt(-domain->weekend[h])});
    }
    std::cout << week_names[w] << ":\n" << table << "\n";
  }

  std::cout << "Working-hours workday growth vs February:\n";
  std::cout << "  port-based,   March: "
            << pct(analyzer.working_hours_growth(analysis::VpnMethod::kPort, 1))
            << "   April: "
            << pct(analyzer.working_hours_growth(analysis::VpnMethod::kPort, 2))
            << "\n";
  std::cout << "  domain-based, March: "
            << pct(analyzer.working_hours_growth(analysis::VpnMethod::kDomain, 1))
            << "   April: "
            << pct(analyzer.working_hours_growth(analysis::VpnMethod::kDomain, 2))
            << "\n";
  std::cout << "(paper: almost no change port-based; >+200% domain-based in\n"
            << " March, smaller in April -- port-only identification vastly\n"
            << " undercounts VPN traffic)\n\n";
}

void BM_Fig10_CandidateFunnel(benchmark::State& state) {
  const auto corpus = dns::generate_corpus(
      {.seed = 5, .organizations = static_cast<std::size_t>(state.range(0))});
  const auto psl = dns::PublicSuffixList::builtin();
  const dns::VpnCandidateFinder finder(psl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find(corpus.domains, corpus.dns));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.domains.size()));
}
BENCHMARK(BM_Fig10_CandidateFunnel)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
