// Figure 11: "EDU: Traffic volume & ratio (1) before, (2) just after, and
// (3) well after the lockdown."
//
//  (a) normalized daily volume for the base week (Feb 27 - Mar 4), the
//      transition week (Mar 12-18) and the online-lecturing week (Apr 16-22);
//  (b) ingress vs egress traffic ratio for the same weeks.
#include "analysis/edu.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

const struct {
  const char* label;
  Date start;
} kWeeks[] = {{"base (Feb 27-Mar 4)", Date(2020, 2, 27)},
              {"transition (Mar 12-18)", Date(2020, 3, 12)},
              {"online-lecturing (Apr 16-22)", Date(2020, 4, 16)}};

void print_reproduction() {
  std::cout << "=== Figure 11: the EDU metropolitan network ===\n"
            << "(16 universities; weeks run Thu..Wed like the paper's panels)\n\n";

  const auto edu = synth::build_vantage(VantagePointId::kEdu, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  analysis::EduAnalyzer analyzer(view, analysis::AsnSet(edu.local_ases),
                                 analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));
  for (const auto& w : kWeeks) {
    run_pipeline(edu, TimeRange::week_of(w.start), 800, analyzer.sink());
  }

  // Normalize daily volumes by the smallest observed daily volume.
  double min_volume = 0.0;
  bool first = true;
  for (const auto& w : kWeeks) {
    for (int d = 0; d < 7; ++d) {
      const double v = analyzer.daily_volume(w.start.plus_days(d));
      if (first || v < min_volume) min_volume = v;
      first = false;
    }
  }

  std::cout << "--- Fig 11a: normalized daily traffic volume ---\n";
  util::Table vol({"day", kWeeks[0].label, kWeeks[1].label, kWeeks[2].label});
  const char* day_names[] = {"Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"};
  for (int d = 0; d < 7; ++d) {
    vol.add_row({day_names[d],
                 fmt(analyzer.daily_volume(kWeeks[0].start.plus_days(d)) / min_volume),
                 fmt(analyzer.daily_volume(kWeeks[1].start.plus_days(d)) / min_volume),
                 fmt(analyzer.daily_volume(kWeeks[2].start.plus_days(d)) / min_volume)});
  }
  std::cout << vol << "\n";

  std::cout << "--- Fig 11b: ingress vs egress traffic ratio ---\n";
  util::Table ratio({"day", kWeeks[0].label, kWeeks[1].label, kWeeks[2].label});
  for (int d = 0; d < 7; ++d) {
    ratio.add_row({day_names[d],
                   fmt(analyzer.in_out_ratio(kWeeks[0].start.plus_days(d)), 1),
                   fmt(analyzer.in_out_ratio(kWeeks[1].start.plus_days(d)), 1),
                   fmt(analyzer.in_out_ratio(kWeeks[2].start.plus_days(d)), 1)});
  }
  std::cout << ratio << "\n";

  // Section 7 numbers.
  const double base_tue = analyzer.daily_volume(Date(2020, 3, 3));
  const double online_tue = analyzer.daily_volume(Date(2020, 4, 21));
  std::cout << "Workday volume drop (Tue, base -> online): "
            << pct(100 * (online_tue - base_tue) / base_tue)
            << "  (paper: up to -55% on Tue/Wed)\n";
  const double base_sat = analyzer.daily_volume(Date(2020, 2, 29));
  const double online_sat = analyzer.daily_volume(Date(2020, 4, 18));
  std::cout << "Weekend volume change (Sat):               "
            << pct(100 * (online_sat - base_sat) / base_sat)
            << "  (paper: +14% Sat, +4% Sun)\n";
  std::cout << "In/out ratio, base Tue vs online Tue:      "
            << fmt(analyzer.in_out_ratio(Date(2020, 3, 3)), 1) << " -> "
            << fmt(analyzer.in_out_ratio(Date(2020, 4, 21)), 1)
            << "  (paper: up to 15x before, halves in transition, smallest\n"
            << "   during online lecturing)\n\n";
}

void BM_Fig11_EduPipeline(benchmark::State& state) {
  bench_pipeline_day(state, VantagePointId::kEdu);
}
BENCHMARK(BM_Fig11_EduPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
