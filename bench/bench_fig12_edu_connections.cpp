// Figure 12: "Daily connections relative to Feb 27 for selected traffic
// categories" at the EDU network (log scale in the paper), plus the
// section 7 median-growth numbers (web 1.7x, email 1.8x, VPN 4.8x, remote
// desktop 5.9x, SSH 9.1x incoming; hypergiant/QUIC/push/Spotify outgoing
// declines).
#include "analysis/edu.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using analysis::Direction;
using analysis::EduClass;
using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Figure 12: EDU daily connections by traffic class ===\n\n";

  const auto edu = synth::build_vantage(VantagePointId::kEdu, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  analysis::EduAnalyzer analyzer(view, analysis::AsnSet(edu.local_ases),
                                 analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));

  // The paper's EDU capture: Feb 27 - May 8 (72 days, 5.2B flows).
  run_pipeline(edu,
               TimeRange{Timestamp::from_date(Date(2020, 2, 27)),
                         Timestamp::from_date(Date(2020, 5, 9))},
               700, analyzer.sink());

  const struct {
    const char* label;
    EduClass cls;
    Direction dir;
  } kCategories[] = {
      {"Eyeball ISPs (Email, In)", EduClass::kEmail, Direction::kIncoming},
      {"Eyeball ISPs (VPN, In)", EduClass::kVpn, Direction::kIncoming},
      {"Eyeball ISPs (Web, In)", EduClass::kWeb, Direction::kIncoming},
      {"Hypergiants (Web, Out)", EduClass::kHypergiantWeb, Direction::kOutgoing},
      {"Push notifications (Out)", EduClass::kPushNotifications, Direction::kOutgoing},
      {"QUIC (Out)", EduClass::kQuic, Direction::kOutgoing},
  };

  // Fig 12 proper: daily growth relative to the Feb 27 baseline (weekly
  // rows to keep the table readable).
  util::Table table({"date", "Email In", "VPN In", "Web In", "HG Web Out",
                     "Push Out", "QUIC Out"});
  std::map<std::pair<EduClass, Direction>, std::vector<std::pair<Date, double>>> series;
  for (const auto& cat : kCategories) {
    series[{cat.cls, cat.dir}] = analyzer.daily_connections(cat.cls, cat.dir);
  }
  auto value_on = [&](EduClass cls, Direction dir, Date d) {
    for (const auto& [date, v] : series[{cls, dir}]) {
      if (date == d) return v;
    }
    return 0.0;
  };
  for (Date d = Date(2020, 2, 27); d < Date(2020, 5, 9); d = d.plus_days(7)) {
    std::vector<std::string> row = {d.to_string()};
    for (const auto& cat : kCategories) {
      const double base = value_on(cat.cls, cat.dir, Date(2020, 2, 27));
      const double v = value_on(cat.cls, cat.dir, d);
      row.push_back(base > 0 ? fmt(v / base) : "n/a");
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // Section 7 median-growth numbers.
  const TimeRange before{Timestamp::from_date(Date(2020, 2, 27)),
                         Timestamp::from_date(Date(2020, 3, 11))};
  const TimeRange after{Timestamp::from_date(Date(2020, 3, 14)),
                        Timestamp::from_date(Date(2020, 5, 9))};
  util::Table growth({"metric", "measured", "paper"});
  growth.add_row({"total connections", fmt(analyzer.median_growth_total(before, after)) + "x", "1.24x"});
  growth.add_row({"incoming connections",
                  fmt(analyzer.median_growth(Direction::kIncoming, before, after)) + "x",
                  "~2x (doubles)"});
  growth.add_row({"outgoing connections",
                  fmt(analyzer.median_growth(Direction::kOutgoing, before, after)) + "x",
                  "~0.5x (halves)"});
  growth.add_row({"web in", fmt(analyzer.median_growth(EduClass::kWeb, Direction::kIncoming, before, after)) + "x", "1.7x"});
  growth.add_row({"email in", fmt(analyzer.median_growth(EduClass::kEmail, Direction::kIncoming, before, after)) + "x", "1.8x"});
  growth.add_row({"VPN in", fmt(analyzer.median_growth(EduClass::kVpn, Direction::kIncoming, before, after)) + "x", "4.8x"});
  growth.add_row({"remote desktop in", fmt(analyzer.median_growth(EduClass::kRemoteDesktop, Direction::kIncoming, before, after)) + "x", "5.9x"});
  growth.add_row({"SSH in", fmt(analyzer.median_growth(EduClass::kSsh, Direction::kIncoming, before, after)) + "x", "9.1x"});
  growth.add_row({"hypergiant web out", fmt(analyzer.median_growth(EduClass::kHypergiantWeb, Direction::kOutgoing, before, after)) + "x", "falls below pre-COVID weekends"});
  growth.add_row({"push notifications out", fmt(analyzer.median_growth(EduClass::kPushNotifications, Direction::kOutgoing, before, after)) + "x", "~0.35x (-65%)"});
  growth.add_row({"Spotify out", fmt(analyzer.median_growth(EduClass::kSpotify, Direction::kOutgoing, before, after)) + "x", "~0.17x (-83%)"});
  std::cout << growth << "\n";

  std::cout << "Undetermined-direction share of connection flows: "
            << fmt(100 * analyzer.undetermined_fraction(), 1)
            << "%  (paper: 39% of flows)\n\n";
}

void BM_Fig12_ConnectionAnalysis(benchmark::State& state) {
  const auto edu = synth::build_vantage(VantagePointId::kEdu, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(edu.model, registry(),
                                     {.connections_per_hour = 700});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 4, 20)));
  const analysis::AsView view(registry().trie());
  for (auto _ : state) {
    analysis::EduAnalyzer analyzer(view, analysis::AsnSet(edu.local_ases),
                                   analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));
    for (const auto& r : records) analyzer.add(r);
    benchmark::DoNotOptimize(analyzer.undetermined_fraction());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Fig12_ConnectionAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
