// Micro-benchmark for the compiled filter plans (DESIGN.md §12): the
// tree-walking match_reference interpreter vs the flat decision-DAG
// match_batch path, on the paper's Table 1 re-expressed as guarded
// monitoring-object DSL expressions -- the heaviest realistic filter set
// this repo ships (nine classes, each guarded by the union of every
// earlier class). Prints the measured speedup (acceptance bar: >= 5x) and
// the per-object match inventory of the measured slice.
#include <chrono>

#include "analysis/app_filter.hpp"
#include "analysis/table1_dsl.hpp"
#include "bench_common.hpp"
#include "filter/monitor.hpp"
#include "filter/plan.hpp"

namespace lockdown::bench {
namespace {

using flow::FlowRecord;

/// One lockdown evening at the IXP: a realistic class mix, so every DSL
/// object matches some records and the guards actually short-circuit.
[[nodiscard]] const std::vector<FlowRecord>& records() {
  static const std::vector<FlowRecord> recs = [] {
    const auto vp = synth::build_vantage(synth::VantagePointId::kIxpCe,
                                         registry(), {.seed = 42});
    std::vector<FlowRecord> out;
    run_pipeline(vp,
                 net::TimeRange{
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 19),
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 21)},
                 600, [&](const FlowRecord& r) { out.push_back(r); });
    return out;
  }();
  return recs;
}

[[nodiscard]] const std::vector<filter::CompiledFilter>& filters() {
  static const std::vector<filter::CompiledFilter> fs = [] {
    std::vector<filter::CompiledFilter> out;
    for (const auto& def : analysis::dsl_monitor_definitions(
             analysis::AppClassifier::table1())) {
      out.push_back(
          filter::CompiledFilter::compile(def.expression, &registry().trie()));
    }
    return out;
  }();
  return fs;
}

void match_reference_all(std::span<const FlowRecord> recs,
                         std::vector<std::size_t>& hits) {
  for (std::size_t f = 0; f < filters().size(); ++f) {
    std::size_t n = 0;
    for (const FlowRecord& r : recs) n += filters()[f].match_reference(r);
    hits[f] = n;
  }
}

void match_plan_all(std::span<const FlowRecord> recs,
                    std::vector<std::uint8_t>& out,
                    std::vector<std::size_t>& hits) {
  // The routing-layer form: filter-independent columns derived once for
  // the batch, shared by every object's plan (what route_batch does).
  static thread_local filter::FlowColumns cols;
  cols.build(recs, &registry().trie());
  for (std::size_t f = 0; f < filters().size(); ++f) {
    filters()[f].match_batch(recs, out, cols);
    std::size_t n = 0;
    for (const std::uint8_t h : out) n += h;
    hits[f] = n;
  }
}

void print_reproduction() {
  std::cout << "=== Compiled filter plans: tree-walking reference vs "
               "decision-DAG batch ===\n\n";
  const auto& recs = records();
  const auto defs =
      analysis::dsl_monitor_definitions(analysis::AppClassifier::table1());

  std::vector<std::size_t> ref_hits(filters().size());
  std::vector<std::size_t> plan_hits(filters().size());
  std::vector<std::uint8_t> out(recs.size());
  match_reference_all(recs, ref_hits);
  match_plan_all(recs, out, plan_hits);
  if (ref_hits != plan_hits) {
    std::cout << "ERROR: plan match diverges from reference match\n";
    return;
  }

  const auto time_ns = [&](auto&& fn) {
    constexpr int kReps = 40;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           (kReps * static_cast<double>(recs.size()));
  };
  const double ref_ns = time_ns([&] { match_reference_all(recs, ref_hits); });
  const double plan_ns =
      time_ns([&] { match_plan_all(recs, out, plan_hits); });

  // Per-object plan times are the marginal cost given shared columns (the
  // routing-layer accounting); the aggregate "plan" line includes the one
  // shared column pass.
  filter::FlowColumns cols;
  cols.build(recs, &registry().trie());
  util::Table table(
      {"object", "steps", "matches", "share", "ref ns", "plan ns", "speedup"});
  for (std::size_t f = 0; f < defs.size(); ++f) {
    const double fr = time_ns([&] {
      std::size_t n = 0;
      for (const FlowRecord& r : recs) n += filters()[f].match_reference(r);
      benchmark::DoNotOptimize(n);
    });
    const double fp = time_ns([&] {
      filters()[f].match_batch(recs, out, cols);
      benchmark::DoNotOptimize(out.data());
    });
    table.add_row({defs[f].name, std::to_string(filters()[f].step_count()),
                   std::to_string(plan_hits[f]),
                   pct(100.0 * static_cast<double>(plan_hits[f]) /
                       static_cast<double>(recs.size())),
                   fmt(fr), fmt(fp), fmt(fr / fp)});
  }
  std::cout << table;
  std::cout << "\nrecords: " << recs.size()
            << "  reference: " << fmt(ref_ns) << " ns/rec (all objects)"
            << "  plan: " << fmt(plan_ns) << " ns/rec"
            << "  speedup: " << fmt(ref_ns / plan_ns)
            << "x (acceptance bar: 5x)\n\n";
}

void BM_MatchReference(benchmark::State& state) {
  const auto& recs = records();
  std::vector<std::size_t> hits(filters().size());
  for (auto _ : state) {
    match_reference_all(recs, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_MatchReference)->Unit(benchmark::kMillisecond);

void BM_MatchPlan(benchmark::State& state) {
  const auto& recs = records();
  std::vector<std::uint8_t> out(recs.size());
  std::vector<std::size_t> hits(filters().size());
  for (auto _ : state) {
    match_plan_all(recs, out, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_MatchPlan)->Unit(benchmark::kMillisecond);

// The full monitoring layer as a daemon drives it: route_batch across all
// Table-1 objects, counters included.
void BM_MonitorRouteBatch(benchmark::State& state) {
  filter::MonitorSet set(&registry().trie());
  analysis::add_monitor_definitions(
      set,
      analysis::dsl_monitor_definitions(analysis::AppClassifier::table1()));
  const auto& recs = records();
  for (auto _ : state) {
    set.route_batch(recs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_MonitorRouteBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
