// Micro-benchmark for the compiled template decode plans (DESIGN.md
// section 9): the interpreted per-record decode_field() walk over
// tmpl.fields vs the DecodePlan op loop the decoders now run, on the same
// wire bytes. Prints the measured speedup (the acceptance bar is >= 3x)
// and registers benchmark series for both paths plus the full datagram
// decode that the plans accelerate end to end.
#include <chrono>
#include <random>

#include "bench_common.hpp"
#include "flow/decode_plan.hpp"
#include "flow/field_codec.hpp"
#include "flow/ipfix.hpp"
#include "flow/template_fields.hpp"
#include "flow/wire.hpp"

namespace lockdown::bench {
namespace {

using flow::DecodePlan;
using flow::FlowRecord;
using flow::TemplateRecord;
using flow::TimeContext;

constexpr std::size_t kRecords = 4096;

[[nodiscard]] std::vector<FlowRecord> make_records(bool v6) {
  std::mt19937_64 rng(7);
  std::vector<FlowRecord> out(kRecords);
  for (FlowRecord& r : out) {
    r.bytes = rng() % (1u << 20);
    r.packets = 1 + rng() % 1000;
    r.protocol = (rng() & 1) ? flow::IpProtocol::kTcp : flow::IpProtocol::kUdp;
    r.tcp_flags = static_cast<std::uint8_t>(rng());
    r.src_port = static_cast<std::uint16_t>(rng());
    r.dst_port = static_cast<std::uint16_t>(rng());
    r.input_if = static_cast<std::uint16_t>(rng());
    r.output_if = static_cast<std::uint16_t>(rng());
    r.src_as = net::Asn(static_cast<std::uint32_t>(rng() % 70000));
    r.dst_as = net::Asn(static_cast<std::uint32_t>(rng() % 70000));
    if (v6) {
      net::Ipv6Address::Bytes b;
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
      r.src_addr = net::Ipv6Address(b);
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
      r.dst_addr = net::Ipv6Address(b);
    } else {
      r.src_addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
      r.dst_addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    }
    const std::int64_t start = 1584000000 + static_cast<std::int64_t>(rng() % 86400);
    r.first = net::Timestamp(start);
    r.last = net::Timestamp(start + static_cast<std::int64_t>(rng() % 600));
  }
  return out;
}

/// Encode `records` as back-to-back wire records of `tmpl` (the body of a
/// data set, without set headers -- both decode paths get identical bytes).
[[nodiscard]] std::vector<std::uint8_t> encode_body(
    const TemplateRecord& tmpl, std::span<const FlowRecord> records,
    const TimeContext& tc) {
  flow::WireWriter w;
  for (const FlowRecord& r : records) {
    for (const flow::FieldSpec& f : tmpl.fields) flow::encode_field(w, f, r, tc);
  }
  return w.take();
}

void decode_interpreted(const TemplateRecord& tmpl,
                        std::span<const std::uint8_t> body,
                        const TimeContext& tc, std::vector<FlowRecord>& out) {
  flow::WireReader rd(body);
  const std::size_t rec_len = tmpl.record_length();
  while (rd.remaining() >= rec_len) {
    FlowRecord& r = out.emplace_back();
    for (const flow::FieldSpec& f : tmpl.fields) flow::decode_field(rd, f, r, tc);
  }
}

// The decoders' shipped data-set loop: one appending columnar
// decode_batch call over the set's contiguous records.
void decode_planned(const DecodePlan& plan, std::span<const std::uint8_t> body,
                    const TimeContext& tc, std::vector<FlowRecord>& out) {
  plan.decode_batch(body.data(), body.size() / plan.stride(), out, tc);
}

void print_reproduction() {
  std::cout << "=== Compiled decode plans: interpreted vs plan op loop ===\n\n";

  util::Table table({"template", "interpreted ns/rec", "plan ns/rec", "speedup"});
  for (const bool v6 : {false, true}) {
    const TemplateRecord tmpl =
        v6 ? flow::ipfix_v6_template() : flow::ipfix_v4_template();
    const auto records = make_records(v6);
    const TimeContext tc{};
    const auto body = encode_body(tmpl, records, tc);
    const DecodePlan plan = DecodePlan::compile(tmpl);

    std::vector<FlowRecord> a, b;
    a.reserve(kRecords);
    b.reserve(kRecords);
    // One warm-up + sanity pass: both paths must agree byte for byte.
    decode_interpreted(tmpl, body, tc, a);
    decode_planned(plan, body, tc, b);
    if (a != b) {
      std::cout << "ERROR: plan decode diverges from interpreted decode\n";
      return;
    }

    const auto time_ns = [&](auto&& fn) {
      constexpr int kReps = 50;
      std::vector<FlowRecord> sink;
      sink.reserve(kRecords);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kReps; ++i) {
        sink.clear();
        fn(sink);
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(sink.data());
      return std::chrono::duration<double, std::nano>(t1 - t0).count() /
             (kReps * static_cast<double>(kRecords));
    };
    const double interp = time_ns(
        [&](std::vector<FlowRecord>& out) { decode_interpreted(tmpl, body, tc, out); });
    const double planned = time_ns(
        [&](std::vector<FlowRecord>& out) { decode_planned(plan, body, tc, out); });
    table.add_row({v6 ? "IPFIX v6" : "IPFIX v4", fmt(interp, 1), fmt(planned, 1),
                   fmt(interp / planned, 2) + "x"});
  }
  std::cout << table << "\n";
  std::cout << "(acceptance: the plan path must decode at >= 3x the\n"
            << " interpreted rate on the standard templates)\n\n";
}

void BM_DecodeInterpreted(benchmark::State& state) {
  const TemplateRecord tmpl = flow::ipfix_v4_template();
  const auto records = make_records(false);
  const TimeContext tc{};
  const auto body = encode_body(tmpl, records, tc);
  std::vector<FlowRecord> out;
  out.reserve(kRecords);
  for (auto _ : state) {
    out.clear();
    decode_interpreted(tmpl, body, tc, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}
BENCHMARK(BM_DecodeInterpreted)->Unit(benchmark::kMicrosecond);

void BM_DecodePlan(benchmark::State& state) {
  const TemplateRecord tmpl = flow::ipfix_v4_template();
  const auto records = make_records(false);
  const TimeContext tc{};
  const auto body = encode_body(tmpl, records, tc);
  const DecodePlan plan = DecodePlan::compile(tmpl);
  std::vector<FlowRecord> out;
  out.reserve(kRecords);
  for (auto _ : state) {
    out.clear();
    decode_planned(plan, body, tc, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}
BENCHMARK(BM_DecodePlan)->Unit(benchmark::kMicrosecond);

// Full datagram path: header parse, set walk, template cache hit, plan
// decode -- what a collector actually pays per packet.
void BM_DecodeDatagrams(benchmark::State& state) {
  const auto records = make_records(false);
  flow::IpfixEncoder enc(/*observation_domain=*/1);
  const auto datagrams =
      enc.encode(records, flow::batch_export_time(records));
  flow::IpfixDecoder warm;
  for (const auto& d : datagrams) benchmark::DoNotOptimize(warm.decode(d));
  for (auto _ : state) {
    flow::IpfixDecoder dec;
    std::size_t n = 0;
    for (const auto& d : datagrams) {
      const auto msg = dec.decode(d);
      if (msg) n += msg->records.size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}
BENCHMARK(BM_DecodeDatagrams)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
