// Micro-benchmark for the compiled export side (DESIGN.md section 10):
// the per-field encode() walk that allocates one std::vector per datagram
// vs the EncodePlan-driven encode_batch() packing a reused PacketBatch, on
// the same records. Prints the measured speedup (the acceptance bar is
// >= 4x on the encode path) and registers benchmark series for both paths
// per protocol plus the PacketBatch/PacketArena substrate they run on.
//
// Both paths are compared under EncodeLimits::unbudgeted(), where
// encode_batch is byte-identical to encode() (the differential tests pin
// this; the table re-checks it before timing). The MTU-budgeted series is
// registered separately -- it does strictly more work (exact splitting).
#include <chrono>
#include <random>

#include "bench_common.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v5.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/packet_arena.hpp"

namespace lockdown::bench {
namespace {

using flow::EncodeLimits;
using flow::FlowRecord;
using flow::PacketArena;
using flow::PacketBatch;

constexpr std::size_t kRecords = 4096;

[[nodiscard]] std::vector<FlowRecord> make_records(bool allow_v6) {
  std::mt19937_64 rng(11);
  std::vector<FlowRecord> out(kRecords);
  for (FlowRecord& r : out) {
    r.bytes = rng() % (1u << 20);
    r.packets = 1 + rng() % 1000;
    r.protocol = (rng() & 1) ? flow::IpProtocol::kTcp : flow::IpProtocol::kUdp;
    r.tcp_flags = static_cast<std::uint8_t>(rng());
    r.src_port = static_cast<std::uint16_t>(rng());
    r.dst_port = static_cast<std::uint16_t>(rng());
    r.input_if = static_cast<std::uint16_t>(rng());
    r.output_if = static_cast<std::uint16_t>(rng());
    r.src_as = net::Asn(static_cast<std::uint32_t>(rng() % 70000));
    r.dst_as = net::Asn(static_cast<std::uint32_t>(rng() % 70000));
    if (allow_v6 && rng() % 4 == 0) {
      net::Ipv6Address::Bytes b;
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
      r.src_addr = net::Ipv6Address(b);
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
      r.dst_addr = net::Ipv6Address(b);
    } else {
      r.src_addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
      r.dst_addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    }
    const std::int64_t start = 1584000000 + static_cast<std::int64_t>(rng() % 86400);
    r.first = net::Timestamp(start);
    r.last = net::Timestamp(start + static_cast<std::int64_t>(rng() % 600));
  }
  return out;
}

const net::Timestamp kExportTime(1'585'180'800);

/// One protocol's two paths, type-erased for the table loop. Fresh encoder
/// per call so sequence numbers (and therefore bytes) are reproducible.
struct Protocol {
  const char* name;
  bool allow_v6;
  std::vector<std::vector<std::uint8_t>> (*reference)(
      std::span<const FlowRecord>);
  std::size_t (*batch)(std::span<const FlowRecord>, PacketBatch&);
};

const Protocol kProtocols[] = {
    {"NetFlow v5", false,
     [](std::span<const FlowRecord> r) {
       return flow::NetflowV5Encoder().encode(r, kExportTime);
     },
     [](std::span<const FlowRecord> r, PacketBatch& out) {
       flow::NetflowV5Encoder enc;
       return enc.encode_batch(r, kExportTime, out, EncodeLimits::unbudgeted());
     }},
    {"NetFlow v9", false,
     [](std::span<const FlowRecord> r) {
       return flow::NetflowV9Encoder(1).encode(r, kExportTime);
     },
     [](std::span<const FlowRecord> r, PacketBatch& out) {
       flow::NetflowV9Encoder enc(1);
       return enc.encode_batch(r, kExportTime, out, EncodeLimits::unbudgeted());
     }},
    {"IPFIX (mixed v4/v6)", true,
     [](std::span<const FlowRecord> r) {
       return flow::IpfixEncoder(1).encode(r, kExportTime);
     },
     [](std::span<const FlowRecord> r, PacketBatch& out) {
       flow::IpfixEncoder enc(1);
       return enc.encode_batch(r, kExportTime, out, EncodeLimits::unbudgeted());
     }},
};

void print_reproduction() {
  std::cout << "=== Compiled encode plans: per-field encode() vs "
               "encode_batch() ===\n\n";

  util::Table table({"protocol", "encode() ns/rec", "encode_batch ns/rec",
                     "speedup"});
  for (const Protocol& p : kProtocols) {
    const auto records = make_records(p.allow_v6);

    // Sanity pass: under unbudgeted limits the batch path must reproduce
    // the per-field packets byte for byte.
    const auto ref = p.reference(records);
    PacketBatch check;
    p.batch(records, check);
    if (check.size() != ref.size()) {
      std::cout << "ERROR: " << p.name << " packet counts diverge\n";
      return;
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const auto got = check.packet(i);
      if (!std::equal(got.begin(), got.end(), ref[i].begin(), ref[i].end())) {
        std::cout << "ERROR: " << p.name << " packet " << i << " diverges\n";
        return;
      }
    }

    const auto time_ns = [&](auto&& fn) {
      constexpr int kReps = 50;
      fn();  // warm-up
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kReps; ++i) fn();
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() /
             (kReps * static_cast<double>(kRecords));
    };
    const double reference = time_ns([&] {
      const auto out = p.reference(records);
      benchmark::DoNotOptimize(out.data());
    });
    PacketBatch out;
    const double batch = time_ns([&] {
      out.clear();
      p.batch(records, out);
      benchmark::DoNotOptimize(out.total_bytes());
    });
    table.add_row({p.name, fmt(reference, 1), fmt(batch, 1),
                   fmt(reference / batch, 2) + "x"});
  }
  std::cout << table << "\n";
  std::cout << "(acceptance: encode_batch must pack records at >= 4x the\n"
            << " per-field rate; the batch path reuses one PacketBatch,\n"
            << " the reference path allocates a vector per datagram)\n\n";
}

// --- registered series: one reference/batch pair per protocol ---------------
// The perf-smoke CI job compares the within-file ratio of each pair, which
// is stable across machine speeds.

void encode_reference(benchmark::State& state, const Protocol& p) {
  const auto records = make_records(p.allow_v6);
  for (auto _ : state) {
    const auto out = p.reference(records);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}

void encode_batch(benchmark::State& state, const Protocol& p) {
  const auto records = make_records(p.allow_v6);
  PacketBatch out;
  for (auto _ : state) {
    out.clear();
    p.batch(records, out);
    benchmark::DoNotOptimize(out.total_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}

void BM_EncodeReferenceV5(benchmark::State& state) {
  encode_reference(state, kProtocols[0]);
}
BENCHMARK(BM_EncodeReferenceV5)->Unit(benchmark::kMicrosecond);
void BM_EncodeBatchV5(benchmark::State& state) {
  encode_batch(state, kProtocols[0]);
}
BENCHMARK(BM_EncodeBatchV5)->Unit(benchmark::kMicrosecond);

void BM_EncodeReferenceV9(benchmark::State& state) {
  encode_reference(state, kProtocols[1]);
}
BENCHMARK(BM_EncodeReferenceV9)->Unit(benchmark::kMicrosecond);
void BM_EncodeBatchV9(benchmark::State& state) {
  encode_batch(state, kProtocols[1]);
}
BENCHMARK(BM_EncodeBatchV9)->Unit(benchmark::kMicrosecond);

void BM_EncodeReferenceIpfix(benchmark::State& state) {
  encode_reference(state, kProtocols[2]);
}
BENCHMARK(BM_EncodeReferenceIpfix)->Unit(benchmark::kMicrosecond);
void BM_EncodeBatchIpfix(benchmark::State& state) {
  encode_batch(state, kProtocols[2]);
}
BENCHMARK(BM_EncodeBatchIpfix)->Unit(benchmark::kMicrosecond);

// The MTU-budgeted IPFIX path: exact splitting under the 1500-byte budget
// (the default ExportPump now runs). Strictly more boundary work than
// unbudgeted chunking; timed so the budget's cost stays visible.
void BM_EncodeBatchIpfixMtu(benchmark::State& state) {
  const auto records = make_records(true);
  PacketBatch out;
  for (auto _ : state) {
    flow::IpfixEncoder enc(1);
    out.clear();
    enc.encode_batch(records, kExportTime, out);
    benchmark::DoNotOptimize(out.total_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}
BENCHMARK(BM_EncodeBatchIpfixMtu)->Unit(benchmark::kMicrosecond);

// --- substrate: the two allocations-recycling layers ------------------------

void BM_PacketBatchReuse(benchmark::State& state) {
  // Steady-state flush loop: after the first iteration the batch never
  // allocates again (clear() keeps capacity).
  const auto records = make_records(false);
  flow::NetflowV5Encoder enc;
  PacketBatch out;
  for (auto _ : state) {
    out.clear();
    enc.encode_batch(records, kExportTime, out);
    benchmark::DoNotOptimize(out.total_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRecords));
}
BENCHMARK(BM_PacketBatchReuse)->Unit(benchmark::kMicrosecond);

void BM_PacketArenaCycle(benchmark::State& state) {
  // The sharded collector's wire-thread pattern: acquire a datagram
  // buffer, fill it, hand it off, release it back. Past warm-up every
  // acquire is a pool hit.
  PacketArena arena;
  std::uint64_t reused = 0;
  constexpr std::size_t kBuf = 1400;
  for (auto _ : state) {
    auto buf = arena.acquire(kBuf);
    buf.resize(kBuf);
    benchmark::DoNotOptimize(buf.data());
    arena.release(std::move(buf));
  }
  reused = arena.stats().reused;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["reused"] = benchmark::Counter(static_cast<double>(reused));
}
BENCHMARK(BM_PacketArenaCycle);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
