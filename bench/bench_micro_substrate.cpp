// Substrate micro-benchmarks: the per-operation costs that determine how
// far this pipeline scales -- LPM lookups, codec encode/decode, hashing,
// anonymization, sketch updates. No figure to reproduce here; this is the
// performance page of the library.
#include "bench_common.hpp"
#include "flow/anonymizer.hpp"
#include "flow/metering.hpp"
#include "net/prefix_trie.hpp"
#include "stats/hyperloglog.hpp"
#include "util/rng.hpp"
#include "util/siphash.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;

void print_reproduction() {
  std::cout << "=== Substrate micro-benchmarks ===\n"
            << "(no paper figure; per-operation costs of the pipeline --\n"
            << " see the google-benchmark output below)\n\n";
}

void BM_Micro_TrieLookup(benchmark::State& state) {
  const auto& reg = registry();
  util::Rng rng(1);
  // Probe addresses inside announced space (the hot path).
  std::vector<net::Ipv4Address> probes;
  const auto& all = reg.all();
  for (int i = 0; i < 4096; ++i) {
    probes.push_back(all[rng.uniform_u64(all.size())].host(rng.uniform_u64(10000)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.resolve(probes[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Micro_TrieLookup);

void BM_Micro_SipHash(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::siphash24({1, 2}, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Micro_SipHash)->Arg(16)->Arg(64)->Arg(1024);

void BM_Micro_AnonymizeV4(benchmark::State& state) {
  const flow::Anonymizer anon(
      {1, 2}, static_cast<flow::AnonymizationMode>(state.range(0)));
  std::uint32_t x = 0x0a000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon.anonymize(net::Ipv4Address(x++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Micro_AnonymizeV4)
    ->Arg(static_cast<int>(flow::AnonymizationMode::kFullHash))
    ->Arg(static_cast<int>(flow::AnonymizationMode::kPrefixPreserving));

void BM_Micro_HllAdd(benchmark::State& state) {
  stats::HyperLogLog hll(12);
  std::uint64_t x = 0;
  for (auto _ : state) {
    hll.add_hash(util::splitmix64(x++));
  }
  benchmark::DoNotOptimize(hll.estimate());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Micro_HllAdd);

void BM_Micro_CodecEncodeDecode(benchmark::State& state) {
  const auto protocol = static_cast<flow::ExportProtocol>(state.range(0));
  const auto isp = synth::build_vantage(synth::VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(isp.model, registry(),
                                     {.connections_per_hour = 400});
  const auto records = synth.collect(
      TimeRange{net::Timestamp::from_date(Date(2020, 3, 25), 20),
                net::Timestamp::from_date(Date(2020, 3, 25), 21)});
  for (auto _ : state) {
    const auto out = flow::export_and_collect(protocol, records,
                                              flow::batch_export_time(records));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Micro_CodecEncodeDecode)
    ->Arg(static_cast<int>(flow::ExportProtocol::kNetflowV5))
    ->Arg(static_cast<int>(flow::ExportProtocol::kNetflowV9))
    ->Arg(static_cast<int>(flow::ExportProtocol::kIpfix))
    ->Unit(benchmark::kMillisecond);

void BM_Micro_SynthesizeHour(benchmark::State& state) {
  const auto isp = synth::build_vantage(synth::VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(
      isp.model, registry(),
      {.connections_per_hour = static_cast<double>(state.range(0))});
  for (auto _ : state) {
    std::size_t n = 0;
    synth.synthesize(TimeRange{net::Timestamp::from_date(Date(2020, 3, 25), 20),
                               net::Timestamp::from_date(Date(2020, 3, 25), 21)},
                     [&](const flow::FlowRecord&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_Micro_SynthesizeHour)->Arg(500)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
