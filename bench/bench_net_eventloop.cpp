// Ingest scaling of the async network plane (DESIGN.md §14): burst-drain
// throughput of the classic blocking path (one socket, one recvmsg per
// datagram -- flow::UdpCollectorTransport) against recvmmsg batch receive
// on one socket, and against the full plane shape of 4 SO_REUSEPORT
// sockets drained by 4 wire threads. Every mode receives identical
// 256-datagram bursts with zero kernel drops (a run that drops skips with
// an error rather than reporting an unfair ratio), so ns/op ratios are
// pure receive-path speedups: the bench_compare.py gate holds the 4-lane
// plane at >= 2x the blocking reference.
//
// The burst geometry is tuned to the kernel's accounting: ~128-byte
// payloads charge ~896 bytes of skb against SO_RCVBUF, so a 256-datagram
// burst (~230 KiB) fits the doubled grant of a 1 MiB request even where
// net.core.rmem_max clamps it to ~212992 (Linux default).
#include "bench_common.hpp"

#include <sys/epoll.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "flow/udp_transport.hpp"
#include "net/eventloop/event_loop.hpp"
#include "net/eventloop/udp_batch_socket.hpp"

namespace {

using namespace lockdown;

constexpr std::size_t kBurst = 256;
constexpr std::size_t kPayloadBytes = 128;
constexpr std::size_t kLanes = 4;
constexpr int kRcvbufRequest = 1 << 20;

const std::vector<std::uint8_t>& payload() {
  static const std::vector<std::uint8_t> bytes(kPayloadBytes, 0x5a);
  return bytes;
}

bool deadline_passed(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}

// ---------------------------------------------------------------------------
// Reference: the classic single blocking-drain socket exactly as the seed
// collector ran it -- one recvmsg per datagram through
// UdpSocket::receive(), which allocates (and zeroes) a fresh 64 KiB
// buffer for every datagram. This is the path the event plane replaced.

void BM_BlockingDrainReference(benchmark::State& state) {
  auto socket = flow::UdpSocket::bind_loopback(0, kRcvbufRequest);
  auto client = flow::UdpSocket::bind_loopback(0);
  if (!socket || !client) {
    state.SkipWithError("could not bind loopback sockets");
    return;
  }
  std::uint64_t received = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < kBurst; ++i) {
      benchmark::DoNotOptimize(client->send_to(socket->port(), payload()));
    }
    state.ResumeTiming();
    std::size_t got = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (got < kBurst) {
      if (auto datagram = socket->receive()) {
        benchmark::DoNotOptimize(datagram->data());
        ++got;
      } else if (deadline_passed(deadline)) {
        state.SkipWithError("burst not fully delivered (kernel drop)");
        return;
      }
    }
    received += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["kernel_drops"] =
      benchmark::Counter(static_cast<double>(socket->kernel_drops()));
}
BENCHMARK(BM_BlockingDrainReference)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// The same single socket drained through the allocation-free
// receive_into() path (satellite of this plane): isolates the buffer-reuse
// win from the syscall-batching win below.

void BM_ReceiveIntoSingleSocket(benchmark::State& state) {
  auto transport = flow::UdpCollectorTransport::create(0, kRcvbufRequest);
  auto client = flow::UdpSocket::bind_loopback(0);
  if (!transport || !client) {
    state.SkipWithError("could not bind loopback sockets");
    return;
  }
  std::uint64_t received = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < kBurst; ++i) {
      benchmark::DoNotOptimize(client->send_to(transport->port(), payload()));
    }
    state.ResumeTiming();
    std::size_t got = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (got < kBurst) {
      got += transport->drain([](std::span<const std::uint8_t>) {});
      if (got < kBurst && deadline_passed(deadline)) {
        state.SkipWithError("burst not fully delivered (kernel drop)");
        return;
      }
    }
    received += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["kernel_drops"] =
      benchmark::Counter(static_cast<double>(transport->kernel_drops()));
}
BENCHMARK(BM_ReceiveIntoSingleSocket)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// One socket, recvmmsg batches: isolates the syscall-batching win from the
// sharding win.

void BM_BatchDrainSingleSocket(benchmark::State& state) {
  net::UdpBatchSocketConfig config;
  config.rcvbuf_bytes = kRcvbufRequest;
  auto socket = net::UdpBatchSocket::bind_loopback(config);
  auto client = flow::UdpSocket::bind_loopback(0);
  if (!socket || !client) {
    state.SkipWithError("could not bind loopback sockets");
    return;
  }
  std::vector<std::vector<std::uint8_t>> buffers(
      64, std::vector<std::uint8_t>(512));
  std::vector<std::uint32_t> lengths(64);
  std::uint64_t received = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < kBurst; ++i) {
      benchmark::DoNotOptimize(client->send_to(socket->port(), payload()));
    }
    state.ResumeTiming();
    std::size_t got = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (got < kBurst) {
      got += socket->receive_batch(buffers, lengths);
      if (got < kBurst && deadline_passed(deadline)) {
        state.SkipWithError("burst not fully delivered (kernel drop)");
        return;
      }
    }
    received += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["kernel_drops"] =
      benchmark::Counter(static_cast<double>(socket->kernel_drops()));
  state.counters["datagrams_per_syscall"] = benchmark::Counter(
      socket->syscalls() == 0
          ? 0.0
          : static_cast<double>(socket->datagrams()) /
                static_cast<double>(socket->syscalls()));
}
BENCHMARK(BM_BatchDrainSingleSocket)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// The full plane shape: 4 reuseport sockets, each drained by its own
// event-loop wire thread that *blocks* in epoll_wait when idle (the
// production WirePlane shape -- spinning lanes would oversubscribe small
// machines). Clients spread across many source ports so the kernel's
// 4-tuple hash distributes the burst over the lanes.

void BM_BatchDrainReuseport4(benchmark::State& state) {
  if (!net::UdpBatchSocket::reuseport_supported()) {
    state.SkipWithError("SO_REUSEPORT not supported");
    return;
  }
  struct Lane {
    net::UdpBatchSocket socket;
    std::unique_ptr<net::EventLoop> loop;
    std::thread thread;
  };
  std::vector<Lane> lanes;
  std::atomic<std::uint64_t> delivered{0};
  net::UdpBatchSocketConfig config;
  config.reuseport = true;
  config.rcvbuf_bytes = kRcvbufRequest;
  for (std::size_t i = 0; i < kLanes; ++i) {
    auto socket = net::UdpBatchSocket::bind_loopback(config);
    if (!socket) {
      state.SkipWithError("could not bind reuseport sibling");
      return;
    }
    config.port = socket->port();
    lanes.push_back(
        Lane{std::move(*socket), std::make_unique<net::EventLoop>(), {}});
  }
  for (auto& lane : lanes) {
    if (!lane.loop->valid()) {
      state.SkipWithError("could not create event loop");
      return;
    }
    lane.loop->add(
        lane.socket.fd(), EPOLLIN | EPOLLET,
        [&lane, &delivered](std::uint32_t) {
          thread_local std::vector<std::vector<std::uint8_t>> buffers(
              64, std::vector<std::uint8_t>(512));
          thread_local std::vector<std::uint32_t> lengths(64);
          for (;;) {
            const std::size_t n = lane.socket.receive_batch(buffers, lengths);
            if (n == 0) return net::EventLoop::DrainResult::kDrained;
            delivered.fetch_add(n, std::memory_order_release);
          }
        });
    lane.thread = std::thread([&lane] { lane.loop->run(); });
  }
  std::vector<flow::UdpSocket> clients;
  for (std::size_t i = 0; i < 16; ++i) {
    auto client = flow::UdpSocket::bind_loopback(0);
    if (!client) {
      state.SkipWithError("could not bind client socket");
      return;
    }
    clients.push_back(std::move(*client));
  }

  std::uint64_t received = 0;
  bool failed = false;
  for (auto _ : state) {
    state.PauseTiming();
    const std::uint64_t base = delivered.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < kBurst; ++i) {
      benchmark::DoNotOptimize(
          clients[i % clients.size()].send_to(config.port, payload()));
    }
    state.ResumeTiming();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (delivered.load(std::memory_order_acquire) - base < kBurst) {
      if (deadline_passed(deadline)) {
        state.SkipWithError("burst not fully delivered (kernel drop)");
        failed = true;
        break;
      }
      std::this_thread::yield();
    }
    if (failed) break;
    received += kBurst;
  }
  for (auto& lane : lanes) lane.loop->stop();
  for (auto& lane : lanes) lane.thread.join();
  if (failed) return;
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  std::uint64_t drops = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t datagrams = 0;
  for (const auto& lane : lanes) {
    drops += lane.socket.kernel_drops();
    syscalls += lane.socket.syscalls();
    datagrams += lane.socket.datagrams();
  }
  state.counters["kernel_drops"] =
      benchmark::Counter(static_cast<double>(drops));
  state.counters["datagrams_per_syscall"] = benchmark::Counter(
      syscalls == 0 ? 0.0
                    : static_cast<double>(datagrams) /
                          static_cast<double>(syscalls));
}
BENCHMARK(BM_BatchDrainReuseport4)->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Reproduction-style print: the syscall-batching factor at a glance.

void print_event_plane_summary() {
  std::cout << "Async event plane ingest modes (burst=" << kBurst
            << " datagrams of " << kPayloadBytes << " B):\n";
  std::cout << "  recvmmsg available:   "
            << (net::UdpBatchSocket::batch_receive_supported() ? "yes" : "no")
            << "\n";
  std::cout << "  SO_REUSEPORT support: "
            << (net::UdpBatchSocket::reuseport_supported() ? "yes" : "no")
            << "\n";

  net::UdpBatchSocketConfig config;
  config.rcvbuf_bytes = kRcvbufRequest;
  auto socket = net::UdpBatchSocket::bind_loopback(config);
  auto client = flow::UdpSocket::bind_loopback(0);
  if (!socket || !client) {
    std::cout << "  (loopback sockets unavailable; skipping probe)\n\n";
    return;
  }
  for (std::size_t i = 0; i < kBurst; ++i) {
    (void)client->send_to(socket->port(), payload());
  }
  std::vector<std::vector<std::uint8_t>> buffers(
      64, std::vector<std::uint8_t>(512));
  std::vector<std::uint32_t> lengths(64);
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (got < kBurst && !deadline_passed(deadline)) {
    got += socket->receive_batch(buffers, lengths);
  }
  std::cout << "  one queued burst drained in " << socket->syscalls()
            << " syscalls ("
            << bench::fmt(socket->syscalls() == 0
                              ? 0.0
                              : static_cast<double>(socket->datagrams()) /
                                    static_cast<double>(socket->syscalls()),
                          1)
            << " datagrams/syscall, " << socket->kernel_drops()
            << " kernel drops)\n\n";
}

}  // namespace

LOCKDOWN_BENCH_MAIN(print_event_plane_summary)
