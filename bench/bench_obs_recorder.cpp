// Flight-recorder + profiler overhead benches (DESIGN.md section 16).
// Two quantities carry acceptance bars:
//
//   - the recorder's sampling tick (a registry snapshot plus a few
//     hundred ring stores) must stay cheap enough to run at 1 Hz inside
//     the exposer loop without disturbing scrapes -- measured per tick
//     against registry size;
//   - ingest throughput with the 97 Hz sampling profiler armed must stay
//     >= 0.97x of profiler-off (bench_compare.py gates the
//     BM_IngestProfilerOff / BM_IngestProfilerOn ratio).
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flow/collector_daemon.hpp"
#include "flow/ipfix.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"

namespace lockdown::bench {
namespace {

void print_reproduction() {
  std::cout << "=== flight recorder / profiler overhead ===\n"
            << "(no paper figure; cost of the always-available history\n"
            << " ring and the in-process sampling profiler. Budgets:\n"
            << " one recorder tick well under a millisecond at realistic\n"
            << " registry sizes, and profiler-on ingest >= 0.97x of\n"
            << " profiler-off -- bench_compare.py gates the ratio.)\n\n";
}

/// A registry shaped like a live collector's: counters, gauges, and a few
/// histograms, `series` exposition rows in total.
void populate_registry(obs::Registry& registry, std::size_t series) {
  const auto buckets = obs::exponential_buckets(0.25, 4.0, 8);
  std::size_t made = 0;
  for (std::size_t i = 0; made + 12 < series; ++i) {
    const std::string label = "shard=\"" + std::to_string(i) + "\"";
    registry.counter("bench_records_total", label, "h").add(i * 97);
    registry.counter("bench_drops_total", label, "h").add(i);
    registry.gauge("bench_depth", label, "h").set(static_cast<double>(i));
    made += 3;
    if (i % 4 == 0) {
      auto& h = registry.histogram("bench_latency_ms", buckets, label, "h");
      h.observe(0.5);
      h.observe(300.0);
      made += buckets.size() + 3;  // buckets + +Inf + count + sum
    }
  }
}

void BM_RecorderSample(benchmark::State& state) {
  obs::Registry registry;
  populate_registry(registry, static_cast<std::size_t>(state.range(0)));
  obs::MetricsRecorder recorder(registry, {.capacity = 512});
  auto& moving = registry.counter("bench_moving_total", {}, "h");
  for (auto _ : state) {
    moving.add(1);  // every tick records at least one fresh delta
    recorder.sample();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["series"] = benchmark::Counter(
      static_cast<double>(recorder.series()));
}
BENCHMARK(BM_RecorderSample)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_HistoryQueryFullRing(benchmark::State& state) {
  // GET /history's reconstruction cost at a full 512-slot ring over a
  // realistic registry: prefix sums over every retained slot per series.
  obs::Registry registry;
  populate_registry(registry, 256);
  obs::MetricsRecorder recorder(registry, {.capacity = 512});
  auto& moving = registry.counter("bench_moving_total", {}, "h");
  for (std::size_t i = 0; i < 512; ++i) {
    moving.add(1);
    recorder.sample();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.query("*", 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoryQueryFullRing)->Unit(benchmark::kMicrosecond);

void BM_HistoryJsonExport(benchmark::State& state) {
  obs::Registry registry;
  populate_registry(registry, 256);
  obs::MetricsRecorder recorder(registry, {.capacity = 512});
  for (std::size_t i = 0; i < 512; ++i) recorder.sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.to_json("*", 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoryJsonExport)->Unit(benchmark::kMicrosecond);

/// One encoded day of IPFIX datagrams -- the ingest workload both profiler
/// arms decode through CollectorDaemon.
const std::vector<std::vector<std::uint8_t>>& ingest_corpus() {
  static const std::vector<std::vector<std::uint8_t>> corpus = [] {
    const auto vp = synth::build_vantage(synth::VantagePointId::kIxpCe,
                                         registry(), {.seed = 42});
    const synth::FlowSynthesizer synth(
        vp.model, registry(),
        {.connections_per_hour = 300, .gen_threads = gen_threads()});
    std::vector<flow::FlowRecord> records;
    synth.synthesize(net::TimeRange::day_of(net::Date(2020, 3, 25)),
                     [&](const flow::FlowRecord& r) { records.push_back(r); });
    flow::IpfixEncoder encoder(/*observation_domain=*/700);
    flow::PacketBatch packets;
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t begin = 0; begin < records.size(); begin += 4096) {
      const auto chunk = std::span(records).subspan(
          begin, std::min<std::size_t>(4096, records.size() - begin));
      packets.clear();
      encoder.encode_batch(chunk, flow::batch_export_time(chunk), packets);
      for (std::size_t i = 0; i < packets.size(); ++i) {
        const auto pkt = packets.packet(i);
        out.emplace_back(pkt.begin(), pkt.end());
      }
    }
    return out;
  }();
  return corpus;
}

void run_ingest(benchmark::State& state) {
  std::size_t records = 0;
  for (auto _ : state) {
    flow::CollectorDaemon daemon(
        {.protocol = flow::ExportProtocol::kIpfix, .rotation_seconds = 900},
        [](flow::TraceSlice&&) {});
    for (const auto& datagram : ingest_corpus()) daemon.ingest(datagram);
    daemon.flush();
    records = daemon.records_spooled();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * records));
}

void BM_IngestProfilerOff(benchmark::State& state) {
  obs::CpuProfiler::instance().stop();
  run_ingest(state);
}
BENCHMARK(BM_IngestProfilerOff)->Unit(benchmark::kMillisecond);

void BM_IngestProfilerOn(benchmark::State& state) {
  // 97 Hz -- the /profile default. On a platform without execinfo the
  // profiler never arms and this arm degenerates to profiler-off (ratio
  // 1.0), which is the honest reading there.
  const bool armed = obs::CpuProfiler::instance().start(97);
  run_ingest(state);
  if (armed) obs::CpuProfiler::instance().stop();
  state.counters["profiler_samples"] = benchmark::Counter(
      static_cast<double>(obs::CpuProfiler::instance().samples()));
}
BENCHMARK(BM_IngestProfilerOn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
