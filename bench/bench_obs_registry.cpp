// obs registry micro-benchmarks: the metrics layer sits on the collector
// hot path (one counter bump per datagram and per record batch), so the
// acceptance bar is a handful of nanoseconds per increment. Measured here:
// the pre-resolved-handle increment (the deployed pattern), the
// lookup-then-increment anti-pattern it avoids, contended increments,
// histogram observes, and snapshot/exposition cost at realistic registry
// sizes.
#include "bench_common.hpp"
#include "flow/collector_metrics.hpp"
#include "obs/metrics.hpp"

namespace lockdown::bench {
namespace {

void print_reproduction() {
  std::cout << "=== obs registry micro-benchmarks ===\n"
            << "(no paper figure; cost of the collector observability layer.\n"
            << " The handle increment must stay in the low single-digit ns\n"
            << " for --metrics to be free at wire rates.)\n\n";
}

void BM_Obs_CounterAddViaHandle(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench_total", "protocol=\"ipfix\"");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_CounterAddViaHandle);

void BM_Obs_CounterAddViaLookup(benchmark::State& state) {
  // The anti-pattern CollectorMetrics exists to avoid: a registry lookup
  // (mutex + map) on every increment.
  obs::Registry reg;
  reg.counter("bench_total", "protocol=\"ipfix\"");
  for (auto _ : state) {
    reg.counter("bench_total", "protocol=\"ipfix\"").add();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_CounterAddViaLookup);

void BM_Obs_CounterAddContended(benchmark::State& state) {
  static obs::Registry reg;
  obs::Counter& c = reg.counter("contended_total");
  for (auto _ : state) {
    c.add();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_CounterAddContended)->Threads(1)->Threads(4)->Threads(8);

void BM_Obs_HistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram(
      "ring_occupancy", obs::exponential_buckets(1.0, 2.0, 13), "shard=\"0\"");
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v = v >= 4096.0 ? 0.0 : v + 17.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_HistogramObserve);

void BM_Obs_CollectorMetricsErrorPath(benchmark::State& state) {
  // What the Collector actually does on a malformed packet: resolve the
  // per-cause counter from the bundle and bump it.
  obs::Registry reg;
  const flow::CollectorMetrics m =
      flow::CollectorMetrics::bind(reg, "protocol=\"netflow_v9\"");
  for (auto _ : state) {
    m.error_counter(flow::DecodeError::kBadTemplate)->add();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_CollectorMetricsErrorPath);

// A registry shaped like a real deployment: three protocol label sets of
// collector counters plus 16 shards of engine gauges and ring histograms.
obs::Registry& populated_registry() {
  static obs::Registry reg;
  static const bool initialized = [] {
    for (int p = 0; p < 3; ++p) {
      const std::string proto = "protocol=\"" + std::to_string(p) + "\"";
      (void)flow::CollectorMetrics::bind(reg, proto);
    }
    for (std::size_t s = 0; s < 16; ++s) {
      const std::string l = "shard=\"" + std::to_string(s) + "\"";
      reg.counter("engine_shard_datagrams", l).add(s * 1000);
      reg.histogram("engine_ring_occupancy",
                    obs::exponential_buckets(1.0, 2.0, 13), l)
          .observe(static_cast<double>(s));
    }
    return true;
  }();
  (void)initialized;
  return reg;
}

void BM_Obs_Snapshot(benchmark::State& state) {
  obs::Registry& reg = populated_registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_Snapshot)->Unit(benchmark::kMicrosecond);

void BM_Obs_ExposeText(benchmark::State& state) {
  obs::Registry& reg = populated_registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.expose_text());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_ExposeText)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
