// Span tracer micro-benchmarks: TRACE_SPAN is compiled into the pipeline
// hot paths permanently (per-datagram on the wire and shard threads), so
// it has an explicit overhead budget -- a disabled span must cost under
// 2 ns (one relaxed load and a branch) and an enabled span under 40 ns
// (two steady_clock reads plus five relaxed stores into the thread-local
// ring). Measured here: both sides of that budget, the raw ring push, the
// bare clock read for scale, and the drain/export side at a full ring.
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"

namespace lockdown::bench {
namespace {

void print_reproduction() {
  std::cout << "=== span tracer micro-benchmarks ===\n"
            << "(no paper figure; cost of always-on pipeline tracing.\n"
            << " Budget: disabled span < 2 ns, enabled span < 40 ns --\n"
            << " cheap enough to leave TRACE_SPAN in the per-datagram\n"
            << " paths. bench_compare.py tracks the disabled/enabled\n"
            << " ratio, which cancels machine speed.)\n\n";
}

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(false);
  for (auto _ : state) {
    TRACE_SPAN("bench", "disabled.span");
  }
  obs::Tracer::instance().set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(true);
  for (auto _ : state) {
    TRACE_SPAN("bench", "enabled.span");
  }
  // The ring is full of bench spans; discard so a later drain-side bench
  // (or a real export in the same process) is not skewed by them.
  obs::Tracer::instance().discard();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledWithArg(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    TRACE_SPAN_ARG("bench", "enabled.arg", i++);
  }
  obs::Tracer::instance().discard();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanEnabledWithArg);

void BM_RingPushRaw(benchmark::State& state) {
  // The seqlock write alone, no clock reads: the floor under the enabled
  // span.
  obs::TraceRing ring(obs::Tracer::kDefaultRingCapacity, 0);
  std::uint64_t t = 0;
  for (auto _ : state) {
    ring.push(1, t, t + 10, 0);
    t += 10;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingPushRaw);

void BM_SteadyClockNow(benchmark::State& state) {
  // For scale: an enabled span pays this twice.
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::trace_now_ns());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SteadyClockNow);

void BM_DrainFullRing(benchmark::State& state) {
  // Export-side cost per span: refill a ring, drain it, amortize.
  obs::TraceRing ring(obs::Tracer::kDefaultRingCapacity, 0);
  std::vector<obs::SpanEvent> out;
  out.reserve(ring.capacity());
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < ring.capacity(); ++i) ring.push(1, i, i + 1, 0);
    out.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(ring.drain(out));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * ring.capacity()));
}
BENCHMARK(BM_DrainFullRing)->Unit(benchmark::kMicrosecond);

void BM_ChromeJsonExport(benchmark::State& state) {
  // Rendering cost of GET /trace for a full default ring.
  obs::Tracer tracer;
  const std::uint32_t id = tracer.intern("bench", "export.span");
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < obs::Tracer::kDefaultRingCapacity; ++i) {
      const std::uint64_t now = obs::trace_now_ns();
      tracer.emit(id, now, now + 100, i);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracer.chrome_json());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * obs::Tracer::kDefaultRingCapacity));
}
BENCHMARK(BM_ChromeJsonExport)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
