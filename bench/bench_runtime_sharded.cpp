// Scaling of the sharded runtimes on both sides of the wire:
//  - ingestion: records/sec through ShardedCollector at 1, 2, 4, 8 shards
//    over a multi-exporter IPFIX corpus, against the single-threaded
//    Collector as the reference point, with the PacketArena's
//    buffer-recycling rate alongside;
//  - synthesis: records/sec through the FlowSynthesizer worker pool
//    (SynthesisConfig::gen_threads) at 1, 2, 4, 8 threads, asserting the
//    record stream is identical at every thread count.
// The printed tables are the reproduction-style summary; the registered
// benchmarks time the same paths under google-benchmark. Ingestion uses
// the lossless ingest_wait() producer, so steady-state drops are 0 by
// construction and the table asserts it.
//
// Parallel speedup needs cores: on a single-core host every shard/thread
// count collapses to the same throughput (the tables still validate
// correctness, drops, and determinism). CI hardware has >= 4 vCPUs.
#include "bench_common.hpp"

#include <chrono>

#include "flow/packet_arena.hpp"
#include "runtime/sharded_collector.hpp"
#include "util/rng.hpp"

namespace {

using namespace lockdown;

constexpr std::size_t kSources = 16;

/// One fixed multi-exporter corpus shared by the table and the benchmarks.
const std::vector<std::vector<std::uint8_t>>& corpus() {
  static const auto datagrams = [] {
    std::vector<flow::FlowRecord> records;
    const auto vp = synth::build_vantage(synth::VantagePointId::kIxpCe,
                                         bench::registry(), {.seed = 42});
    const synth::FlowSynthesizer synth(vp.model, bench::registry(),
                                       {.connections_per_hour = 2500});
    synth.synthesize(
        net::TimeRange{net::Timestamp::from_date(net::Date(2020, 3, 25), 18),
                       net::Timestamp::from_date(net::Date(2020, 3, 25), 22)},
        [&](const flow::FlowRecord& r) { records.push_back(r); });

    // Split across kSources observation domains and interleave round-robin:
    // the arrival pattern of a collector port shared by many exporters.
    std::vector<std::vector<std::vector<std::uint8_t>>> per_source(kSources);
    const std::size_t chunk = (records.size() + kSources - 1) / kSources;
    for (std::size_t s = 0; s < kSources; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(records.size(), begin + chunk);
      if (begin >= end) continue;
      flow::IpfixEncoder encoder(/*observation_domain=*/1000 + s);
      std::span<const flow::FlowRecord> slice(records.data() + begin,
                                              end - begin);
      per_source[s] = encoder.encode(slice, flow::batch_export_time(slice));
    }
    std::vector<std::vector<std::uint8_t>> interleaved;
    for (std::size_t i = 0;; ++i) {
      bool any = false;
      for (auto& source : per_source) {
        if (i < source.size()) {
          interleaved.push_back(std::move(source[i]));
          any = true;
        }
      }
      if (!any) break;
    }
    return interleaved;
  }();
  return datagrams;
}

struct RunResult {
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  double seconds = 0;
  flow::PacketArena::Stats arena;
};

RunResult run_sharded(std::size_t shards) {
  runtime::ShardedCollectorConfig config;
  config.shards = shards;
  config.ring_capacity = 4096;
  runtime::ShardedCollector engine(
      config, [](std::size_t, std::span<const flow::FlowRecord>) {});
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& datagram : corpus()) engine.ingest_wait(datagram);
  engine.finish();
  const auto t1 = std::chrono::steady_clock::now();
  return {engine.merged_stats().records, engine.dropped(),
          std::chrono::duration<double>(t1 - t0).count(),
          engine.arena_stats()};
}

RunResult run_single() {
  flow::Collector collector(
      flow::ExportProtocol::kIpfix,
      flow::Collector::BatchSink([](std::span<const flow::FlowRecord>) {}));
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& datagram : corpus()) collector.ingest(datagram);
  const auto t1 = std::chrono::steady_clock::now();
  return {collector.stats().records, 0,
          std::chrono::duration<double>(t1 - t0).count()};
}

// --- the synthesis worker pool ----------------------------------------------

struct SynthResult {
  std::size_t records = 0;
  std::uint64_t checksum = 0;  ///< order-sensitive digest of the stream
  double seconds = 0;
};

/// One fixed synthesis workload (the ingestion corpus's vantage point, a
/// heavier hour budget) produced with `gen_threads` workers. The checksum
/// folds every record's bytes in delivery order, so any reordering or
/// divergence across thread counts shows up as a different digest.
SynthResult run_synthesis(std::size_t gen_threads) {
  const auto vp = synth::build_vantage(synth::VantagePointId::kIxpCe,
                                       bench::registry(), {.seed = 42});
  const synth::FlowSynthesizer synth(
      vp.model, bench::registry(),
      {.connections_per_hour = 4000, .gen_threads = gen_threads});
  SynthResult r;
  const auto t0 = std::chrono::steady_clock::now();
  synth.synthesize(
      net::TimeRange{net::Timestamp::from_date(net::Date(2020, 3, 25), 16),
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 22)},
      [&](const flow::FlowRecord& rec) {
        ++r.records;
        r.checksum = util::hash_combine(r.checksum, rec.bytes);
        r.checksum = util::hash_combine(
            r.checksum, static_cast<std::uint64_t>(rec.first.seconds()));
      });
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

void print_synthesis_scaling() {
  std::cout << "Deterministic synthesis pool (SynthesisConfig::gen_threads)\n\n";
  util::Table table({"gen threads", "records/s", "speedup vs 1 thread",
                     "stream digest"});
  SynthResult one;
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const SynthResult r = run_synthesis(threads);
    if (threads == 1) one = r;
    identical = identical && r.checksum == one.checksum && r.records == one.records;
    table.add_row({std::to_string(threads),
                   bench::fmt(r.records / r.seconds, 0),
                   bench::fmt((r.records / r.seconds) /
                                  (one.records / one.seconds), 2) + "x",
                   (r.checksum == one.checksum ? "== 1-thread" : "DIVERGED")});
  }
  std::cout << table;
  std::cout << (identical
                    ? "\n(every thread count delivered the identical record "
                      "stream; speedup needs cores)\n\n"
                    : "\nERROR: parallel synthesis diverged from the "
                      "single-threaded stream\n\n");
}

void print_scaling() {
  std::cout << "Sharded ingestion runtime: " << corpus().size()
            << " datagrams from " << kSources << " exporters\n\n";
  util::Table table({"configuration", "records/s", "speedup vs 1 shard",
                     "drops", "arena reuse"});
  const RunResult single = run_single();
  table.add_row({"single-threaded Collector",
                 bench::fmt(single.records / single.seconds, 0), "-", "0",
                 "-"});
  double one_shard_rate = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_sharded(shards);
    const double rate = r.records / r.seconds;
    if (shards == 1) one_shard_rate = rate;
    const double reuse = r.arena.acquired > 0
                             ? 100.0 * static_cast<double>(r.arena.reused) /
                                   static_cast<double>(r.arena.acquired)
                             : 0.0;
    table.add_row({std::to_string(shards) + " shard" + (shards > 1 ? "s" : ""),
                   bench::fmt(rate, 0),
                   bench::fmt(rate / one_shard_rate, 2) + "x",
                   std::to_string(r.dropped), bench::fmt(reuse, 1) + "%"});
  }
  std::cout << table;
  std::cout << "\n(ingest_wait backpressure: drops must be 0 at steady "
               "state; speedup needs cores;\n arena reuse is the share of "
               "ingest buffers recycled from shard workers)\n\n";
  print_synthesis_scaling();
}

void BM_ShardedIngest(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    const RunResult r = run_sharded(shards);
    records += r.records;
    dropped += r.dropped;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["drops"] = benchmark::Counter(static_cast<double>(dropped));
}
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelSynthesis(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const SynthResult reference = run_synthesis(1);
  std::size_t records = 0;
  for (auto _ : state) {
    const SynthResult r = run_synthesis(threads);
    records += r.records;
    if (r.checksum != reference.checksum) {
      state.SkipWithError("parallel synthesis diverged from 1-thread stream");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ParallelSynthesis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SingleThreadedCollector(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    const RunResult r = run_single();
    records += r.records;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SingleThreadedCollector)->Unit(benchmark::kMillisecond);

}  // namespace

LOCKDOWN_BENCH_MAIN(print_scaling)
