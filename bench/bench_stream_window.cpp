// Micro-benchmark for the double-banked window aggregator (DESIGN.md §13):
// ingest cost with a quiescent window clock vs ingest under a continuously
// rotating + draining flusher. The whole point of the two-bank design is
// that retiring a window never blocks route_batch, so the gated quantity
// is the RATIO quiescent/under-flush (~1.0 when healthy; it collapses
// below the 0.75 floor if rotation starts holding the ingest path). The
// reproduction section prints per-batch latency percentiles for both
// modes -- the p99 is the number the acceptance criterion names.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "filter/monitor.hpp"
#include "stream/engine.hpp"

namespace lockdown::bench {
namespace {

using flow::FlowRecord;
using net::Timestamp;
using stream::WindowAggregator;

[[nodiscard]] WindowAggregator::Config window_config() {
  return {.window_seconds = 3600,
          .key = {stream::KeyField::kDstAs, stream::KeyField::kService}};
}

/// Two lockdown-evening hours at the IXP: realistic dst_as/service key
/// cardinality for the keyed bank merges.
[[nodiscard]] const std::vector<FlowRecord>& records() {
  static const std::vector<FlowRecord> recs = [] {
    const auto vp = synth::build_vantage(synth::VantagePointId::kIxpCe,
                                         registry(), {.seed = 42});
    std::vector<FlowRecord> out;
    run_pipeline(vp,
                 net::TimeRange{
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 19),
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 21)},
                 600, [&](const FlowRecord& r) { out.push_back(r); });
    return out;
  }();
  return recs;
}

/// Rotate + drain a window every ~200us until told to stop: thousands of
/// flushes per second racing the ingest path -- far beyond any real
/// rotation cadence -- while leaving the CPU to the thread being measured
/// (a spinning flusher on a single-core runner would just measure core
/// contention, not blocking).
class Flusher {
 public:
  explicit Flusher(WindowAggregator& agg)
      : thread_([this, &agg]() {
          std::int64_t t = 0;
          bool anchored = false;
          while (!stop_.load(std::memory_order_relaxed)) {
            if (!anchored) {
              if (const auto begin = agg.current_window_begin()) {
                t = begin->seconds();
                anchored = true;
              }
            } else {
              t += agg.config().window_seconds;
              agg.advance(Timestamp(t));
              agg.drain([](stream::WindowResult&&) {});
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }) {}
  ~Flusher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void print_reproduction() {
  std::cout << "=== Double-banked windows: ingest under concurrent flush ===\n\n";
  const auto& recs = records();
  constexpr std::size_t kBatch = 256;

  // Per-batch accumulate latencies, quiescent vs under continuous flush.
  const auto run_mode = [&](bool flushing) {
    WindowAggregator agg(window_config());
    std::optional<Flusher> flusher;
    if (flushing) flusher.emplace(agg);
    std::vector<double> ns;
    constexpr int kPasses = 20;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (std::size_t off = 0; off < recs.size(); off += kBatch) {
        const auto n = std::min(kBatch, recs.size() - off);
        const std::span<const FlowRecord> batch(recs.data() + off, n);
        const auto t0 = std::chrono::steady_clock::now();
        agg.accumulate(batch, {});
        const auto t1 = std::chrono::steady_clock::now();
        ns.push_back(
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            static_cast<double>(n));
      }
    }
    std::sort(ns.begin(), ns.end());
    const auto at = [&](double q) {
      return ns[std::min(ns.size() - 1,
                         static_cast<std::size_t>(q * static_cast<double>(
                                                          ns.size())))];
    };
    double sum = 0.0;
    for (const double v : ns) sum += v;
    return std::array<double, 3>{sum / static_cast<double>(ns.size()),
                                 at(0.50), at(0.99)};
  };

  const auto quiet = run_mode(false);
  const auto flushed = run_mode(true);
  util::Table table({"mode", "mean ns/rec", "p50", "p99"});
  table.add_row({"quiescent", fmt(quiet[0]), fmt(quiet[1]), fmt(quiet[2])});
  table.add_row(
      {"under flush", fmt(flushed[0]), fmt(flushed[1]), fmt(flushed[2])});
  std::cout << table;
  std::cout << "\nrecords: " << records().size()
            << "  batch: " << kBatch
            << "  mean ratio quiescent/under-flush: "
            << fmt(quiet[0] / flushed[0])
            << " (floor 0.75)  p99 ratio: " << fmt(quiet[2] / flushed[2])
            << "\n\n";
}

void BM_WindowAccumulateQuiescent(benchmark::State& state) {
  const auto& recs = records();
  WindowAggregator agg(window_config());
  for (auto _ : state) {
    agg.accumulate(recs, {});
    benchmark::DoNotOptimize(agg.windows_completed());
  }
  agg.drain([](stream::WindowResult&&) {});
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_WindowAccumulateQuiescent)->Unit(benchmark::kMillisecond);

void BM_WindowAccumulateUnderFlush(benchmark::State& state) {
  const auto& recs = records();
  WindowAggregator agg(window_config());
  Flusher flusher(agg);
  for (auto _ : state) {
    agg.accumulate(recs, {});
    benchmark::DoNotOptimize(agg.windows_completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_WindowAccumulateUnderFlush)->Unit(benchmark::kMillisecond);

// Context series (not ratio-gated): the full monitor layer with streaming
// hooks attached -- what live_collector's ship loop pays per batch.
void BM_MonitorRouteBatchStreaming(benchmark::State& state) {
  filter::MonitorSet set(&registry().trie());
  set.add("web", "proto tcp and dst port 443,80");
  set.add("vpn", "proto udp and dst port 1194,4500,500");
  stream::StreamMonitor streamer(
      set, {.window = window_config()});
  const auto& recs = records();
  for (auto _ : state) {
    set.route_batch(recs);
  }
  (void)streamer.poll();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(recs.size()));
}
BENCHMARK(BM_MonitorRouteBatchStreaming)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
