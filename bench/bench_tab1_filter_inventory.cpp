// Table 1: "Overview of filters for the application classification.
// Filters are based on transport ports or ASes, either in combination or
// separately." Prints the per-class filter/ASN/port counts and verifies
// each filter is exercised by the synthesized traffic (no dead filters).
#include <set>

#include "analysis/app_filter.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Table 1: application-classification filter inventory ===\n\n";

  const auto classifier = analysis::AppClassifier::table1();
  const auto stats = classifier.table_stats();

  util::Table table({"application class", "# of filters", "# of distinct ASNs",
                     "# of distinct transp. ports"});
  // Paper's row order.
  const synth::AppClass order[] = {
      synth::AppClass::kWebConf,     synth::AppClass::kVod,
      synth::AppClass::kGaming,      synth::AppClass::kSocialMedia,
      synth::AppClass::kMessaging,   synth::AppClass::kEmail,
      synth::AppClass::kEducational, synth::AppClass::kCollabWork,
      synth::AppClass::kCdn,
  };
  for (const auto cls : order) {
    for (const auto& s : stats) {
      if (s.app_class != cls) continue;
      table.add_row({synth::to_string(cls), std::to_string(s.filters),
                     s.distinct_asns ? std::to_string(s.distinct_asns) : "-",
                     s.distinct_ports ? std::to_string(s.distinct_ports) : "-"});
    }
  }
  std::cout << table << "\n";
  std::cout << "Total filters: " << classifier.filters().size()
            << "  (paper: \"more than 50 combinations\")\n\n";

  // Liveness: every filter must match at least one flow of a synthesized
  // lockdown day at the IXP-CE (the broadest vantage point).
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  std::map<synth::AppClass, std::size_t> hits;
  run_pipeline(ixp, TimeRange::day_of(Date(2020, 3, 25)), 3000,
               [&](const flow::FlowRecord& r) {
                 if (const auto cls = classifier.classify(r, view)) ++hits[*cls];
               });
  std::cout << "Classified flows per class (one lockdown day at IXP-CE):\n";
  util::Table live({"class", "flows"});
  for (const auto& [cls, n] : hits) {
    live.add_row({synth::to_string(cls), std::to_string(n)});
  }
  std::cout << live << "\n";
}

void BM_Tab1_TableStats(benchmark::State& state) {
  const auto classifier = analysis::AppClassifier::table1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.table_stats());
  }
}
BENCHMARK(BM_Tab1_TableStats)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
