// Table 1: "Overview of filters for the application classification.
// Filters are based on transport ports or ASes, either in combination or
// separately." Prints the per-class filter/ASN/port counts and verifies
// each filter is exercised by the synthesized traffic (no dead filters).
#include <set>

#include "analysis/app_filter.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Table 1: application-classification filter inventory ===\n\n";

  const auto classifier = analysis::AppClassifier::table1();
  const auto stats = classifier.table_stats();

  util::Table table({"application class", "# of filters", "# of distinct ASNs",
                     "# of distinct transp. ports"});
  // Paper's row order.
  const synth::AppClass order[] = {
      synth::AppClass::kWebConf,     synth::AppClass::kVod,
      synth::AppClass::kGaming,      synth::AppClass::kSocialMedia,
      synth::AppClass::kMessaging,   synth::AppClass::kEmail,
      synth::AppClass::kEducational, synth::AppClass::kCollabWork,
      synth::AppClass::kCdn,
  };
  for (const auto cls : order) {
    for (const auto& s : stats) {
      if (s.app_class != cls) continue;
      table.add_row({synth::to_string(cls), std::to_string(s.filters),
                     s.distinct_asns ? std::to_string(s.distinct_asns) : "-",
                     s.distinct_ports ? std::to_string(s.distinct_ports) : "-"});
    }
  }
  std::cout << table << "\n";
  std::cout << "Total filters: " << classifier.filters().size()
            << "  (paper: \"more than 50 combinations\")\n\n";

  // Liveness: every filter must match at least one flow of a synthesized
  // lockdown day at the IXP-CE (the broadest vantage point).
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const analysis::AsView view(registry().trie());
  std::map<synth::AppClass, std::size_t> hits;
  run_pipeline(ixp, TimeRange::day_of(Date(2020, 3, 25)), 3000,
               [&](const flow::FlowRecord& r) {
                 if (const auto cls = classifier.classify(r, view)) ++hits[*cls];
               });
  std::cout << "Classified flows per class (one lockdown day at IXP-CE):\n";
  util::Table live({"class", "flows"});
  for (const auto& [cls, n] : hits) {
    live.add_row({synth::to_string(cls), std::to_string(n)});
  }
  std::cout << live << "\n";
}

void BM_Tab1_TableStats(benchmark::State& state) {
  const auto classifier = analysis::AppClassifier::table1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.table_stats());
  }
}
BENCHMARK(BM_Tab1_TableStats)->Unit(benchmark::kMicrosecond);

// Flat-table vs interpreted classification over one synthesized day:
// state.range(0) selects the path (0 = compiled tables, 1 = reference
// scan), so both series land in the same JSON artifact.
void BM_Tab1_Classify(benchmark::State& state) {
  const auto ixp = synth::build_vantage(VantagePointId::kIxpCe, registry(),
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry(),
                                     {.connections_per_hour = 500});
  const auto records = synth.collect(TimeRange::day_of(Date(2020, 3, 25)));
  const analysis::AsView view(registry().trie());
  const auto classifier = analysis::AppClassifier::table1();
  const bool reference = state.range(0) != 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& r : records) {
      const auto cls = reference ? classifier.classify_reference(r, view)
                                 : classifier.classify(r, view);
      hits += cls.has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Tab1_Classify)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("reference")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
