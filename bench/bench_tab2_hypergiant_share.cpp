// Table 2 (Appendix A): "List of Hypergiant ASes" -- the 15 hypergiants and
// their measured traffic contribution at the ISP-CE ("responsible for about
// 75% of the traffic delivered to the end-users").
#include "analysis/hypergiants.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Table 2: hypergiant ASes and their ISP-CE traffic share ===\n\n";

  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  const analysis::AsView view(registry().trie());
  analysis::HypergiantAnalyzer analyzer(
      view, analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));
  run_pipeline(isp, TimeRange::week_of(Date(2020, 2, 19)), 900, analyzer.sink());

  const auto per_hg = analyzer.per_hypergiant_bytes();
  double hg_total = 0.0;
  for (const auto& [asn, bytes] : per_hg) hg_total += bytes;

  util::Table table({"Org. Name", "ASN", "share of hypergiant bytes"});
  for (const auto asn : synth::AsRegistry::hypergiant_asns()) {
    const auto* info = registry().find(asn);
    const auto it = per_hg.find(asn);
    const double bytes = it == per_hg.end() ? 0.0 : it->second;
    table.add_row({info->name, std::to_string(asn.value()),
                   fmt(100 * bytes / hg_total, 1) + "%"});
  }
  std::cout << table << "\n";
  std::cout << "Hypergiants' share of total ISP-CE traffic (base week): "
            << fmt(100 * analyzer.hypergiant_share(), 1)
            << "%  (paper: ~75%, consistent with the literature)\n\n";
}

void BM_Tab2_SharePipeline(benchmark::State& state) {
  bench_pipeline_day(state, VantagePointId::kIspCe);
}
BENCHMARK(BM_Tab2_SharePipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
