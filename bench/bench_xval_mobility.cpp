// Cross-validation experiment (extension): the paper corroborates its
// traffic findings with Google's COVID-19 Community Mobility Reports
// ("our findings are confirmed by mobility reports published by Google",
// section 1). This bench runs that comparison quantitatively against the
// synthetic mobility model: daily ISP traffic vs daily mobility indices,
// with Pearson correlations per region.
#include "analysis/volume.hpp"
#include "bench_common.hpp"
#include "stats/ecdf.hpp"
#include "synth/mobility.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using net::Timestamp;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Cross-validation: traffic growth vs mobility reports ===\n"
            << "(extension experiment; paper section 1 cites Google's mobility\n"
            << " reports as corroboration of the traffic shifts)\n\n";

  const struct {
    VantagePointId vantage;
    synth::Region region;
  } kPairs[] = {
      {VantagePointId::kIspCe, synth::Region::kCentralEurope},
      {VantagePointId::kIxpSe, synth::Region::kSouthernEurope},
      {VantagePointId::kIxpUs, synth::Region::kUsEastCoast},
  };

  util::Table table({"vantage point", "corr(traffic, residential)",
                     "corr(traffic, workplaces)", "corr(traffic, transit)"});
  for (const auto& pair : kPairs) {
    const auto vp = synth::build_vantage(pair.vantage, registry(),
                                         {.seed = 42, .enterprise_transit = false});
    const synth::MobilityModel mobility(pair.region, 42);

    analysis::VolumeAggregator agg(stats::Bucket::kDay);
    run_pipeline(vp,
                 TimeRange{Timestamp::from_date(Date(2020, 2, 3)),
                           Timestamp::from_date(Date(2020, 5, 1))},
                 180, agg.sink());

    std::vector<double> traffic, residential, workplaces, transit;
    for (const auto& [ts, volume] : agg.series().points()) {
      const Date d = ts.date();
      if (d.is_weekend_day()) continue;  // compare weekdays with weekdays
      const auto m = mobility.day(d);
      traffic.push_back(volume);
      residential.push_back(m.residential);
      workplaces.push_back(m.workplaces);
      transit.push_back(m.transit_stations);
    }
    table.add_row({to_string(pair.vantage),
                   fmt(stats::pearson(traffic, residential)),
                   fmt(stats::pearson(traffic, workplaces)),
                   fmt(stats::pearson(traffic, transit))});
  }
  std::cout << table << "\n";

  // The mobility curves themselves, sampled weekly (Tuesdays).
  std::cout << "Mobility indices (Central Europe, Tuesdays; Google convention,\n"
            << "percent vs pre-pandemic baseline):\n";
  const synth::MobilityModel ce(synth::Region::kCentralEurope, 42);
  util::Table curve({"date", "workplaces", "transit", "residential"});
  for (Date d(2020, 2, 4); d < Date(2020, 5, 20); d = d.plus_days(14)) {
    const auto m = ce.day(d);
    curve.add_row({d.to_string(), pct(m.workplaces), pct(m.transit_stations),
                   pct(m.residential)});
  }
  std::cout << curve << "\n";
  std::cout << "(takeaway: traffic correlates strongly and positively with\n"
            << " at-home presence and negatively with workplace/transit\n"
            << " mobility at every vantage point -- the cross-dataset\n"
            << " consistency the paper points to, incl. the later US shift)\n\n";
}

void BM_Xval_MobilitySeries(benchmark::State& state) {
  const synth::MobilityModel model(synth::Region::kCentralEurope, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.series(Date(2020, 1, 1), Date(2020, 6, 1)));
  }
}
BENCHMARK(BM_Xval_MobilitySeries)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
