// Quantifying the section 9 discussion: "the effect of the pandemic fills
// the valleys during the working hours and has a moderate increase in the
// peak traffic" -- i.e. traffic engineering's peak-based provisioning
// survives the lockdown even though totals jump.
//
// Prints the stratified load growth (valley / off-peak / mean / p95 / peak)
// between the base and lockdown weeks at every volumetric vantage point.
#include "analysis/peaks.hpp"
#include "analysis/volume.hpp"
#include "bench_common.hpp"

namespace lockdown::bench {
namespace {

using net::Date;
using net::TimeRange;
using synth::VantagePointId;

void print_reproduction() {
  std::cout << "=== Section 9 check: valleys fill, peaks grow moderately ===\n\n";

  const TimeRange base = TimeRange::week_of(Date(2020, 2, 19));
  const TimeRange lockdown = TimeRange::week_of(Date(2020, 3, 18));

  util::Table table({"vantage point", "valley", "off-peak", "mean", "p95",
                     "peak", "peak/mean before -> after"});
  for (const auto id : {VantagePointId::kIspCe, VantagePointId::kIxpCe,
                        VantagePointId::kIxpSe}) {
    const auto vp = synth::build_vantage(id, registry(),
                                         {.seed = 42, .enterprise_transit = false});
    analysis::VolumeAggregator agg(stats::Bucket::kHour);
    run_pipeline(vp, base, 350, agg.sink());
    run_pipeline(vp, lockdown, 350, agg.sink());

    const auto shift = analysis::PeakAnalyzer::compare(agg.series(), base, lockdown);
    table.add_row({to_string(id), pct(shift.valley_growth_pct()),
                   pct(shift.offpeak_growth_pct()), pct(shift.mean_growth_pct()),
                   pct(shift.p95_growth_pct()), pct(shift.peak_growth_pct()),
                   fmt(shift.base_peak_to_mean()) + " -> " +
                       fmt(shift.after_peak_to_mean())});
    if (!shift.valleys_fill_faster()) {
      std::cout << "WARNING: valleys did not fill faster than peaks at "
                << to_string(id) << "\n";
    }
  }
  std::cout << table << "\n";
  std::cout
      << "(paper section 9: peak increases are smaller than the 15-20% total\n"
      << " growth; networks provisioned for 30%-over-peak absorb the shift.\n"
      << " The falling peak/mean ratio is the valley-filling in one number.)\n\n";
}

void BM_Xval_PeakProfile(benchmark::State& state) {
  const auto isp = synth::build_vantage(VantagePointId::kIspCe, registry(),
                                        {.seed = 42, .enterprise_transit = false});
  analysis::VolumeAggregator agg(stats::Bucket::kHour);
  run_pipeline(isp, TimeRange::week_of(Date(2020, 3, 18)), 350, agg.sink());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::PeakAnalyzer::profile(
        agg.series(), TimeRange::week_of(Date(2020, 3, 18))));
  }
}
BENCHMARK(BM_Xval_PeakProfile)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lockdown::bench

LOCKDOWN_BENCH_MAIN(lockdown::bench::print_reproduction)
