// edu_shift: deep dive into the academic metropolitan network (paper
// section 7) -- the antagonistic vantage point where the lockdown *removed*
// the users. Tracks the in/out ratio day by day, the connection growth of
// remote-work classes, and the out-of-hours access pattern of overseas
// students.
//
//   $ ./edu_shift
#include <iostream>

#include "analysis/edu.hpp"
#include "flow/pipeline.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace lockdown;

int main() {
  const auto registry = synth::AsRegistry::create_default();
  const auto edu = synth::build_vantage(synth::VantagePointId::kEdu, registry,
                                        {.seed = 42});
  const analysis::AsView view(registry.trie());
  analysis::EduAnalyzer analyzer(
      view, analysis::AsnSet(edu.local_ases),
      analysis::AsnSet(synth::AsRegistry::hypergiant_asns()));

  // Hour-of-day connection histogram for national vs overseas clients.
  std::array<double, 24> national_hours{};
  std::array<double, 24> overseas_hours{};
  const analysis::AsnSet overseas({net::Asn(64730), net::Asn(64720), net::Asn(64721)});
  const analysis::AsnSet unis(edu.local_ases);

  const synth::FlowSynthesizer synth(edu.model, registry,
                                     {.connections_per_hour = 700});
  flow::ExportPump pump(edu.protocol, [&](const flow::FlowRecord& r) {
    analyzer.add(r);
    // Incoming web requests by client origin (post-lockdown window).
    if (r.first.date() < net::Date(2020, 3, 14)) return;
    if (r.dst_port >= r.src_port || !unis.contains(r.dst_as)) return;
    if (r.dst_port != 443 && r.dst_port != 80) return;
    auto& hours = overseas.contains(r.src_as) ? overseas_hours : national_hours;
    hours[r.first.hour_of_day()] += 1.0;
  });
  std::cout << "Synthesizing the EDU capture window (Feb 28 - May 8, 71 days,\n"
            << "the paper's 72-day capture) through NetFlow v5...\n\n";
  synth.synthesize(net::TimeRange{net::Timestamp::from_date(net::Date(2020, 2, 28)),
                                  net::Timestamp::from_date(net::Date(2020, 5, 9))},
                   pump.as_sink());
  pump.flush();

  // --- In/out ratio timeline (weekly sample) --------------------------------
  std::cout << "Ingress/egress byte ratio (Tuesdays):\n";
  util::Table ratio({"date", "in/out ratio", "phase"});
  for (net::Date d(2020, 3, 3); d < net::Date(2020, 5, 9); d = d.plus_days(7)) {
    const char* phase = d < net::Date(2020, 3, 11)   ? "campus open"
                        : d < net::Date(2020, 3, 20) ? "transition"
                                                     : "online lecturing";
    ratio.add_row({d.to_string(), util::format_fixed(analyzer.in_out_ratio(d), 1),
                   phase});
  }
  std::cout << ratio << "\n";

  // --- Remote-work class growth --------------------------------------------
  const net::TimeRange before{net::Timestamp::from_date(net::Date(2020, 2, 28)),
                              net::Timestamp::from_date(net::Date(2020, 3, 11))};
  const net::TimeRange after{net::Timestamp::from_date(net::Date(2020, 3, 14)),
                             net::Timestamp::from_date(net::Date(2020, 5, 9))};
  std::cout << "Median daily incoming connections, after/before closure:\n";
  util::Table growth({"class", "growth"});
  using analysis::Direction;
  using analysis::EduClass;
  for (const auto cls : {EduClass::kWeb, EduClass::kEmail, EduClass::kVpn,
                         EduClass::kRemoteDesktop, EduClass::kSsh}) {
    growth.add_row({to_string(cls),
                    util::format_fixed(
                        analyzer.median_growth(cls, Direction::kIncoming,
                                               before, after), 1) + "x"});
  }
  std::cout << growth << "\n";

  // --- Overseas access hours -------------------------------------------------
  std::cout << "Incoming web connections by hour (post-closure), share of each\n"
            << "population's daily total:\n";
  double nat_total = 0, ovs_total = 0;
  for (unsigned h = 0; h < 24; ++h) {
    nat_total += national_hours[h];
    ovs_total += overseas_hours[h];
  }
  util::Table hours({"hour", "national", "overseas"});
  for (unsigned h = 0; h < 24; h += 3) {
    double nat = 0, ovs = 0;
    for (unsigned i = h; i < h + 3; ++i) {
      nat += national_hours[i];
      ovs += overseas_hours[i];
    }
    hours.add_row({std::to_string(h) + "-" + std::to_string(h + 2),
                   util::format_fixed(100 * nat / nat_total, 1) + "%",
                   util::format_fixed(100 * ovs / ovs_total, 1) + "%"});
  }
  std::cout << hours << "\n";
  std::cout << "(paper: national users connect 10am-9pm; Latin-American users\n"
            << " peak from midnight until 7 am -- time-zone differences are\n"
            << " clearly visible in the out-of-hours connections)\n";
  return 0;
}
