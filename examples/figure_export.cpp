// figure_export: writes the datasets behind the paper's headline figures
// as CSV files, ready for any plotting stack (gnuplot, matplotlib, R).
// This is the hand-off point between the C++ pipeline and figure rendering.
//
//   $ ./figure_export [output-dir] [--scan-threads N]
//
// `--scan-threads N` shards the analysis scans over N ScanEngine worker
// lanes; the emitted CSVs are byte-identical for every N (the engine's
// determinism contract).
//
// Emits:
//   fig01_<vantage>.csv      weekly normalized series (Fig 1)
//   fig09_<class>.csv        IXP-CE heatmap base + stage diffs (Fig 9)
//   fig10_vpn_profiles.csv   VPN port/domain hourly profiles (Fig 10)
//   isp_hourly.csv           raw hourly ISP series Jan-May (Figs 2/3)
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "analysis/export.hpp"
#include "analysis/scan.hpp"
#include "analysis/volume.hpp"
#include "analysis/vpn.hpp"
#include "dns/corpus.hpp"
#include "dns/vpn_finder.hpp"
#include "flow/pipeline.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"

using namespace lockdown;

namespace {

/// Synthesize `range` through the wire pipeline into a ScanEngine: decoded
/// datagram batches feed the engine's worker lanes directly.
template <typename Bundle>
void run_scan(const synth::VantagePoint& vp, const synth::AsRegistry& reg,
              net::TimeRange range, double budget,
              analysis::ScanEngine<Bundle>& engine) {
  const synth::FlowSynthesizer synth(vp.model, reg, {.connections_per_hour = budget});
  flow::ExportPump pump(vp.protocol,
                        flow::ExportPump::BatchSink(
                            [&engine](std::span<const flow::FlowRecord> batch) {
                              engine.feed(batch);
                            }));
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path out = "figure-data";
  unsigned scan_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scan-threads") == 0 && i + 1 < argc) {
      scan_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      out = argv[i];
    }
  }
  std::filesystem::create_directories(out);
  const auto registry = synth::AsRegistry::create_default();
  std::size_t files = 0;
  auto emit = [&](const util::Table& table, const std::string& name) {
    if (analysis::write_csv(table, (out / name).string())) {
      std::cout << "  " << name << "  (" << table.rows() << " rows)\n";
      ++files;
    }
  };

  // --- Fig 1 -----------------------------------------------------------------
  std::cout << "Fig 1 weekly series:\n";
  const net::TimeRange full{net::Timestamp::from_date(net::Date(2020, 1, 1)),
                            net::Timestamp::from_date(net::Date(2020, 5, 18))};
  for (const auto id :
       {synth::VantagePointId::kIspCe, synth::VantagePointId::kIxpCe,
        synth::VantagePointId::kIxpSe, synth::VantagePointId::kIxpUs,
        synth::VantagePointId::kMobileCe, synth::VantagePointId::kIpxCe}) {
    const auto vp = synth::build_vantage(id, registry,
                                         {.seed = 42, .enterprise_transit = false});
    analysis::ScanEngine<analysis::VolumeAggregator> engine(
        scan_threads, [] { return analysis::VolumeAggregator(stats::Bucket::kDay); },
        &registry.trie());
    run_scan(vp, registry, full, 150, engine);
    analysis::VolumeAggregator& agg = engine.finish();
    std::string name = to_string(id);
    for (char& c : name) c = c == '-' ? '_' : static_cast<char>(std::tolower(c));
    emit(analysis::weekly_table(analysis::weekly_normalized(agg.series(), 3)),
         "fig01_" + name + ".csv");
  }

  // --- raw hourly ISP series (input to Figs 2 and 3) ---------------------------
  {
    const auto isp = synth::build_vantage(synth::VantagePointId::kIspCe, registry,
                                          {.seed = 42, .enterprise_transit = false});
    analysis::ScanEngine<analysis::VolumeAggregator> engine(
        scan_threads, [] { return analysis::VolumeAggregator(stats::Bucket::kHour); },
        &registry.trie());
    run_scan(isp, registry, full, 150, engine);
    emit(analysis::timeseries_table(engine.finish().series(), "bytes"),
         "isp_hourly.csv");
  }

  // --- Fig 9 heatmaps (IXP-CE) --------------------------------------------------
  std::cout << "Fig 9 heatmaps (IXP-CE):\n";
  {
    const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry,
                                          {.seed = 42});
    const analysis::AsView view(registry.trie());
    const auto classifier = analysis::AppClassifier::table1();
    const std::vector<net::TimeRange> weeks = {
        net::TimeRange::week_of(net::Date(2020, 2, 20)),
        net::TimeRange::week_of(net::Date(2020, 3, 12)),
        net::TimeRange::week_of(net::Date(2020, 4, 23))};
    analysis::ScanEngine<analysis::ClassHeatmap> engine(
        scan_threads,
        [&] { return analysis::ClassHeatmap(classifier, view, weeks); },
        &registry.trie());
    for (const auto& w : weeks) run_scan(ixp, registry, w, 400, engine);
    analysis::ClassHeatmap& heatmap = engine.finish();
    for (const auto cls : heatmap.observed_classes()) {
      std::string name = synth::to_string(cls);
      for (char& c : name) c = (c == ' ' || c == '.') ? '_' : static_cast<char>(std::tolower(c));
      emit(analysis::heatmap_table(heatmap, cls, 2), "fig09_" + name + ".csv");
    }
  }

  // --- Fig 10 VPN profiles -------------------------------------------------------
  std::cout << "Fig 10 VPN profiles:\n";
  {
    const auto corpus = dns::generate_corpus({.seed = 5, .organizations = 2000});
    const auto psl = dns::PublicSuffixList::builtin();
    const auto funnel = dns::VpnCandidateFinder(psl).find(corpus.domains, corpus.dns);
    synth::ScenarioConfig cfg{.seed = 42};
    cfg.vpn_tls_server_ips.assign(funnel.candidate_ips.begin(),
                                  funnel.candidate_ips.end());
    const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry, cfg);
    const std::vector<net::TimeRange> weeks = {
        net::TimeRange::week_of(net::Date(2020, 2, 20)),
        net::TimeRange::week_of(net::Date(2020, 3, 19)),
        net::TimeRange::week_of(net::Date(2020, 4, 23))};
    analysis::ScanEngine<analysis::VpnAnalyzer> engine(
        scan_threads,
        [&] { return analysis::VpnAnalyzer(weeks, funnel.candidate_ips); },
        &registry.trie());
    for (const auto& w : weeks) run_scan(ixp, registry, w, 500, engine);
    emit(analysis::vpn_profile_table(engine.finish().profiles()),
         "fig10_vpn_profiles.csv");
  }

  std::cout << "\nwrote " << files << " CSV files to " << out << "\n";
  return 0;
}
