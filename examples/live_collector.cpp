// live_collector: the deployment shape of this library -- an IPFIX
// exporter streaming over real UDP sockets into a rotating collector
// daemon that anonymizes on arrival and spools 15-minute trace slices to
// disk, followed by an analysis pass over the spooled slices.
//
// Everything runs in one process over the loopback interface so the
// example is self-contained, but the three roles (exporter, collector,
// analyst) only communicate through datagrams and trace files -- exactly
// how they would be split across machines.
//
// With --shards N the collector runs on the sharded ingestion runtime
// (src/runtime/): the drain loop stays a single wire thread, decode and
// anonymization fan out to N worker shards keyed by export source, and
// the engine's backpressure/drop counters are reported at the end.
//
// With --metrics the collector binds its counters into an obs::Registry:
// a snapshot line is printed periodically while the stream runs, and the
// full Prometheus text exposition is dumped at the end of the run.
//
// With --gen-threads N the exporter synthesizes its flow stream on N
// worker threads; the delivered stream (and thus every datagram) is
// byte-identical to the single-threaded one.
//
// With --wire-threads N the collector ingests through the async network
// plane (src/net/eventloop/ + runtime::WirePlane): N SO_REUSEPORT sockets,
// each drained by its own epoll wire thread with recvmmsg batches straight
// into pooled arena buffers, merged back into deterministic slices by the
// daemon's arrival-ticket order. Implies the sharded runtime (defaults to
// N worker shards when --shards is absent). The exporter side opens one
// sender socket per observation domain so the kernel's 4-tuple hash
// actually spreads the stream across the lanes.
//
// With --listen PORT the process becomes an inspectable service: an HTTP
// exposer serves GET /metrics (live Prometheus text), GET /healthz (shard
// liveness, ring occupancy, sequence loss as JSON), GET /trace?ms=N
// (capture N ms of pipeline spans as Chrome Trace Event JSON),
// GET /history?series=G&window=S (recorded metrics history, when --history
// is on), and GET /profile?seconds=N&hz=H (folded CPU stacks from the
// sampling profiler). --listen implies --metrics. --trace-out FILE writes
// the whole run's span trace to FILE at exit (load it in Perfetto /
// chrome://tracing); --linger-ms N keeps the exposer serving for N ms
// after the run so external scrapers can catch a short-lived process.
//
// With --history MS the flight recorder samples every metric series into
// fixed-size history rings every MS milliseconds (obs/recorder.hpp);
// --history-out FILE additionally journals rotated CSVs to FILE.<stamp>.csv
// while running and dumps the full retained history to FILE on clean
// shutdown. --profile-hz H arms the sampling CPU profiler for the whole
// run and prints where the time went at the end.
//
// With --monitor 'name=expr' (repeatable) the collector routes every
// decoded batch through compiled monitoring objects (src/filter/): each
// object owns one filter-DSL expression and counts the flows, bytes and
// packets that match it. Counters appear on /metrics and /healthz while
// the stream runs and are printed (then cleanly unregistered) at the end.
// --monitor-file FILE loads 'name = expression' lines from a file.
//
// With --window SECONDS the monitoring objects stream: every object gets a
// double-banked window aggregator (src/stream/), rotated on flow time, and
// completed windows are drained in the ship loop. --window-key picks the
// aggregation tuple (e.g. 'dst_as,service'; default scalar totals);
// --window-csv FILE exports every completed window as CSV. --mavg K arms a
// moving-average watch over the last K windows: --mavg-over F /
// --mavg-under F fire when a window's value crosses F times the average of
// the windows before it (counters + log lines), --mavg-metric picks
// flows|bytes|packets, --mavg-ewma ALPHA switches to an EWMA. Window state
// is served on /healthz next to the monitor totals.
//
// With --flow-sampling N the exporter keeps every Nth flow (systematic
// 1-in-N, bytes/packets rescaled inside the surviving records) and the
// collector-side monitor + stream layers rescale flow *counts* by N --
// the sampler contract documented in filter/monitor.hpp.
//
//   $ ./live_collector [output-dir] [--shards N] [--wire-threads N]
//                      [--gen-threads N] [--metrics]
//                      [--listen PORT] [--trace-out FILE] [--linger-ms N]
//                      [--history MS] [--history-out FILE] [--profile-hz H]
//                      [--monitor 'vpn=dst port 1194,443 and proto udp']...
//                      [--monitor-file FILE] [--flow-sampling N]
//                      [--window SECONDS] [--window-key dst_as,service]
//                      [--window-csv FILE] [--mavg K] [--mavg-over F]
//                      [--mavg-under F] [--mavg-metric flows|bytes|packets]
//                      [--mavg-ewma ALPHA]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "analysis/app_filter.hpp"
#include "analysis/as_view.hpp"
#include "analysis/volume.hpp"
#include "filter/monitor.hpp"
#include "flow/collector_daemon.hpp"
#include "flow/ipfix.hpp"
#include "flow/sampler.hpp"
#include "flow/trace_file.hpp"
#include "flow/udp_transport.hpp"
#include "net/eventloop/udp_batch_socket.hpp"
#include "obs/build_info.hpp"
#include "obs/http_exposer.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "obs/watermark.hpp"
#include "runtime/sharded_daemon.hpp"
#include "runtime/wire_plane.hpp"
#include "stream/engine.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace lockdown;

int main(int argc, char** argv) {
  std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() / "lockdown_slices";
  std::size_t shards = 0;  // 0 = classic single-threaded daemon
  std::size_t wire_threads = 0;  // 0 = inline drain on the ship loop
  std::size_t gen_threads = 1;
  bool metrics_enabled = false;
  int listen_port = -1;  // -1 = no exposer
  std::string trace_out;
  long linger_ms = 0;
  long history_ms = 0;  // 0 = no flight recorder
  std::string history_out;
  long profile_hz = 0;  // 0 = profiler off
  std::vector<std::string> monitor_args;
  std::vector<std::string> monitor_files;
  long window_seconds = 0;  // 0 = no streaming layer
  std::string window_key_csv;
  std::string window_csv_path;
  long mavg_k = 0;  // 0 = no moving-average watch
  double mavg_over = 0.0;
  double mavg_under = 0.0;
  std::string mavg_metric_name = "flows";
  double mavg_ewma_alpha = 0.0;  // > 0 switches to EWMA
  long flow_sampling = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--wire-threads" && i + 1 < argc) {
      wire_threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--gen-threads" && i + 1 < argc) {
      gen_threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--metrics") {
      metrics_enabled = true;
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
      metrics_enabled = true;  // a scrape endpoint without metrics is empty
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--linger-ms" && i + 1 < argc) {
      linger_ms = std::atol(argv[++i]);
    } else if (arg == "--history" && i + 1 < argc) {
      history_ms = std::atol(argv[++i]);
      metrics_enabled = true;  // the recorder samples the registry
    } else if (arg == "--history-out" && i + 1 < argc) {
      history_out = argv[++i];
    } else if (arg == "--profile-hz" && i + 1 < argc) {
      profile_hz = std::atol(argv[++i]);
    } else if (arg == "--monitor" && i + 1 < argc) {
      monitor_args.emplace_back(argv[++i]);
    } else if (arg == "--monitor-file" && i + 1 < argc) {
      monitor_files.emplace_back(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window_seconds = std::atol(argv[++i]);
    } else if (arg == "--window-key" && i + 1 < argc) {
      window_key_csv = argv[++i];
    } else if (arg == "--window-csv" && i + 1 < argc) {
      window_csv_path = argv[++i];
    } else if (arg == "--mavg" && i + 1 < argc) {
      mavg_k = std::atol(argv[++i]);
    } else if (arg == "--mavg-over" && i + 1 < argc) {
      mavg_over = std::atof(argv[++i]);
    } else if (arg == "--mavg-under" && i + 1 < argc) {
      mavg_under = std::atof(argv[++i]);
    } else if (arg == "--mavg-metric" && i + 1 < argc) {
      mavg_metric_name = argv[++i];
    } else if (arg == "--mavg-ewma" && i + 1 < argc) {
      mavg_ewma_alpha = std::atof(argv[++i]);
    } else if (arg == "--flow-sampling" && i + 1 < argc) {
      flow_sampling = std::atol(argv[++i]);
    } else {
      out_dir = arg;
    }
  }
  std::filesystem::create_directories(out_dir);
  obs::Registry obs_registry;
  obs::Registry* metrics = metrics_enabled ? &obs_registry : nullptr;
  if (metrics != nullptr) obs::register_build_info(obs_registry);
  obs::Tracer::instance().set_this_thread_name("wire");

  // --- Flight recorder -------------------------------------------------------
  // Declared right after the registry (and before everything that binds
  // metrics into it) so its sampling sees the whole lifecycle and it is
  // destroyed last. The exposer's tick drives the sampling clock when
  // --listen is active; otherwise the recorder runs its own thread.
  std::optional<obs::MetricsRecorder> recorder;
  if (history_ms > 0) {
    obs::RecorderConfig rcfg;
    rcfg.interval = std::chrono::milliseconds(history_ms);
    rcfg.journal_path = history_out;
    recorder.emplace(obs_registry, rcfg);
    std::cout << "flight recorder sampling every " << history_ms << " ms ("
              << rcfg.capacity << "-sample rings"
              << (history_out.empty() ? std::string{}
                                      : ", journal -> " + history_out)
              << ")\n";
  }

  // The AS registry backs both the synthesizer (exporter side) and the
  // monitoring objects' ASN lookups (collector side), so it comes first.
  const auto registry = synth::AsRegistry::create_default();

  // --- Monitoring objects --------------------------------------------------
  // Compiled once at startup; route_batch then runs inside the collector's
  // ingest path (on the worker shards when --shards is active, which is
  // safe: the counters are commutative atomic sums).
  filter::MonitorSet monitors(&registry.trie());
  try {
    for (const std::string& def : monitor_args) {
      const auto eq = def.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "error: --monitor expects name=expression, got '" << def
                  << "'\n";
        return 1;
      }
      monitors.add(def.substr(0, eq), def.substr(eq + 1));
    }
    for (const std::string& file : monitor_files) {
      std::FILE* f = std::fopen(file.c_str(), "rb");
      if (f == nullptr) {
        std::cerr << "error: cannot read monitor file " << file << "\n";
        return 1;
      }
      std::string text;
      std::array<char, 4096> chunk;
      std::size_t n = 0;
      while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
        text.append(chunk.data(), n);
      }
      std::fclose(f);
      monitors.add_definitions(text, file);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!monitors.empty()) {
    std::cout << monitors.size() << " monitoring object(s):\n";
    for (const auto& object : monitors) {
      std::cout << "  " << object->name() << " = " << object->filter().source()
                << "\n";
    }
    if (metrics != nullptr) monitors.bind_metrics(obs_registry);
  }
  if (flow_sampling > 1) {
    // Exporter-side 1-in-N sampling rescales bytes/packets per record; the
    // collector-side layers only need the flow-count side of the contract.
    monitors.set_flow_scale(static_cast<double>(flow_sampling));
  }

  // --- Streaming windows -----------------------------------------------------
  // Declared after `monitors` (and before the daemons): the destructor
  // detaches the per-object hooks, so it must run before MonitorSet's.
  std::optional<stream::StreamMonitor> streamer;
  std::optional<util::Table> window_table;
  if (window_seconds > 0) {
    if (monitors.empty()) {
      std::cerr << "error: --window needs at least one --monitor object\n";
      return 1;
    }
    stream::StreamConfig scfg;
    scfg.window.window_seconds = window_seconds;
    const auto key = stream::parse_key_tuple(window_key_csv);
    if (!key) {
      std::cerr << "error: bad --window-key '" << window_key_csv << "'\n";
      return 1;
    }
    scfg.window.key = *key;
    if (mavg_k > 0) {
      const auto metric = stream::parse_mavg_metric(mavg_metric_name);
      if (!metric) {
        std::cerr << "error: bad --mavg-metric '" << mavg_metric_name << "'\n";
        return 1;
      }
      scfg.mavg = stream::MavgConfig{
          .k = static_cast<std::size_t>(mavg_k),
          .metric = *metric,
          .ewma = mavg_ewma_alpha > 0.0,
          .alpha = mavg_ewma_alpha > 0.0 ? mavg_ewma_alpha : 0.25,
          .overlimit = mavg_over,
          .underlimit = mavg_under};
    }
    try {
      streamer.emplace(monitors, scfg);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    if (flow_sampling > 1) {
      streamer->set_flow_scale(static_cast<double>(flow_sampling));
    }
    if (metrics != nullptr) streamer->bind_metrics(obs_registry);
    if (!window_csv_path.empty()) {
      window_table.emplace(std::vector<std::string>{
          "object", "window", "seq", "key", "flows", "bytes", "packets"});
      streamer->set_window_sink([&](const stream::ObjectStream& os,
                                    const stream::WindowResult& r) {
        const auto& tuple = streamer->config().window.key;
        window_table->add_row({os.name(), r.begin.to_string(),
                               std::to_string(r.seq), "*",
                               std::to_string(r.total.flows),
                               std::to_string(r.total.bytes),
                               std::to_string(r.total.packets)});
        auto rows = r.rows;
        std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
          return a.first < b.first;
        });
        for (const auto& [k, acc] : rows) {
          window_table->add_row({os.name(), r.begin.to_string(),
                                 std::to_string(r.seq),
                                 stream::key_to_string(tuple, k),
                                 std::to_string(acc.flows),
                                 std::to_string(acc.bytes),
                                 std::to_string(acc.packets)});
        }
      });
    }
    std::cout << "streaming windows: " << window_seconds << "s"
              << (scfg.window.key.empty() ? "" : ", key=" + window_key_csv);
    if (scfg.mavg) {
      std::cout << ", mavg k=" << scfg.mavg->k << " metric="
                << stream::to_string(scfg.mavg->metric)
                << (scfg.mavg->ewma ? " (ewma)" : "");
    }
    std::cout << "\n";
  }

  // --- Collector side ------------------------------------------------------
  // --wire-threads runs on the async plane, which needs the sharded
  // runtime's lane-ticket merge; default to one worker shard per lane.
  if (wire_threads > 0 && shards == 0) shards = wire_threads;

  // 1 MiB socket buffer: the wire thread shares a core with the exporter
  // in this self-contained setup, so give the kernel room to queue. The
  // async plane (--wire-threads) binds its own sockets instead.
  std::optional<flow::UdpCollectorTransport> transport;
  if (wire_threads == 0) {
    transport = flow::UdpCollectorTransport::create(0, 1 << 20);
    if (!transport) {
      std::cerr << "error: cannot bind a loopback UDP socket\n";
      return 1;
    }
    std::cout << "collector listening on 127.0.0.1:" << transport->port()
              << " (rcvbuf " << transport->rcvbuf_bytes() << " bytes)\n";
  }

  const flow::Anonymizer anonymizer({0x10cd0ULL, 0xeffec7ULL},
                                    flow::AnonymizationMode::kPrefixPreserving);
  std::vector<std::filesystem::path> slice_paths;
  const auto slice_sink = [&](flow::TraceSlice&& slice) {
    const auto path =
        out_dir / ("slice-" + std::to_string(slice.begin.seconds()) + ".lft");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(slice.image.data(), 1, slice.image.size(), f);
      std::fclose(f);
      slice_paths.push_back(path);
    }
  };

  // Monitoring objects observe every decoded (and already anonymized)
  // batch; an empty set wires no observer at all.
  flow::Collector::BatchSink monitor_sink;
  if (!monitors.empty()) monitor_sink = monitors.batch_sink();

  std::optional<flow::CollectorDaemon> daemon;
  std::optional<runtime::ShardedCollectorDaemon> sharded;
  std::unique_ptr<runtime::WirePlane> plane;
  if (shards > 0) {
    std::cout << "sharded runtime: " << shards << " worker shards\n";
    sharded.emplace(
        runtime::ShardedDaemonConfig{.protocol = flow::ExportProtocol::kIpfix,
                                     .shards = shards,
                                     .rotation_seconds = 15 * 60,
                                     .anonymizer = &anonymizer,
                                     .wire_lanes =
                                         wire_threads > 0 ? wire_threads : 1,
                                     .metrics = metrics,
                                     .batch_observer = monitor_sink},
        slice_sink);
  } else {
    daemon.emplace(
        flow::CollectorDaemonConfig{.protocol = flow::ExportProtocol::kIpfix,
                                    .rotation_seconds = 15 * 60,
                                    .anonymizer = &anonymizer,
                                    .metrics = metrics,
                                    .batch_observer = monitor_sink},
        slice_sink);
  }
  const auto ingest = [&](std::span<const std::uint8_t> d) {
    if (sharded) {
      sharded->ingest(d);
    } else {
      daemon->ingest(d);
    }
  };

  if (wire_threads > 0) {
    runtime::WirePlaneConfig pcfg;
    pcfg.lanes = wire_threads;
    pcfg.metrics = metrics;
    plane = runtime::WirePlane::create(pcfg, *sharded);
    if (!plane) {
      std::cerr << "error: cannot bind the wire-plane sockets\n";
      return 1;
    }
    std::cout << "async wire plane on 127.0.0.1:" << plane->port() << " ("
              << plane->lanes() << " epoll lane(s), "
              << (plane->reuseport_active() ? "SO_REUSEPORT"
                                            : "single socket fallback")
              << ", "
              << (net::UdpBatchSocket::batch_receive_supported()
                      ? "recvmmsg"
                      : "recvmsg fallback")
              << ")\n";
  }

  // --- Observability endpoint ----------------------------------------------
  // The health and scrape callbacks run on the exposer's listener thread
  // while the pipeline runs, so they only touch thread-safe state: the
  // registry (mutex), EngineStats snapshots (atomics), arena stats (mutex),
  // and the tracer (lock-free rings + mutex).
  std::unique_ptr<obs::HttpExposer> exposer;
  if (listen_port >= 0) {
    obs::HttpExposerConfig cfg;
    cfg.port = static_cast<std::uint16_t>(listen_port);
    cfg.registry = &obs_registry;
    cfg.health = [&]() {
      std::string j = "{\"status\":\"ok\",\"mode\":\"";
      j += sharded ? "sharded" : "single";
      j += '"';
      if (sharded) {
        const runtime::EngineSnapshot e = sharded->engine_snapshot();
        j += ",\"wire_datagrams\":" + std::to_string(e.wire_datagrams);
        j += ",\"records\":" + std::to_string(e.records);
        j += ",\"sequence_lost\":" + std::to_string(e.sequence_lost);
        j += ",\"ring_dropped\":" + std::to_string(e.dropped);
        j += ",\"queue_high_water\":" + std::to_string(e.queue_high_water);
        if (plane) {
          j += ",\"wire_plane\":{\"lanes\":" + std::to_string(plane->lanes());
          j += ",\"reuseport\":";
          j += plane->reuseport_active() ? "true" : "false";
          j += ",\"datagrams\":" + std::to_string(plane->datagrams());
          j += ",\"kernel_drops\":" + std::to_string(plane->kernel_drops());
          j += ",\"truncated\":" + std::to_string(plane->truncated());
          j += '}';
        }
        j += ",\"shards\":[";
        for (std::size_t i = 0; i < e.shards.size(); ++i) {
          if (i > 0) j += ',';
          j += "{\"datagrams\":" + std::to_string(e.shards[i].datagrams);
          j += ",\"records\":" + std::to_string(e.shards[i].records);
          j += ",\"queue_high_water\":" +
               std::to_string(e.shards[i].queue_high_water);
          j += '}';
        }
        j += ']';
      }
      if (!monitors.empty()) {
        j += ",\"monitors\":[";
        bool first = true;
        for (const auto& object : monitors) {
          if (!first) j += ',';
          first = false;
          j += "{\"name\":\"" + object->name() + "\"";
          j += ",\"flows\":" + std::to_string(object->flows());
          j += ",\"bytes\":" + std::to_string(object->bytes());
          j += ",\"packets\":" + std::to_string(object->packets());
          j += '}';
        }
        j += ']';
      }
      if (streamer) {
        j += ",\"stream\":{\"window_seconds\":" +
             std::to_string(streamer->config().window.window_seconds);
        j += ",\"objects\":[";
        bool first = true;
        for (const auto& os : *streamer) {
          if (!first) j += ',';
          first = false;
          j += "{\"name\":\"" + os->name() + "\"";
          j += ",\"windows\":" + std::to_string(os->windows());
          j += ",\"pending\":" + std::to_string(os->aggregator().pending());
          if (os->has_mavg()) {
            j += ",\"overlimit\":" + std::to_string(os->overlimit_events());
            j += ",\"underlimit\":" + std::to_string(os->underlimit_events());
            j += ",\"value\":" + std::to_string(os->last_value());
            j += ",\"mavg\":" + std::to_string(os->last_mavg());
          }
          j += '}';
        }
        j += "]}";
      }
      j += ",\"trace_threads\":" +
           std::to_string(obs::Tracer::instance().threads());
      j += ",\"trace_dropped_spans\":" +
           std::to_string(obs::Tracer::instance().dropped());
      j += "}\n";
      return j;
    };
    cfg.before_scrape = [&]() {
      obs::refresh_process_gauges(obs_registry);
      if (sharded) {
        runtime::publish_engine_snapshot(obs_registry,
                                         sharded->engine_snapshot());
        flow::publish_arena_stats(obs_registry, sharded->arena_stats());
      }
      if (plane) runtime::publish_wire_plane_stats(obs_registry, *plane);
    };
    if (recorder) cfg.recorder = &*recorder;
    cfg.profiler = &obs::CpuProfiler::instance();
    exposer = obs::HttpExposer::create(std::move(cfg));
    if (!exposer) {
      std::cerr << "error: cannot bind 127.0.0.1:" << listen_port
                << " for the observability endpoint\n";
      return 1;
    }
    std::cout << "observability endpoint on http://127.0.0.1:"
              << exposer->port()
              << " (/metrics /healthz /trace?ms=N /history /profile)\n";
  } else if (recorder) {
    recorder->start();  // no exposer tick to ride: own sampling thread
  }

  // --- Exporter side ---------------------------------------------------------
  // One sender socket per observation domain when the wire plane is up:
  // SO_REUSEPORT distributes by 4-tuple hash, so distinct source ports are
  // what actually spread the domains across the lanes. The classic path
  // keeps its single socket (one FIFO queue either way).
  const std::uint16_t collector_port =
      plane ? plane->port() : transport->port();
  std::vector<flow::UdpExporterTransport> exporters;
  for (std::size_t i = 0; i < (plane ? std::size_t{4} : std::size_t{1}); ++i) {
    auto exporter = flow::UdpExporterTransport::create(collector_port);
    if (!exporter) {
      std::cerr << "error: cannot create the exporter socket\n";
      return 1;
    }
    exporters.push_back(std::move(*exporter));
  }
  const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry,
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(
      ixp.model, registry,
      {.connections_per_hour = 400, .gen_threads = gen_threads});
  if (gen_threads > 1) {
    std::cout << "synthesizing on " << gen_threads << " generator threads\n";
  }

  if (profile_hz > 0) {
    if (obs::CpuProfiler::instance().start(static_cast<int>(profile_hz))) {
      std::cout << "cpu profiler sampling at " << profile_hz << " Hz\n";
    } else {
      std::cerr << "warning: cpu profiler unavailable "
                << (obs::CpuProfiler::supported() ? "(already running)"
                                                  : "(unsupported platform)")
                << "\n";
    }
  }

  std::cout << "streaming two hours of lockdown-evening IXP traffic...\n";
  // Four observation domains, round-robin per batch: the sharded runtime
  // keys its shard routing on the export source, so a single domain would
  // funnel every datagram into one shard. Four domains behave like four
  // routers behind one collector and actually exercise the fan-out.
  std::array<flow::IpfixEncoder, 4> encoders{
      flow::IpfixEncoder(900), flow::IpfixEncoder(901), flow::IpfixEncoder(902),
      flow::IpfixEncoder(903)};
  std::size_t next_encoder = 0;
  flow::PacketBatch packets;  // reused across ships; capacity persists
  std::vector<flow::FlowRecord> batch;
  std::size_t ships = 0;
  const auto metrics_line = [&]() {
    const obs::RegistrySnapshot snap = obs_registry.snapshot();
    const std::string l = "protocol=\"ipfix\"";
    std::cout << "  [metrics] packets="
              << snap.counter_value("collector_packets_total", l)
              << " records=" << snap.counter_value("collector_records_total", l)
              << " seq_lost=" << snap.counter_value("collector_sequence_lost_total", l)
              << " decode_errors="
              << snap.counter_value("collector_decode_errors_total",
                                    "error=\"truncated_header\"," + l) +
                     snap.counter_value("collector_decode_errors_total",
                                        "error=\"bad_length\"," + l);
    // Pipeline freshness: wall-clock lag behind the newest wire arrival
    // whose batch fully left the pipeline (runtime/sharded_daemon.hpp).
    if (sharded) {
      const std::uint64_t mark = sharded->released_watermark_ns();
      if (mark != 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      static_cast<double>(obs::trace_now_ns() - mark) / 1e6);
        std::cout << " wm_lag_ms=" << buf;
      }
    }
    if (recorder) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", recorder->ring_occupancy());
      std::cout << " rec_samples=" << recorder->samples() << " rec_ring="
                << buf;
    }
    std::cout << "\n";
  };
  auto ship = [&]() {
    if (batch.empty()) return;
    // Compiled batch encode into one reused buffer; the default limits
    // keep every datagram under the 1500-byte MTU (the per-field encode()
    // could emit 1920-byte messages for IPv6-heavy chunks).
    packets.clear();
    flow::IpfixEncoder& encoder = encoders[next_encoder];
    flow::UdpExporterTransport& exporter =
        exporters[next_encoder % exporters.size()];
    next_encoder = (next_encoder + 1) % encoders.size();
    encoder.encode_batch(batch, flow::batch_export_time(batch), packets);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      exporter.send(packets.packet(i));
    }
    batch.clear();
    // Drain the wire as we go (single-threaded poll loop on this side);
    // with --wire-threads the plane's lane threads ingest on their own.
    if (transport) (void)transport->drain(ingest);
    if (plane) {
      // Delivery pacing keeps the demo deterministic: each ship targets
      // one domain (one lane), and waiting for its tickets before the
      // next ship makes the global arrival order equal the send order --
      // so slices stay byte-identical to the classic daemon. Free-running
      // deployments skip this and accept scheduler-dependent cross-source
      // interleaving (per-source order is still kernel-guaranteed).
      std::uint64_t on_wire = 0;
      for (const auto& e : exporters) on_wire += e.sent() - e.dropped();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (sharded->engine_snapshot().wire_datagrams + plane->kernel_drops() <
                 on_wire &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
    // Completed windows are consumed here, on the owner thread; rotation
    // happened inside the ingest path without blocking it.
    if (streamer) (void)streamer->poll();
    // Periodic observability heartbeat, the live analogue of a scrape. The
    // classic kernel-drop gauge is published here because UdpSocket's
    // kernel_drops() is maintained by this (the draining) thread; the
    // plane's counters are relaxed atomics, safe to publish live.
    if (metrics != nullptr && (++ships & 1023) == 0) {
      if (transport) flow::publish_udp_stats(obs_registry, *transport);
      if (plane) runtime::publish_wire_plane_stats(obs_registry, *plane);
      metrics_line();
    }
  };
  // Exporter-side systematic sampling: bytes/packets of survivors are
  // scaled inside the record, exactly like a sampling router announces.
  flow::SystematicSampler sampler(
      flow_sampling > 1 ? static_cast<std::uint32_t>(flow_sampling) : 1);
  if (flow_sampling > 1) {
    std::cout << "exporter samples 1-in-" << flow_sampling
              << " flows (collector rescales flow counts)\n";
  }
  synth.synthesize(
      net::TimeRange{net::Timestamp::from_date(net::Date(2020, 3, 25), 19),
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 21)},
      [&](const flow::FlowRecord& r) {
        const auto sampled = sampler.offer(r);
        if (!sampled) return;
        batch.push_back(*sampled);
        if (batch.size() == 48) ship();
      });
  ship();
  std::uint64_t datagrams_sent = 0;
  std::uint64_t exporter_dropped = 0;
  for (const auto& exporter : exporters) {
    datagrams_sent += exporter.sent();
    exporter_dropped += exporter.dropped();
  }
  if (transport) {
    for (int i = 0; i < 50; ++i) {  // drain any stragglers
      (void)transport->drain(ingest);
    }
  }
  if (plane) {
    // The lane threads ingest asynchronously: wait until everything the
    // exporter put on the wire is either delivered or accounted as a
    // kernel drop before tearing the plane down.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sharded->engine_snapshot().wire_datagrams + plane->kernel_drops() <
               datagrams_sent - exporter_dropped &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    plane->stop();
  }

  flow::CollectorStats wire_stats;
  std::size_t spooled = 0, slices = 0;
  if (sharded) {
    sharded->flush();
    wire_stats = sharded->wire_stats();
    spooled = sharded->records_spooled();
    slices = sharded->slices_emitted();
  } else {
    daemon->flush();
    wire_stats = daemon->wire_stats();
    spooled = daemon->records_spooled();
    slices = daemon->slices_emitted();
  }

  const std::uint64_t kernel_drops =
      plane ? plane->kernel_drops() : transport->kernel_drops();
  std::cout << "  datagrams sent: " << datagrams_sent << " ("
            << exporter_dropped << " dropped, " << kernel_drops
            << " shed by the kernel)\n";
  if (plane) {
    const std::uint64_t syscalls = plane->syscalls();
    std::cout << "  wire plane: " << plane->datagrams() << " datagrams over "
              << plane->lanes() << " lane(s) in " << syscalls
              << " receive syscalls";
    if (syscalls > 0) {
      std::cout << " (" << plane->datagrams() / syscalls
                << " datagrams/syscall)";
    }
    std::cout << "\n";
  }
  std::cout << "  records spooled: " << spooled << " into " << slices
            << " slices\n";
  std::cout << "  malformed packets: " << wire_stats.malformed_packets << "\n";
  std::cout << "  export loss: " << wire_stats.sequence_lost
            << " records across " << wire_stats.sequence_gaps
            << " sequence gaps (" << wire_stats.sequence_resets
            << " exporter resets)\n";
  if (sharded) {
    const auto engine = sharded->engine_snapshot();
    std::cout << "  engine: " << engine.dropped << " ring drops, queue high-water "
              << engine.queue_high_water << "\n  per shard:";
    for (std::size_t i = 0; i < engine.shards.size(); ++i) {
      std::cout << " [" << i << "] " << engine.shards[i].records << " records";
    }
    std::cout << "\n";
    if (metrics != nullptr) {
      runtime::publish_engine_snapshot(obs_registry, engine);
      flow::publish_arena_stats(obs_registry, sharded->arena_stats());
    }
  }
  if (!monitors.empty()) {
    std::cout << "  monitoring objects (flows / bytes / packets):\n";
    for (const auto& object : monitors) {
      std::cout << "    " << object->name() << ": " << object->flows() << " / "
                << util::format_bytes(object->bytes()) << " / "
                << object->packets() << "\n";
    }
  }
  if (streamer) {
    // The daemon is flushed; close the partial windows and drain the rest.
    streamer->flush();
    (void)streamer->poll();
    std::cout << "  streaming windows (" << window_seconds << "s):\n";
    for (const auto& os : *streamer) {
      std::cout << "    " << os->name() << ": " << os->windows()
                << " windows";
      if (os->has_mavg()) {
        std::cout << ", " << os->overlimit_events() << " overlimit / "
                  << os->underlimit_events() << " underlimit events";
      }
      std::cout << "\n";
    }
    if (window_table) {
      std::FILE* f = std::fopen(window_csv_path.c_str(), "wb");
      if (f == nullptr) {
        std::cerr << "error: cannot write window CSV to " << window_csv_path
                  << "\n";
        return 1;
      }
      const std::string csv = window_table->to_csv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::cout << "  window CSV (" << window_table->rows() << " rows) -> "
                << window_csv_path << "\n";
    }
  }
  if (metrics != nullptr) {
    if (transport) flow::publish_udp_stats(obs_registry, *transport);
    if (plane) runtime::publish_wire_plane_stats(obs_registry, *plane);
    obs::refresh_process_gauges(obs_registry);
    metrics_line();
    std::cout << "\n--- end-of-run metrics dump (Prometheus text format) ---\n"
              << obs_registry.expose_text()
              << "--- end dump ---\n";
    if (!monitors.empty()) {
      // Clean shutdown of the monitoring layer: the daemon is flushed (no
      // route_batch can race), so the per-object counters unregister and a
      // later scrape no longer mentions them.
      if (streamer) streamer->unbind_metrics();
      monitors.unbind_metrics();
      const std::string after = obs_registry.expose_text();
      const bool clean = after.find("monitor_matched_") == std::string::npos &&
                         after.find("stream_") == std::string::npos;
      std::cout << "monitor + stream metrics unregistered from /metrics ("
                << (clean ? "verified absent" : "STILL PRESENT -- bug")
                << ")\n";
    }
  }
  if (recorder) {
    if (!exposer) recorder->stop();
    recorder->sample();  // one final tick so the dump holds closing values
    std::cout << "flight recorder: " << recorder->samples() << " samples over "
              << recorder->series() << " series\n";
    if (!history_out.empty()) {
      const std::string csv = recorder->to_csv("*", 0);
      std::FILE* f = std::fopen(history_out.c_str(), "wb");
      if (f == nullptr) {
        std::cerr << "error: cannot write history CSV to " << history_out
                  << "\n";
        return 1;
      }
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::cout << "history CSV -> " << history_out << "\n";
    }
  }
  if (profile_hz > 0 && obs::CpuProfiler::instance().running()) {
    obs::CpuProfiler& prof = obs::CpuProfiler::instance();
    prof.stop();
    // Top stacks by sample count: where the run's CPU time actually went.
    std::vector<std::pair<std::uint64_t, std::string>> stacks;
    const std::string folded = prof.folded();
    std::size_t pos = 0;
    while (pos < folded.size()) {
      const std::size_t eol = std::min(folded.find('\n', pos), folded.size());
      const std::string_view line =
          std::string_view(folded).substr(pos, eol - pos);
      pos = eol + 1;
      const std::size_t sp = line.rfind(' ');
      if (sp == std::string_view::npos) continue;
      const std::string_view stack = line.substr(0, sp);
      const std::uint64_t count =
          std::strtoull(std::string(line.substr(sp + 1)).c_str(), nullptr, 10);
      const std::size_t leaf = stack.rfind(';');
      stacks.emplace_back(count, std::string(leaf == std::string_view::npos
                                                 ? stack
                                                 : stack.substr(leaf + 1)));
    }
    std::sort(stacks.begin(), stacks.end(), std::greater<>());
    std::cout << "cpu profiler: " << prof.samples() << " samples at "
              << profile_hz << " Hz (" << prof.dropped()
              << " lost to ring wrap)\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(3, stacks.size()); ++i) {
      std::cout << "    " << stacks[i].first << "  " << stacks[i].second
                << "\n";
    }
  }
  std::cout << "\n";

  // --- Analyst side -----------------------------------------------------------
  std::cout << "analyzing spooled slices from " << out_dir << ":\n";
  const analysis::AppClassifier classifier = analysis::AppClassifier::table1();
  const analysis::AsView as_view(registry.trie());
  analysis::VolumeAggregator volume(stats::Bucket::kHour);
  std::size_t classified = 0, records_seen = 0;
  for (const auto& path : slice_paths) {
    const auto trace = flow::read_trace_file(path.string());
    if (!trace) continue;
    for (const auto& r : trace->records) volume.add(r);
    records_seen += trace->records.size();
    for (const auto& cls :
         classifier.classify_batch(trace->records, as_view)) {
      if (cls) ++classified;
    }
  }
  for (const auto& [hour, bytes] : volume.series().points()) {
    std::cout << "  " << hour.to_string() << "  "
              << util::format_bytes(bytes) << "\n";
  }
  std::cout << "  app-classified " << classified << " of " << records_seen
            << " records (Table 1 filters)\n";
  std::cout << "\n(the analyst never saw a raw address: slices were\n"
            << " prefix-preservingly anonymized at the collector)\n";

  // --- Span trace export ------------------------------------------------------
  // Written after the analyst pass so the trace covers every stage: wire
  // ingest, shard decode, classification, and the encode side.
  if (!trace_out.empty()) {
    const std::string json = obs::Tracer::instance().chrome_json();
    std::FILE* f = std::fopen(trace_out.c_str(), "wb");
    if (f == nullptr) {
      std::cerr << "error: cannot write trace to " << trace_out << "\n";
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::cout << "span trace written to " << trace_out
              << " (load in Perfetto or chrome://tracing)\n";
  }

  if (exposer && linger_ms > 0) {
    std::cout << "lingering " << linger_ms
              << " ms for external scrapers (port " << exposer->port()
              << ")...\n"
              << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  return 0;
}
