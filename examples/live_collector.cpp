// live_collector: the deployment shape of this library -- an IPFIX
// exporter streaming over real UDP sockets into a rotating collector
// daemon that anonymizes on arrival and spools 15-minute trace slices to
// disk, followed by an analysis pass over the spooled slices.
//
// Everything runs in one process over the loopback interface so the
// example is self-contained, but the three roles (exporter, collector,
// analyst) only communicate through datagrams and trace files -- exactly
// how they would be split across machines.
//
//   $ ./live_collector [output-dir]
#include <filesystem>
#include <iostream>

#include "analysis/volume.hpp"
#include "flow/collector_daemon.hpp"
#include "flow/ipfix.hpp"
#include "flow/trace_file.hpp"
#include "flow/udp_transport.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"

using namespace lockdown;

int main(int argc, char** argv) {
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "lockdown_slices";
  std::filesystem::create_directories(out_dir);

  // --- Collector side ------------------------------------------------------
  auto transport = flow::UdpCollectorTransport::create();
  if (!transport) {
    std::cerr << "error: cannot bind a loopback UDP socket\n";
    return 1;
  }
  std::cout << "collector listening on 127.0.0.1:" << transport->port() << "\n";

  const flow::Anonymizer anonymizer({0x10cd0ULL, 0xeffec7ULL},
                                    flow::AnonymizationMode::kPrefixPreserving);
  std::vector<std::filesystem::path> slice_paths;
  flow::CollectorDaemon daemon(
      {.protocol = flow::ExportProtocol::kIpfix,
       .rotation_seconds = 15 * 60,
       .anonymizer = &anonymizer},
      [&](flow::TraceSlice&& slice) {
        const auto path =
            out_dir / ("slice-" + std::to_string(slice.begin.seconds()) + ".lft");
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(slice.image.data(), 1, slice.image.size(), f);
          std::fclose(f);
          slice_paths.push_back(path);
        }
      });

  // --- Exporter side ---------------------------------------------------------
  auto exporter = flow::UdpExporterTransport::create(transport->port());
  if (!exporter) {
    std::cerr << "error: cannot create the exporter socket\n";
    return 1;
  }
  const auto registry = synth::AsRegistry::create_default();
  const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry,
                                        {.seed = 42});
  const synth::FlowSynthesizer synth(ixp.model, registry,
                                     {.connections_per_hour = 400});

  std::cout << "streaming two hours of lockdown-evening IXP traffic...\n";
  flow::IpfixEncoder encoder(/*observation_domain=*/900);
  std::vector<flow::FlowRecord> batch;
  auto ship = [&]() {
    if (batch.empty()) return;
    for (const auto& msg : encoder.encode(batch, flow::batch_export_time(batch))) {
      exporter->send(msg);
    }
    batch.clear();
    // Drain the wire into the daemon as we go (single-threaded poll loop).
    (void)transport->drain(
        [&](std::span<const std::uint8_t> d) { daemon.ingest(d); });
  };
  synth.synthesize(
      net::TimeRange{net::Timestamp::from_date(net::Date(2020, 3, 25), 19),
                     net::Timestamp::from_date(net::Date(2020, 3, 25), 21)},
      [&](const flow::FlowRecord& r) {
        batch.push_back(r);
        if (batch.size() == 48) ship();
      });
  ship();
  for (int i = 0; i < 50; ++i) {  // drain any stragglers
    (void)transport->drain([&](std::span<const std::uint8_t> d) { daemon.ingest(d); });
  }
  daemon.flush();

  std::cout << "  datagrams sent: " << exporter->sent() << " (" << exporter->dropped()
            << " dropped)\n";
  std::cout << "  records spooled: " << daemon.records_spooled() << " into "
            << daemon.slices_emitted() << " slices\n";
  std::cout << "  malformed packets: " << daemon.wire_stats().malformed_packets
            << "\n\n";

  // --- Analyst side -----------------------------------------------------------
  std::cout << "analyzing spooled slices from " << out_dir << ":\n";
  analysis::VolumeAggregator volume(stats::Bucket::kHour);
  for (const auto& path : slice_paths) {
    const auto trace = flow::read_trace_file(path.string());
    if (!trace) continue;
    for (const auto& r : trace->records) volume.add(r);
  }
  for (const auto& [hour, bytes] : volume.series().points()) {
    std::cout << "  " << hour.to_string() << "  "
              << util::format_bytes(bytes) << "\n";
  }
  std::cout << "\n(the analyst never saw a raw address: slices were\n"
            << " prefix-preservingly anonymized at the collector)\n";
  return 0;
}
