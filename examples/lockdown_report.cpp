// lockdown_report: the "network operator report" example -- runs the whole
// scenario across all seven vantage points and prints a condensed
// operator-facing report of the lockdown effect: weekly growth per vantage
// point, the usage-pattern shift, and the application classes that need
// provisioning attention.
//
//   $ ./lockdown_report [seed] [--scan-threads N]
//
// `--scan-threads N` shards the aggregation scans (sections 2 and 3) over
// N ScanEngine worker lanes; the report is byte-identical for every N.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/app_filter.hpp"
#include "analysis/pattern.hpp"
#include "analysis/scan.hpp"
#include "analysis/volume.hpp"
#include "flow/pipeline.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace lockdown;

namespace {

void run(const synth::VantagePoint& vp, const synth::AsRegistry& reg,
         net::TimeRange range, double budget,
         const std::function<void(const flow::FlowRecord&)>& sink) {
  const synth::FlowSynthesizer synth(vp.model, reg, {.connections_per_hour = budget});
  flow::ExportPump pump(vp.protocol, sink);
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

/// Like run(), but decoded datagram batches feed a ScanEngine's lanes.
template <typename Bundle>
void run_scan(const synth::VantagePoint& vp, const synth::AsRegistry& reg,
              net::TimeRange range, double budget,
              analysis::ScanEngine<Bundle>& engine) {
  const synth::FlowSynthesizer synth(vp.model, reg, {.connections_per_hour = budget});
  flow::ExportPump pump(vp.protocol,
                        flow::ExportPump::BatchSink(
                            [&engine](std::span<const flow::FlowRecord> batch) {
                              engine.feed(batch);
                            }));
  synth.synthesize(range, pump.as_sink());
  pump.flush();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  unsigned scan_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scan-threads") == 0 && i + 1 < argc) {
      scan_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  const auto registry = synth::AsRegistry::create_default();
  const synth::ScenarioConfig cfg{.seed = seed, .enterprise_transit = false};

  std::cout << "==========================================================\n"
            << " THE LOCKDOWN EFFECT -- operator report (seed " << seed << ")\n"
            << "==========================================================\n\n";

  // --- 1. Volume shifts across all vantage points -------------------------
  std::cout << "1. Traffic volume, lockdown week (Mar 18-25) vs base (Feb 19-26)\n\n";
  util::Table volumes({"vantage point", "wire format", "base week", "lockdown week",
                       "growth"});
  for (const auto id :
       {synth::VantagePointId::kIspCe, synth::VantagePointId::kIxpCe,
        synth::VantagePointId::kIxpSe, synth::VantagePointId::kIxpUs,
        synth::VantagePointId::kEdu, synth::VantagePointId::kMobileCe,
        synth::VantagePointId::kIpxCe}) {
    const auto vp = synth::build_vantage(id, registry, cfg);
    double base = 0, lockdown = 0;
    run(vp, registry, net::TimeRange::week_of(net::Date(2020, 2, 19)), 250,
        [&](const flow::FlowRecord& r) { base += static_cast<double>(r.bytes); });
    run(vp, registry, net::TimeRange::week_of(net::Date(2020, 3, 18)), 250,
        [&](const flow::FlowRecord& r) { lockdown += static_cast<double>(r.bytes); });
    volumes.add_row({to_string(id), to_string(vp.protocol),
                     util::format_bytes(base), util::format_bytes(lockdown),
                     (lockdown >= base ? "+" : "") +
                         util::format_fixed(100 * (lockdown - base) / base, 1) + "%"});
  }
  std::cout << volumes << "\n";

  // --- 2. The usage-pattern shift -----------------------------------------
  std::cout << "2. Day-pattern classification at the ISP (Fig 2 method)\n\n";
  const auto isp = synth::build_vantage(synth::VantagePointId::kIspCe, registry, cfg);
  analysis::ScanEngine<analysis::VolumeAggregator> hourly_engine(
      scan_threads, [] { return analysis::VolumeAggregator(stats::Bucket::kHour); },
      &registry.trie());
  run_scan(isp, registry,
           net::TimeRange{net::Timestamp::from_date(net::Date(2020, 2, 1)),
                          net::Timestamp::from_date(net::Date(2020, 4, 30))},
           250, hourly_engine);
  analysis::VolumeAggregator& hourly = hourly_engine.finish();
  analysis::PatternClassifier classifier(6);
  classifier.train(hourly.series(),
                   net::TimeRange{net::Timestamp::from_date(net::Date(2020, 2, 1)),
                                  net::Timestamp::from_date(net::Date(2020, 2, 29))});
  const auto days = classifier.classify(
      hourly.series(),
      net::TimeRange{net::Timestamp::from_date(net::Date(2020, 3, 16)),
                     net::Timestamp::from_date(net::Date(2020, 4, 30))});
  std::size_t weekend_like = 0;
  for (const auto& d : days) {
    weekend_like += d.classified == analysis::DayPattern::kWeekendLike ? 1 : 0;
  }
  std::cout << "   " << weekend_like << " of " << days.size()
            << " post-lockdown days look like weekends.\n"
            << "   => evening peaks are gone; provision for all-day load.\n\n";

  // --- 3. Application classes needing provisioning attention --------------
  std::cout << "3. Application-class growth at the IXP (working hours, Fig 9)\n\n";
  const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry, cfg);
  const analysis::AsView view(registry.trie());
  const auto app_classifier = analysis::AppClassifier::table1();
  const std::vector<net::TimeRange> weeks = {
      net::TimeRange::week_of(net::Date(2020, 2, 20)),
      net::TimeRange::week_of(net::Date(2020, 3, 19))};
  analysis::ScanEngine<analysis::ClassHeatmap> heatmap_engine(
      scan_threads,
      [&] { return analysis::ClassHeatmap(app_classifier, view, weeks); },
      &registry.trie());
  for (const auto& w : weeks) run_scan(ixp, registry, w, 400, heatmap_engine);
  analysis::ClassHeatmap& heatmap = heatmap_engine.finish();

  util::Table apps({"class", "working-hours growth", "action"});
  for (const auto cls : heatmap.observed_classes()) {
    const double growth = heatmap.working_hours_growth(cls, 1);
    const char* action = growth > 100   ? "upgrade ports NOW"
                         : growth > 30  ? "watch closely"
                         : growth > -10 ? "steady"
                                        : "capacity freed";
    apps.add_row({synth::to_string(cls),
                  (growth >= 0 ? "+" : "") + util::format_fixed(growth, 1) + "%",
                  action});
  }
  std::cout << apps << "\n";
  std::cout << "Report complete. See bench/ for the per-figure reproductions.\n";
  return 0;
}
