// lockdown_shift: detect the paper's lockdown effect *online*.
//
// The paper finds the March 2020 change-point offline, by diffing
// week-long batch aggregates before and after the lockdown (Feldmann et
// al., IMC 2020 §3). This demo shows the streaming layer catching the same
// shift as it happens: a monitoring object watches enterprise-VPN traffic
// (the remote-work signature) in the mixed campus+VPN scenario, a
// day-window aggregator rotates on flow time, and a K=7 moving average
// with an overlimit threshold fires the moment a day's flow count exceeds
// the trailing week's mean -- while the stream is still running.
//
// Validation: the identical stream is then baselined offline -- daily
// sums over the raw synthesized records, same trailing-K mean, same
// threshold -- and the demo fails (non-zero exit) unless the online
// detector flagged the change-point within one window of the offline one.
// The online path is the real deployment shape: records travel through
// the IPFIX encoder, the wire decoder, and MonitorSet::route_batch before
// the window layer ever sees them.
//
//   $ ./lockdown_shift [--rate CONN_PER_HOUR] [--mavg K] [--over FACTOR]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "filter/monitor.hpp"
#include "flow/collector_daemon.hpp"
#include "flow/ipfix.hpp"
#include "net/civil_time.hpp"
#include "stream/engine.hpp"
#include "synth/as_registry.hpp"
#include "synth/synthesizer.hpp"
#include "synth/timeline.hpp"
#include "synth/vantage.hpp"
#include "util/table.hpp"

using namespace lockdown;

int main(int argc, char** argv) {
  double rate = 200.0;  // connections per hour
  std::size_t k = 7;    // one full week: weekday phase cancels out
  double over = 1.25;   // fire at 25% above the trailing week's mean
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (arg == "--mavg" && i + 1 < argc) {
      k = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--over" && i + 1 < argc) {
      over = std::atof(argv[++i]);
    }
  }

  const auto registry = synth::AsRegistry::create_default();
  const auto model = synth::build_mixed_scenario(registry, {.seed = 42});
  const auto timeline =
      synth::EpidemicTimeline::for_region(synth::Region::kCentralEurope);

  // Seven weeks around the Central European lockdown: two calm baseline
  // weeks, the ramp (Mar 13 - Mar 22), and the full-lockdown plateau.
  const net::TimeRange range{
      net::Timestamp::from_date(net::Date(2020, 2, 17)),
      net::Timestamp::from_date(net::Date(2020, 4, 5))};

  // --- Online path -----------------------------------------------------------
  filter::MonitorSet monitors(&registry.trie());
  const auto& vpn =
      monitors.add("vpn", "proto udp and dst port 1194,4500,500");

  stream::StreamConfig scfg;
  scfg.window.window_seconds = net::kSecondsPerDay;
  scfg.mavg = stream::MavgConfig{
      .k = k, .metric = stream::MavgMetric::kFlows, .overlimit = over};
  stream::StreamMonitor streamer(monitors, scfg);

  std::vector<stream::MavgEvent> online_events;
  streamer.set_event_sink(
      [&](const stream::ObjectStream& os, const stream::MavgEvent& e) {
        online_events.push_back(e);
        std::cout << "  " << stream::StreamMonitor::format_event(os, e)
                  << "\n";
      });

  // The deployment pipeline, in-process: IPFIX encode -> wire decode ->
  // monitor routing -> window hooks. Slices are discarded; this demo is
  // about the stream, not the spool.
  flow::CollectorDaemon daemon(
      {.protocol = flow::ExportProtocol::kIpfix,
       .rotation_seconds = net::kSecondsPerDay,
       .batch_observer = monitors.batch_sink()},
      [](flow::TraceSlice&&) {});
  flow::IpfixEncoder encoder(700);
  flow::PacketBatch packets;
  std::vector<flow::FlowRecord> batch;
  std::vector<flow::FlowRecord> raw;  // kept for the offline baseline
  const auto ship = [&]() {
    if (batch.empty()) return;
    packets.clear();
    encoder.encode_batch(batch, flow::batch_export_time(batch), packets);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      daemon.ingest(packets.packet(i));
    }
    batch.clear();
    (void)streamer.poll();  // consume completed windows as we go
  };

  std::cout << "streaming " << range.begin.date().to_string() << " .. "
            << range.end.date().to_string() << " (" << rate
            << " conn/h, lockdown ramp "
            << timeline.lockdown_start.to_string() << " -> "
            << timeline.lockdown_full.to_string() << ")\n";
  std::cout << "online detector: day windows, mavg k=" << k << ", overlimit "
            << over << "x on object 'vpn'\n";

  const synth::FlowSynthesizer synth(model, registry,
                                     {.connections_per_hour = rate});
  synth.synthesize(range, [&](const flow::FlowRecord& r) {
    raw.push_back(r);
    batch.push_back(r);
    if (batch.size() == 64) ship();
  });
  ship();
  daemon.flush();
  streamer.flush();
  (void)streamer.poll();

  // --- Offline baseline ------------------------------------------------------
  // Same stream, same filter, same rule -- but as the paper would do it:
  // batch-aggregate the raw records per day, then scan.
  std::map<std::int64_t, std::uint64_t> daily;
  for (const auto& r : raw) {
    if (vpn.filter().match(r)) ++daily[r.first.floor_day().seconds()];
  }
  std::vector<std::pair<std::int64_t, std::uint64_t>> days(daily.begin(),
                                                           daily.end());
  std::optional<std::int64_t> offline_day;
  util::Table table({"day", "type", "vpn flows", "trailing mean", "flag"});
  double sum = 0.0;
  for (std::size_t i = 0; i < days.size(); ++i) {
    const double v = static_cast<double>(days[i].second);
    std::string mean_cell = "-";
    std::string flag;
    if (i >= k) {
      const double mean = sum / static_cast<double>(k);
      mean_cell = std::to_string(mean);
      if (v > mean * over) {
        flag = "OVER";
        if (!offline_day) offline_day = days[i].first;
      }
      sum -= static_cast<double>(days[i - k].second);
    }
    sum += v;
    const net::Date d = net::Timestamp(days[i].first).date();
    table.add_row({d.to_string(),
                   synth::behaves_like_weekend(d) ? "weekend" : "workday",
                   std::to_string(days[i].second), mean_cell, flag});
  }
  std::cout << "\noffline baseline (identical rule over raw records):\n"
            << table.to_text();

  // --- Verdict ---------------------------------------------------------------
  if (!offline_day) {
    std::cerr << "FAIL: offline baseline found no change-point\n";
    return 1;
  }
  if (online_events.empty()) {
    std::cerr << "FAIL: online detector never fired (offline flagged "
              << net::Timestamp(*offline_day).date().to_string() << ")\n";
    return 1;
  }
  const std::int64_t online_day =
      online_events.front().window_begin.seconds();
  const std::int64_t delta =
      (online_day - *offline_day) / net::kSecondsPerDay;
  std::cout << "\nonline first fired:  "
            << net::Timestamp(online_day).date().to_string() << "\n"
            << "offline change-point: "
            << net::Timestamp(*offline_day).date().to_string() << " (delta "
            << delta << " window" << (delta == 1 || delta == -1 ? "" : "s")
            << ")\n";
  if (delta < -1 || delta > 1) {
    std::cerr << "FAIL: online detector off by more than one window\n";
    return 1;
  }
  std::cout << "OK: online detection matches the offline baseline within one "
               "window\n";
  return 0;
}
