// Quickstart: build the synthetic Internet, synthesize one pre-lockdown
// and one lockdown week at the Central European ISP, push the flows
// through a real NetFlow v5 export/collect pipeline with on-premise
// anonymization, and measure the headline lockdown effect.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "analysis/volume.hpp"
#include "flow/pipeline.hpp"
#include "synth/as_registry.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"

using namespace lockdown;

int main() {
  // 1. The synthetic Internet: Table 2 hypergiants, eyeballs, enterprises.
  const synth::AsRegistry registry = synth::AsRegistry::create_default();

  // 2. A calibrated vantage point (the paper's L-ISP).
  const synth::ScenarioConfig scenario{.seed = 42, .enterprise_transit = false};
  const synth::VantagePoint isp =
      synth::build_vantage(synth::VantagePointId::kIspCe, registry, scenario);
  std::cout << "Vantage point: " << isp.description << "\n";
  std::cout << "Traffic components: " << isp.model.components().size() << "\n\n";

  // 3. Synthesize flows for a base week (Feb 19-26) and a lockdown week
  //    (Mar 18-25), the comparison of the paper's Fig 3.
  const synth::FlowSynthesizer synthesizer(isp.model, registry,
                                           {.connections_per_hour = 600});
  const auto base_week =
      net::TimeRange::week_of(net::Date(2020, 2, 19));
  const auto lockdown_week =
      net::TimeRange::week_of(net::Date(2020, 3, 18));

  // 4. Run everything through the vantage point's real export pipeline:
  //    NetFlow v5 on the wire, SipHash anonymization at the collector.
  const flow::Anonymizer anonymizer({0xfeed, 0xbeef},
                                    flow::AnonymizationMode::kFullHash);
  analysis::VolumeAggregator base_vol(stats::Bucket::kHour);
  analysis::VolumeAggregator lock_vol(stats::Bucket::kHour);
  flow::CollectorStats wire_stats;

  auto run_week = [&](net::TimeRange week, analysis::VolumeAggregator& agg) {
    flow::ExportPump pump(isp.protocol, agg.sink(), &anonymizer);
    synthesizer.synthesize(week, pump.as_sink());
    pump.flush();
    wire_stats.packets += pump.stats().packets;
    wire_stats.records += pump.stats().records;
    wire_stats.malformed_packets += pump.stats().malformed_packets;
  };
  run_week(base_week, base_vol);
  run_week(lockdown_week, lock_vol);

  // 5. The headline result (§1): traffic grew by 15-20% within a week of
  //    the lockdown.
  const double base_total = base_vol.series().total();
  const double lock_total = lock_vol.series().total();
  const double growth = 100.0 * (lock_total - base_total) / base_total;

  std::cout << "Base week (Feb 19-26):     " << util::format_bytes(base_total)
            << "  (" << base_vol.records() << " flow records)\n";
  std::cout << "Lockdown week (Mar 18-25): " << util::format_bytes(lock_total)
            << "  (" << lock_vol.records() << " flow records)\n";
  std::cout << "Lockdown effect:           " << util::format_fixed(growth, 1)
            << "% traffic growth\n\n";

  std::cout << "Peak/min hourly volume, base week:     "
            << util::format_fixed(
                   base_vol.series().max_value() / base_vol.series().min_value(), 2)
            << "x\n";
  std::cout << "Peak/min hourly volume, lockdown week: "
            << util::format_fixed(
                   lock_vol.series().max_value() / lock_vol.series().min_value(), 2)
            << "x\n";
  return 0;
}
