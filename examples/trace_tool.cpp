// trace_tool: a small nfdump-style CLI over the binary trace format.
//
//   trace_tool synth <out.lft> [vantage] [date] [days]   synthesize a trace
//   trace_tool info  <in.lft>                            header + summary
//   trace_tool top   <in.lft> [n]                        top service ports
//   trace_tool hosts <in.lft> [n]                        top server ASes
//
// Demonstrates the persistence path real deployments use: collector spools
// records to disk, analysis jobs read them back later -- no synthesizer or
// scenario knowledge needed on the reading side.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "flow/trace_file.hpp"
#include "stats/space_saving.hpp"
#include "synth/as_registry.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace lockdown;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tool synth <out.lft> [isp-ce|ixp-ce|ixp-se|ixp-us|edu]"
               " [YYYY-MM-DD] [days]\n"
            << "  trace_tool info  <in.lft>\n"
            << "  trace_tool top   <in.lft> [n]\n"
            << "  trace_tool hosts <in.lft> [n]\n";
  return 2;
}

std::optional<synth::VantagePointId> parse_vantage(const std::string& name) {
  if (name == "isp-ce") return synth::VantagePointId::kIspCe;
  if (name == "ixp-ce") return synth::VantagePointId::kIxpCe;
  if (name == "ixp-se") return synth::VantagePointId::kIxpSe;
  if (name == "ixp-us") return synth::VantagePointId::kIxpUs;
  if (name == "edu") return synth::VantagePointId::kEdu;
  return std::nullopt;
}

int cmd_synth(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[2];
  const auto vantage_id =
      parse_vantage(argc > 3 ? argv[3] : "isp-ce");
  if (!vantage_id) return usage();
  const auto start =
      net::Date::parse(argc > 4 ? argv[4] : "2020-03-18");
  if (!start) return usage();
  const int days = argc > 5 ? std::atoi(argv[5]) : 1;
  if (days < 1 || days > 180) return usage();

  const auto registry = synth::AsRegistry::create_default();
  const auto vp = synth::build_vantage(*vantage_id, registry,
                                       {.seed = 42, .enterprise_transit = false});
  const synth::FlowSynthesizer synth(vp.model, registry,
                                     {.connections_per_hour = 800});

  flow::TraceWriter writer;
  synth.synthesize(
      net::TimeRange{net::Timestamp::from_date(*start),
                     net::Timestamp::from_date(start->plus_days(days))},
      [&](const flow::FlowRecord& r) { writer.append(r); });
  const std::size_t n = writer.records_written();
  if (!writer.write_file(path)) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << n << " records (" << to_string(*vantage_id) << ", "
            << start->to_string() << " +" << days << "d) to " << path << "\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const auto trace = flow::read_trace_file(path);
  if (!trace) {
    std::cerr << "error: " << path << " is not a readable trace\n";
    return 1;
  }
  double bytes = 0;
  net::Timestamp first, last;
  bool first_set = false;
  std::size_t v6 = 0;
  for (const auto& r : trace->records) {
    bytes += static_cast<double>(r.bytes);
    if (!first_set || r.first < first) first = r.first;
    if (!first_set || last < r.last) last = r.last;
    first_set = true;
    v6 += r.src_addr.is_v6() ? 1 : 0;
  }
  std::cout << "trace:    " << path << (trace->truncated ? "  (TRUNCATED)" : "")
            << "\n";
  std::cout << "records:  " << trace->records.size() << "  (" << v6 << " IPv6)\n";
  std::cout << "bytes:    " << util::format_bytes(bytes) << "\n";
  if (first_set) {
    std::cout << "window:   " << first.to_string() << " .. " << last.to_string()
              << "\n";
  }
  return 0;
}

int cmd_top(const std::string& path, std::size_t n) {
  const auto trace = flow::read_trace_file(path);
  if (!trace) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }
  stats::SpaceSaving<flow::PortKey, flow::PortKeyHash> sketch(256);
  for (const auto& r : trace->records) {
    sketch.add(r.service_port(), static_cast<double>(r.bytes));
  }
  util::Table table({"port", "bytes", "share"});
  for (const auto& e : sketch.top(n)) {
    table.add_row({e.key.to_string(), util::format_bytes(e.count),
                   util::format_fixed(100 * e.count / sketch.total_weight(), 1) + "%"});
  }
  std::cout << table;
  return 0;
}

int cmd_hosts(const std::string& path, std::size_t n) {
  const auto trace = flow::read_trace_file(path);
  if (!trace) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }
  const auto registry = synth::AsRegistry::create_default();
  std::map<std::uint32_t, double> per_as;
  for (const auto& r : trace->records) {
    // Server side: the lower-port endpoint.
    const bool dst_is_server = r.dst_port <= r.src_port;
    per_as[(dst_is_server ? r.dst_as : r.src_as).value()] +=
        static_cast<double>(r.bytes);
  }
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (const auto& [asn, b] : per_as) ranked.push_back({b, asn});
  std::sort(ranked.rbegin(), ranked.rend());

  util::Table table({"ASN", "organization", "bytes"});
  for (std::size_t i = 0; i < std::min(n, ranked.size()); ++i) {
    const auto* info = registry.find(net::Asn(ranked[i].second));
    table.add_row({"AS" + std::to_string(ranked[i].second),
                   info ? info->name : "(unknown)",
                   util::format_bytes(ranked[i].first)});
  }
  std::cout << table;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "synth") return cmd_synth(argc, argv);
  if (argc < 3) return usage();
  const std::string path = argv[2];
  const std::size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 12;
  if (cmd == "info") return cmd_info(path);
  if (cmd == "top") return cmd_top(path, n);
  if (cmd == "hosts") return cmd_hosts(path, n);
  return usage();
}
