// vpn_hunter: the section 6 methodology as a standalone tool -- build a
// CT-log/forward-DNS corpus, hunt for VPN gateways via the *vpn* label
// heuristic with the www-collision rule, then classify a week of IXP
// traffic and evaluate detection quality against the scenario's ground
// truth.
//
//   $ ./vpn_hunter [organizations]
#include <cstdlib>
#include <iostream>

#include "analysis/vpn.hpp"
#include "dns/corpus.hpp"
#include "dns/vpn_finder.hpp"
#include "flow/pipeline.hpp"
#include "synth/synthesizer.hpp"
#include "synth/vantage.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace lockdown;

int main(int argc, char** argv) {
  const std::size_t orgs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // --- Step 1: the domain corpus ------------------------------------------
  std::cout << "Generating a synthetic CT-log/FDNS corpus for " << orgs
            << " organizations...\n";
  const auto corpus = dns::generate_corpus({.seed = 7, .organizations = orgs});
  std::cout << "  " << corpus.domains.size() << " domains, "
            << corpus.vpn_gateway_ips.size() << " true VPN gateways, "
            << corpus.www_shared_vpn_ips.size() << " www-shared fronts, "
            << corpus.portonly_vpn_ips.size() << " port-only VPN servers\n\n";

  // --- Step 2: the *vpn* label hunt ---------------------------------------
  const auto psl = dns::PublicSuffixList::builtin();
  const dns::VpnCandidateFinder finder(psl);
  const auto result = finder.find(corpus.domains, corpus.dns);

  std::cout << "Candidate funnel (paper section 6):\n";
  std::cout << "  domains matching *vpn* left of public suffix: "
            << result.matched_domains << "\n";
  std::cout << "  resolved candidate IPs:                       "
            << result.resolved_ips << "\n";
  std::cout << "  eliminated by the www-collision rule:         "
            << result.eliminated_shared_ips << "\n";
  std::cout << "  final candidates:                             "
            << result.candidate_ips.size() << "\n\n";

  // Detection quality vs ground truth.
  std::size_t true_positive = 0;
  for (const auto& ip : corpus.vpn_gateway_ips) {
    true_positive += result.candidate_ips.contains(ip) ? 1 : 0;
  }
  std::size_t false_positive = result.candidate_ips.size() - true_positive;
  std::cout << "Detection quality (candidate set vs ground truth):\n";
  std::cout << "  recall over dedicated-IP gateways: "
            << util::format_fixed(100.0 * true_positive /
                                      corpus.vpn_gateway_ips.size(), 1)
            << "%\n";
  std::cout << "  non-gateway candidates:            " << false_positive << "\n";
  std::cout << "  port-only gateways missed (by design -- no *vpn* name): "
            << corpus.portonly_vpn_ips.size() << "\n\n";

  // --- Step 3: classify live traffic ---------------------------------------
  std::cout << "Classifying one lockdown week of IXP-CE traffic...\n";
  const auto registry = synth::AsRegistry::create_default();
  synth::ScenarioConfig cfg{.seed = 7};
  cfg.vpn_tls_server_ips.assign(result.candidate_ips.begin(),
                                result.candidate_ips.end());
  const auto ixp = synth::build_vantage(synth::VantagePointId::kIxpCe, registry, cfg);

  const std::vector<net::TimeRange> weeks = {
      net::TimeRange::week_of(net::Date(2020, 2, 20)),
      net::TimeRange::week_of(net::Date(2020, 3, 19))};
  analysis::VpnAnalyzer analyzer(weeks, result.candidate_ips);
  const synth::FlowSynthesizer synth(ixp.model, registry,
                                     {.connections_per_hour = 600});
  flow::ExportPump pump(ixp.protocol, analyzer.sink());
  for (const auto& w : weeks) synth.synthesize(w, pump.as_sink());
  pump.flush();

  std::cout << "  port-based VPN growth (working hours): "
            << util::format_fixed(
                   analyzer.working_hours_growth(analysis::VpnMethod::kPort, 1), 1)
            << "%\n";
  std::cout << "  domain-based VPN growth:               "
            << util::format_fixed(
                   analyzer.working_hours_growth(analysis::VpnMethod::kDomain, 1), 1)
            << "%\n\n";
  std::cout << "Conclusion (the paper's): identification solely on a transport\n"
            << "port basis vastly undercounts actual VPN traffic; combine the\n"
            << "port filter with domain-identified TCP/443 gateways.\n";
  return 0;
}
