#!/usr/bin/env python3
"""Compare BENCH_*.json bench output against committed baselines.

The perf-smoke CI job runs the compiled-hot-path benches and writes one
BENCH_<binary>.json per binary (see bench/bench_common.hpp). This script
compares those runs against the JSON committed under bench/baselines/.

Absolute ns/op is useless across machines, so the comparison is built on
WITHIN-FILE SPEEDUP RATIOS: each tracked pair divides a reference series
(the interpreted/per-field path) by its compiled counterpart from the same
binary's run. Machine speed cancels out of the ratio; what remains is how
much faster the compiled path is than the code it replaced -- exactly the
quantity a perf regression erodes.

A pair FAILS when its current speedup falls below baseline/ (1 + slack),
i.e. more than --slack (default 25%) of the baselined advantage is gone.
Pairs may also carry an absolute floor (the DESIGN.md acceptance bars);
falling below the floor fails regardless of the baseline.

Usage:
  scripts/bench_compare.py --current bench-json [--baseline bench/baselines]
                           [--slack 0.25]

Exit status: 0 all pairs pass, 1 any regression, 2 usage/missing files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# (file, reference series, compiled series, absolute floor, label)
# Floors are the acceptance bars: decode plans >= 3x, encode plans >= 4x,
# filter plans >= 5x. CI noise on shared runners can graze an exact bar, so
# every enforced floor keeps a small margin under the documented target;
# the documented bar itself is verified by the baselining run (the
# committed baseline ratio must meet it) rather than re-proved on every
# noisy CI box.
PAIRS = [
    ("BENCH_bench_filter_match.json", "BM_MatchReference",
     "BM_MatchPlan", 4.5, "filter plan (Table-1 DSL objects)"),
    ("BENCH_bench_flow_decode_plan.json", "BM_DecodeInterpreted",
     "BM_DecodePlan", 2.5, "decode plan (IPFIX v4)"),
    ("BENCH_bench_flow_encode_plan.json", "BM_EncodeReferenceV5",
     "BM_EncodeBatchV5", 3.5, "encode plan (NetFlow v5)"),
    ("BENCH_bench_flow_encode_plan.json", "BM_EncodeReferenceV9",
     "BM_EncodeBatchV9", 3.5, "encode plan (NetFlow v9)"),
    ("BENCH_bench_flow_encode_plan.json", "BM_EncodeReferenceIpfix",
     "BM_EncodeBatchIpfix", 3.5, "encode plan (IPFIX mixed)"),
    # Tracer overhead gate: a disabled TRACE_SPAN must stay dramatically
    # cheaper than an enabled one (~32x on the baseline machine; enabled is
    # dominated by two steady_clock reads). If this ratio collapses, the
    # disabled path grew real work and the always-on instrumentation in the
    # per-datagram hot loops is no longer free.
    ("BENCH_bench_obs_trace.json", "BM_SpanEnabled",
     "BM_SpanDisabled", 2.5, "trace span (disabled vs enabled)"),
    # Async network plane gates (DESIGN.md section 14). The acceptance bar
    # is >= 2x ingest throughput for the 4-lane SO_REUSEPORT event plane
    # over the seed's blocking drain (one recvmsg + one 64 KiB allocation
    # per datagram) at equal (zero) kernel-drop rate; the bench skips with
    # an error instead of reporting a ratio whenever a burst drops. The
    # single-socket recvmmsg pair gates the syscall-batching win on its
    # own, with no dependence on thread scheduling, so it stays meaningful
    # on single-core runners.
    ("BENCH_bench_net_eventloop.json", "BM_BlockingDrainReference/real_time",
     "BM_BatchDrainReuseport4/real_time", 2.0,
     "wire ingest (blocking vs 4-lane plane)"),
    ("BENCH_bench_net_eventloop.json", "BM_BlockingDrainReference/real_time",
     "BM_BatchDrainSingleSocket/real_time", 2.0,
     "wire ingest (blocking vs recvmmsg)"),
    # Sampling-profiler overhead gate (DESIGN.md section 16): ingest
    # throughput with the 97 Hz SIGPROF sampler armed must stay >= 0.97x of
    # profiler-off. The ratio is off/on ns-per-op, ~1.0 when the handler is
    # as cheap as budgeted; it falls through the floor if the signal path
    # (or anything the handler touches) grows real work.
    ("BENCH_bench_obs_recorder.json", "BM_IngestProfilerOff",
     "BM_IngestProfilerOn", 0.97, "ingest (profiler off vs 97 Hz on)"),
    # Non-blocking flush gate: with the double-banked window state, ingest
    # under a continuously rotating flusher must cost about the same as
    # ingest with a quiescent clock (ratio ~1.0). If window retirement
    # starts holding the ingest path, under-flush time grows and the ratio
    # falls through the floor.
    ("BENCH_bench_stream_window.json", "BM_WindowAccumulateQuiescent",
     "BM_WindowAccumulateUnderFlush", 0.75,
     "window ingest (quiescent vs flush)"),
    # Columnar analysis kernels (DESIGN.md section 15). The acceptance bar
    # is >= 3x for the full figure-aggregator bundle consuming shared
    # FlowColumns batches vs the seed's per-record std::function sinks
    # (interpreted monitor filters included); the committed baseline ratio
    # meets it, the enforced floor keeps the usual noise margin.
    ("BENCH_bench_analysis_scan.json", "BM_AnalysisPerRecord",
     "BM_AnalysisBatchColumns", 2.2,
     "analysis kernels (per-record vs columnar)"),
    # Scan-engine lane scaling. The committed baseline comes from a 1-core
    # container where extra lanes can only add overhead (ratio < 1), so this
    # pair is tracked baseline-relative: it gates the ratio from collapsing
    # (sharding overhead growing), not a parallel speedup the baseline box
    # cannot measure. On multi-core runners the ratio rises above 1 and
    # passes with margin; the >= 2.5x scaling target of DESIGN.md section 15
    # is an 8-core acceptance bar, not a floor enforceable here.
    ("BENCH_bench_analysis_scan.json", "BM_AnalysisScan/1/real_time",
     "BM_AnalysisScan/8/real_time", 0.6,
     "analysis scan (1 vs 8 lanes)"),
]


def load_ns_per_op(path: Path) -> dict[str, float]:
    with path.open() as f:
        doc = json.load(f)
    out: dict[str, float] = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        ns = entry.get("ns_per_op")
        # Keep the first run of a series (benchmark repetitions append
        # aggregate rows whose names differ, so plain names stay unique).
        if isinstance(name, str) and isinstance(ns, (int, float)) and ns > 0:
            out.setdefault(name, float(ns))
    return out


def speedup(series: dict[str, float], ref: str, fast: str) -> float | None:
    if ref not in series or fast not in series:
        return None
    return series[ref] / series[fast]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True, type=Path,
                    help="directory with the run's BENCH_*.json files")
    ap.add_argument("--baseline", type=Path,
                    default=Path(__file__).resolve().parent.parent
                    / "bench" / "baselines",
                    help="directory with committed baseline JSON")
    ap.add_argument("--slack", type=float, default=0.25,
                    help="tolerated fractional loss of baselined speedup")
    args = ap.parse_args()

    failures = 0
    checked = 0
    header = f"{'pair':34} {'baseline':>9} {'current':>9} {'floor':>6}  verdict"
    print(header)
    print("-" * len(header))
    for fname, ref, fast, floor, label in PAIRS:
        cur_path = args.current / fname
        base_path = args.baseline / fname
        if not cur_path.exists():
            print(f"{label:34} {'-':>9} {'-':>9} {floor:>6.1f}  SKIP "
                  f"(no current run: {cur_path})")
            continue
        current = speedup(load_ns_per_op(cur_path), ref, fast)
        if current is None:
            print(f"{label:34} {'-':>9} {'-':>9} {floor:>6.1f}  FAIL "
                  f"(series missing from {fname})")
            failures += 1
            continue
        baseline = None
        if base_path.exists():
            baseline = speedup(load_ns_per_op(base_path), ref, fast)
        checked += 1
        threshold = floor
        if baseline is not None:
            threshold = max(threshold, baseline / (1.0 + args.slack))
        ok = current >= threshold
        failures += 0 if ok else 1
        base_col = f"{baseline:>8.2f}x" if baseline is not None else f"{'-':>9}"
        verdict = "ok" if ok else f"FAIL (min {threshold:.2f}x)"
        print(f"{label:34} {base_col} {current:>8.2f}x {floor:>6.1f}  {verdict}")

    if checked == 0:
        print("error: no tracked pair had a current run", file=sys.stderr)
        return 2
    print()
    if failures:
        print(f"{failures} regression(s): the compiled paths lost more than "
              f"{args.slack:.0%} of their baselined speedup (or fell below "
              "an acceptance floor)")
        return 1
    print("all tracked speedup ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
