#include "analysis/app_filter.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace lockdown::analysis {

using flow::IpProtocol;
using flow::PortKey;
using net::Asn;

namespace {

[[nodiscard]] PortKey tcp(std::uint16_t p) { return {IpProtocol::kTcp, p}; }
[[nodiscard]] PortKey udp(std::uint16_t p) { return {IpProtocol::kUdp, p}; }

[[nodiscard]] std::vector<Asn> as_list(std::initializer_list<std::uint32_t> v) {
  std::vector<Asn> out;
  for (const auto a : v) out.emplace_back(a);
  return out;
}

}  // namespace

AppClassifier::AppClassifier(std::vector<AppFilter> filters)
    : filters_(std::move(filters)) {
  for (const AppFilter& f : filters_) {
    if (!f.valid()) {
      throw std::invalid_argument("AppFilter '" + f.name + "' constrains nothing");
    }
  }
}

AppClassifier AppClassifier::table1() {
  std::vector<AppFilter> f;

  // --- Web conferencing and telephony: 7 filters, 1 ASN, 6 ports. --------
  f.push_back({"webconf-teams-skype-stun", AppClass::kWebConf, as_list({8075}),
               {udp(3480)}});
  f.push_back({"webconf-stun-3480", AppClass::kWebConf, {}, {udp(3480)}});
  f.push_back({"webconf-zoom-connector", AppClass::kWebConf, {}, {udp(8801)}});
  f.push_back({"webconf-zoom-alt", AppClass::kWebConf, {}, {udp(8802)}});
  f.push_back({"webconf-stun-3478", AppClass::kWebConf, {}, {udp(3478)}});
  f.push_back({"webconf-stun-3479", AppClass::kWebConf, {}, {udp(3479)}});
  f.push_back({"webconf-rtp-5004", AppClass::kWebConf, {}, {tcp(5004)}});

  // --- Gaming: 8 filters, 5 ASNs, 57 ports. ------------------------------
  {
    std::vector<PortKey> steam;
    for (std::uint16_t p = 27000; p <= 27031; ++p) steam.push_back(udp(p));
    f.push_back({"gaming-steam-ports", AppClass::kGaming, {}, std::move(steam)});
  }
  {
    std::vector<PortKey> console;
    for (std::uint16_t p = 3074; p <= 3079; ++p) console.push_back(udp(p));
    f.push_back({"gaming-console-ports", AppClass::kGaming, {}, std::move(console)});
  }
  {
    std::vector<PortKey> misc = {tcp(25565), tcp(3724), tcp(1119)};
    for (std::uint16_t p = 6112; p <= 6119; ++p) misc.push_back(tcp(p));
    for (std::uint16_t p = 30000; p <= 30007; ++p) misc.push_back(tcp(p));
    f.push_back({"gaming-misc-ports", AppClass::kGaming, {}, std::move(misc)});
  }
  f.push_back({"gaming-riot", AppClass::kGaming, as_list({6507}), {}});
  f.push_back({"gaming-valve", AppClass::kGaming, as_list({32590}), {}});
  f.push_back({"gaming-blizzard", AppClass::kGaming, as_list({57976}), {}});
  f.push_back({"gaming-nintendo", AppClass::kGaming, as_list({11426}), {}});
  f.push_back({"gaming-sony", AppClass::kGaming, as_list({33353}), {}});

  // --- Messaging: 3 filters, no ASNs, 5 ports. ----------------------------
  f.push_back({"messaging-xmpp", AppClass::kMessaging, {}, {tcp(5222)}});
  f.push_back({"messaging-mobile-a", AppClass::kMessaging, {},
               {tcp(4244), tcp(5242)}});
  f.push_back({"messaging-mobile-b", AppClass::kMessaging, {},
               {udp(5243), udp(9785)}});

  // --- Email: 1 filter, 10 ports. -----------------------------------------
  f.push_back({"email-ports", AppClass::kEmail, {},
               {tcp(25), tcp(110), tcp(143), tcp(465), tcp(587), tcp(993),
                tcp(995), tcp(2525), tcp(4190), tcp(106)}});

  // --- Collaborative working: 8 filters, 2 ASNs, 9 ports. -----------------
  f.push_back({"collab-dropbox", AppClass::kCollabWork, as_list({19679}), {}});
  f.push_back({"collab-suite", AppClass::kCollabWork, as_list({64621}), {}});
  f.push_back({"collab-8443", AppClass::kCollabWork, {}, {tcp(8443)}});
  f.push_back({"collab-5005", AppClass::kCollabWork, {}, {tcp(5005)}});
  f.push_back({"collab-777x", AppClass::kCollabWork, {}, {tcp(7777), tcp(7780)}});
  f.push_back({"collab-844x", AppClass::kCollabWork, {}, {tcp(8444), tcp(8445)}});
  f.push_back({"collab-777x-udp", AppClass::kCollabWork, {},
               {udp(7778), udp(7779)}});
  f.push_back({"collab-9443", AppClass::kCollabWork, {}, {tcp(9443)}});

  // --- Social media: 4 filters, 4 ASNs, 1 port. ---------------------------
  f.push_back({"social-facebook", AppClass::kSocialMedia, as_list({32934}), {}});
  f.push_back({"social-twitter", AppClass::kSocialMedia, as_list({13414}), {}});
  f.push_back({"social-shortvideo", AppClass::kSocialMedia, as_list({138699}), {}});
  f.push_back({"social-eastsocial", AppClass::kSocialMedia, as_list({47541}),
               {tcp(443)}});

  // --- Video on Demand: 5 filters, 5 ASNs, no ports. ----------------------
  for (const std::uint32_t asn : {2906u, 64600u, 64601u, 64602u, 64603u}) {
    f.push_back({"vod-as" + std::to_string(asn), AppClass::kVod, as_list({asn}), {}});
  }

  // --- Educational: 9 filters, 9 ASNs. ------------------------------------
  for (const std::uint32_t asn :
       {680u, 766u, 20965u, 11537u, 1103u, 2200u, 137u, 786u, 1930u}) {
    f.push_back({"edu-as" + std::to_string(asn), AppClass::kEducational,
                 as_list({asn}), {}});
  }

  // --- CDN: 8 filters, 8 ASNs. ---------------------------------------------
  for (const std::uint32_t asn : {20940u, 13335u, 22822u, 15133u, 54113u,
                                  60068u, 12989u, 30081u}) {
    f.push_back({"cdn-as" + std::to_string(asn), AppClass::kCdn, as_list({asn}), {}});
  }

  return AppClassifier(std::move(f));
}

std::optional<AppClass> AppClassifier::classify(const flow::FlowRecord& r,
                                                const AsView& view) const {
  const net::Asn src = view.src_as(r);
  const net::Asn dst = view.dst_as(r);
  const PortKey port = r.service_port();

  for (const AppFilter& f : filters_) {
    if (!f.asns.empty()) {
      const bool as_match =
          std::find(f.asns.begin(), f.asns.end(), src) != f.asns.end() ||
          std::find(f.asns.begin(), f.asns.end(), dst) != f.asns.end();
      if (!as_match) continue;
    }
    if (!f.ports.empty()) {
      if (std::find(f.ports.begin(), f.ports.end(), port) == f.ports.end()) {
        continue;
      }
    }
    return f.target;
  }
  return std::nullopt;
}

std::vector<AppClassifier::ClassStats> AppClassifier::table_stats() const {
  std::map<AppClass, ClassStats> by_class;
  std::map<AppClass, std::set<std::uint32_t>> asns;
  std::map<AppClass, std::set<PortKey>> ports;

  for (const AppFilter& f : filters_) {
    ClassStats& s = by_class[f.target];
    s.app_class = f.target;
    ++s.filters;
    for (const Asn a : f.asns) asns[f.target].insert(a.value());
    for (const PortKey p : f.ports) ports[f.target].insert(p);
  }

  std::vector<ClassStats> out;
  for (auto& [cls, s] : by_class) {
    s.distinct_asns = asns[cls].size();
    s.distinct_ports = ports[cls].size();
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ClassHeatmap
// ---------------------------------------------------------------------------

ClassHeatmap::ClassHeatmap(const AppClassifier& classifier, const AsView& view,
                           std::vector<net::TimeRange> weeks)
    : classifier_(classifier), view_(view), weeks_(std::move(weeks)) {
  if (weeks_.size() < 2) {
    throw std::invalid_argument("ClassHeatmap: need a base week plus stages");
  }
  for (const net::TimeRange& w : weeks_) {
    if (w.hours() != 168) {
      throw std::invalid_argument("ClassHeatmap: weeks must be 7 days");
    }
  }
}

void ClassHeatmap::add(const flow::FlowRecord& r) {
  std::size_t week = weeks_.size();
  for (std::size_t i = 0; i < weeks_.size(); ++i) {
    if (weeks_[i].contains(r.first)) {
      week = i;
      break;
    }
  }
  if (week == weeks_.size()) return;

  const auto cls = classifier_.classify(r, view_);
  if (!cls) return;

  const auto slot = static_cast<std::size_t>(
      (r.first.seconds() - weeks_[week].begin.seconds()) / net::kSecondsPerHour);
  auto& per_week = volume_[*cls];
  if (per_week.empty()) per_week.assign(weeks_.size(), {});
  per_week[week][slot] += static_cast<double>(r.bytes);
}

std::vector<AppClass> ClassHeatmap::observed_classes() const {
  std::vector<AppClass> out;
  for (const auto& [cls, v] : volume_) out.push_back(cls);
  return out;
}

std::vector<double> ClassHeatmap::base_normalized(AppClass cls) const {
  std::vector<double> out(168, kMaskedHour);
  const auto it = volume_.find(cls);
  if (it == volume_.end()) return out;

  double mn = 0, mx = 0;
  bool first = true;
  for (const auto& week : it->second) {
    for (std::size_t slot = 0; slot < 168; ++slot) {
      if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
      const double v = week[slot];
      if (first || v < mn) mn = v;
      if (first || v > mx) mx = v;
      first = false;
    }
  }
  const double span = mx - mn;
  for (std::size_t slot = 0; slot < 168; ++slot) {
    if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
    out[slot] = span > 0 ? (it->second[0][slot] - mn) / span : 0.0;
  }
  return out;
}

std::vector<double> ClassHeatmap::diff_percent(AppClass cls,
                                               std::size_t week_index) const {
  if (week_index == 0 || week_index >= weeks_.size()) {
    throw std::out_of_range("ClassHeatmap::diff_percent: bad week index");
  }
  std::vector<double> out(168, kMaskedHour);
  const auto it = volume_.find(cls);
  if (it == volume_.end()) return out;

  for (std::size_t slot = 0; slot < 168; ++slot) {
    if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
    const double base = it->second[0][slot];
    const double stage = it->second[week_index][slot];
    if (base <= 0.0) {
      out[slot] = stage > 0.0 ? 200.0 : 0.0;
      continue;
    }
    const double pct = 100.0 * (stage - base) / base;
    out[slot] = std::clamp(pct, -100.0, 200.0);
  }
  return out;
}

double ClassHeatmap::working_hours_growth(AppClass cls,
                                          std::size_t week_index) const {
  const auto diffs = diff_percent(cls, week_index);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < 168; ++slot) {
    const unsigned hour = static_cast<unsigned>(slot % 24);
    const unsigned day = static_cast<unsigned>(slot / 24);
    // Weeks start on Thursday in the paper's panels; days 2,3 are Sat/Sun.
    const net::Date date = weeks_[0].begin.plus(static_cast<std::int64_t>(day) *
                                                net::kSecondsPerDay)
                               .date();
    if (net::is_weekend(date.weekday())) continue;
    if (hour < 9 || hour >= 17) continue;
    if (diffs[slot] == kMaskedHour) continue;
    sum += diffs[slot];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace lockdown::analysis
