#include "analysis/app_filter.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "filter/plan.hpp"
#include "obs/trace.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

using flow::IpProtocol;
using flow::PortKey;
using net::Asn;

namespace {

[[nodiscard]] PortKey tcp(std::uint16_t p) { return {IpProtocol::kTcp, p}; }
[[nodiscard]] PortKey udp(std::uint16_t p) { return {IpProtocol::kUdp, p}; }

[[nodiscard]] std::vector<Asn> as_list(std::initializer_list<std::uint32_t> v) {
  std::vector<Asn> out;
  for (const auto a : v) out.emplace_back(a);
  return out;
}

/// -1 for protocols without a port table (GRE/ESP/ICMP).
[[nodiscard]] constexpr int port_table_of(IpProtocol proto) noexcept {
  if (proto == IpProtocol::kTcp) return 0;
  if (proto == IpProtocol::kUdp) return 1;
  return -1;
}

[[nodiscard]] bool port_matches(const AppFilter& f, PortKey port) {
  return std::find(f.ports.begin(), f.ports.end(), port) != f.ports.end();
}

}  // namespace

AppClassifier::AppClassifier(std::vector<AppFilter> filters)
    : filters_(std::move(filters)) {
  if (filters_.size() >= kNoFilter) {
    throw std::invalid_argument("AppClassifier: too many filters");
  }
  std::set<std::string_view> names;
  for (const AppFilter& f : filters_) {
    if (!f.valid()) {
      throw std::invalid_argument("AppFilter '" + f.name + "' constrains nothing");
    }
    if (!names.insert(f.name).second) {
      // A duplicate name silently shadows under first-match priority and
      // makes registry bugs undiagnosable; reject it outright.
      throw std::invalid_argument("AppFilter '" + f.name + "' registered twice");
    }
  }
  compile_tables();
}

void AppClassifier::compile_tables() {
  port_first_[0].assign(65536, kNoFilter);
  port_first_[1].assign(65536, kNoFilter);

  std::map<std::uint32_t, std::uint16_t> asn_min;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    const auto index = static_cast<std::uint16_t>(i);
    const AppFilter& f = filters_[i];
    const bool has_as = !f.asns.empty();
    const bool has_port = !f.ports.empty();

    if (has_port && !has_as) {
      bool has_other_proto = false;
      for (const PortKey k : f.ports) {
        const int t = port_table_of(k.proto);
        if (t < 0) {
          has_other_proto = true;
          continue;
        }
        std::uint16_t& slot = port_first_[static_cast<std::size_t>(t)][k.port];
        if (slot == kNoFilter) slot = index;  // ascending i => first match
      }
      if (has_other_proto) other_port_filters_.push_back(index);
    } else if (has_as && !has_port) {
      for (const Asn a : f.asns) {
        const auto [it, inserted] = asn_min.try_emplace(a.value(), index);
        (void)it;
        (void)inserted;  // earlier (lower) index wins; try_emplace keeps it
      }
    } else {
      // Combined AS + port criterion: indexed by ASN, port list checked at
      // lookup (combined filters are few and their port lists tiny).
      for (const Asn a : f.asns) combined_.push_back({a.value(), index});
    }
  }

  asn_first_.assign(asn_min.begin(), asn_min.end());
  std::sort(combined_.begin(), combined_.end(),
            [](const CombinedEntry& a, const CombinedEntry& b) {
              return a.asn != b.asn ? a.asn < b.asn : a.index < b.index;
            });
}

std::uint16_t AppClassifier::match_index(Asn src, Asn dst, PortKey port) const {
  std::uint16_t best = kNoFilter;

  // Port-only filters: one table load (TCP/UDP) or a scan of the rare
  // filters naming port-less protocols.
  const int t = port_table_of(port.proto);
  if (t >= 0) {
    best = port_first_[static_cast<std::size_t>(t)][port.port];
  } else {
    for (const std::uint16_t index : other_port_filters_) {
      if (port_matches(filters_[index], port)) {
        best = index;
        break;
      }
    }
  }

  // ASN-only filters: binary search for src and dst.
  const auto asn_lookup = [&](std::uint32_t a) {
    const auto it = std::lower_bound(
        asn_first_.begin(), asn_first_.end(), a,
        [](const auto& e, std::uint32_t v) { return e.first < v; });
    if (it != asn_first_.end() && it->first == a && it->second < best) {
      best = it->second;
    }
  };
  asn_lookup(src.value());
  asn_lookup(dst.value());

  // Combined filters: both criteria must hold.
  const auto combined_lookup = [&](std::uint32_t a) {
    auto it = std::lower_bound(
        combined_.begin(), combined_.end(), a,
        [](const CombinedEntry& e, std::uint32_t v) { return e.asn < v; });
    for (; it != combined_.end() && it->asn == a; ++it) {
      if (it->index < best && port_matches(filters_[it->index], port)) {
        best = it->index;
        break;  // entries per asn are index-sorted; first hit is minimal
      }
    }
  };
  combined_lookup(src.value());
  combined_lookup(dst.value());

  return best;
}

std::optional<AppClass> AppClassifier::classify(const flow::FlowRecord& r,
                                                const AsView& view) const {
  const std::uint16_t index =
      match_index(view.src_as(r), view.dst_as(r), r.service_port());
  if (index == kNoFilter) return std::nullopt;
  return filters_[index].target;
}

void AppClassifier::classify_batch(std::span<const flow::FlowRecord> records,
                                   const AsView& view,
                                   std::span<std::optional<AppClass>> out) const {
  TRACE_SPAN_ARG("classify", "classify.batch", records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    out[i] = classify(records[i], view);
  }
}

void AppClassifier::classify_columns(std::size_t n, const std::uint32_t* service,
                                     const std::uint32_t* src_as,
                                     const std::uint32_t* dst_as,
                                     std::span<std::optional<AppClass>> out) const {
  TRACE_SPAN_ARG("classify", "classify.columns", n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = service[i];
    const PortKey port{static_cast<IpProtocol>(s >> 16),
                       static_cast<std::uint16_t>(s & 0xffff)};
    const std::uint16_t index =
        match_index(Asn(src_as[i]), Asn(dst_as[i]), port);
    out[i] = index == kNoFilter ? std::nullopt
                                : std::optional(filters_[index].target);
  }
}

void AppClassifier::classify_columns(std::size_t n, const std::uint32_t* service,
                                     const std::uint32_t* src_as,
                                     const std::uint32_t* dst_as,
                                     std::span<std::optional<AppClass>> out,
                                     ClassifyCache& cache) const {
  TRACE_SPAN_ARG("classify", "classify.columns", n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = service[i];
    const std::uint32_t src = src_as[i];
    const std::uint32_t dst = dst_as[i];
    const std::size_t h = (s * 0x9e3779b1u ^ src * 0x85ebca6bu ^
                           dst * 0xc2b2ae35u) &
                          (ClassifyCache::kSlots - 1);
    ClassifyCache::Slot& slot = cache.slots_[h];
    std::uint16_t index;
    if (slot.valid && slot.service == s && slot.src == src && slot.dst == dst) {
      index = slot.index;
    } else {
      const PortKey port{static_cast<IpProtocol>(s >> 16),
                         static_cast<std::uint16_t>(s & 0xffff)};
      index = match_index(Asn(src_as[i]), Asn(dst_as[i]), port);
      slot = ClassifyCache::Slot{s, src, dst, index, true};
    }
    out[i] = index == kNoFilter ? std::nullopt
                                : std::optional(filters_[index].target);
  }
}

std::optional<AppClass> AppClassifier::classify_reference(
    const flow::FlowRecord& r, const AsView& view) const {
  const net::Asn src = view.src_as(r);
  const net::Asn dst = view.dst_as(r);
  const PortKey port = r.service_port();

  for (const AppFilter& f : filters_) {
    if (!f.asns.empty()) {
      const bool as_match =
          std::find(f.asns.begin(), f.asns.end(), src) != f.asns.end() ||
          std::find(f.asns.begin(), f.asns.end(), dst) != f.asns.end();
      if (!as_match) continue;
    }
    if (!f.ports.empty()) {
      if (std::find(f.ports.begin(), f.ports.end(), port) == f.ports.end()) {
        continue;
      }
    }
    return f.target;
  }
  return std::nullopt;
}

AppClassifier AppClassifier::table1() {
  std::vector<AppFilter> f;

  // --- Web conferencing and telephony: 7 filters, 1 ASN, 6 ports. --------
  f.push_back({"webconf-teams-skype-stun", AppClass::kWebConf, as_list({8075}),
               {udp(3480)}});
  f.push_back({"webconf-stun-3480", AppClass::kWebConf, {}, {udp(3480)}});
  f.push_back({"webconf-zoom-connector", AppClass::kWebConf, {}, {udp(8801)}});
  f.push_back({"webconf-zoom-alt", AppClass::kWebConf, {}, {udp(8802)}});
  f.push_back({"webconf-stun-3478", AppClass::kWebConf, {}, {udp(3478)}});
  f.push_back({"webconf-stun-3479", AppClass::kWebConf, {}, {udp(3479)}});
  f.push_back({"webconf-rtp-5004", AppClass::kWebConf, {}, {tcp(5004)}});

  // --- Gaming: 8 filters, 5 ASNs, 57 ports. ------------------------------
  {
    std::vector<PortKey> steam;
    for (std::uint16_t p = 27000; p <= 27031; ++p) steam.push_back(udp(p));
    f.push_back({"gaming-steam-ports", AppClass::kGaming, {}, std::move(steam)});
  }
  {
    std::vector<PortKey> console;
    for (std::uint16_t p = 3074; p <= 3079; ++p) console.push_back(udp(p));
    f.push_back({"gaming-console-ports", AppClass::kGaming, {}, std::move(console)});
  }
  {
    std::vector<PortKey> misc = {tcp(25565), tcp(3724), tcp(1119)};
    for (std::uint16_t p = 6112; p <= 6119; ++p) misc.push_back(tcp(p));
    for (std::uint16_t p = 30000; p <= 30007; ++p) misc.push_back(tcp(p));
    f.push_back({"gaming-misc-ports", AppClass::kGaming, {}, std::move(misc)});
  }
  f.push_back({"gaming-riot", AppClass::kGaming, as_list({6507}), {}});
  f.push_back({"gaming-valve", AppClass::kGaming, as_list({32590}), {}});
  f.push_back({"gaming-blizzard", AppClass::kGaming, as_list({57976}), {}});
  f.push_back({"gaming-nintendo", AppClass::kGaming, as_list({11426}), {}});
  f.push_back({"gaming-sony", AppClass::kGaming, as_list({33353}), {}});

  // --- Messaging: 3 filters, no ASNs, 5 ports. ----------------------------
  f.push_back({"messaging-xmpp", AppClass::kMessaging, {}, {tcp(5222)}});
  f.push_back({"messaging-mobile-a", AppClass::kMessaging, {},
               {tcp(4244), tcp(5242)}});
  f.push_back({"messaging-mobile-b", AppClass::kMessaging, {},
               {udp(5243), udp(9785)}});

  // --- Email: 1 filter, 10 ports. -----------------------------------------
  f.push_back({"email-ports", AppClass::kEmail, {},
               {tcp(25), tcp(110), tcp(143), tcp(465), tcp(587), tcp(993),
                tcp(995), tcp(2525), tcp(4190), tcp(106)}});

  // --- Collaborative working: 8 filters, 2 ASNs, 9 ports. -----------------
  f.push_back({"collab-dropbox", AppClass::kCollabWork, as_list({19679}), {}});
  f.push_back({"collab-suite", AppClass::kCollabWork, as_list({64621}), {}});
  f.push_back({"collab-8443", AppClass::kCollabWork, {}, {tcp(8443)}});
  f.push_back({"collab-5005", AppClass::kCollabWork, {}, {tcp(5005)}});
  f.push_back({"collab-777x", AppClass::kCollabWork, {}, {tcp(7777), tcp(7780)}});
  f.push_back({"collab-844x", AppClass::kCollabWork, {}, {tcp(8444), tcp(8445)}});
  f.push_back({"collab-777x-udp", AppClass::kCollabWork, {},
               {udp(7778), udp(7779)}});
  f.push_back({"collab-9443", AppClass::kCollabWork, {}, {tcp(9443)}});

  // --- Social media: 4 filters, 4 ASNs, 1 port. ---------------------------
  f.push_back({"social-facebook", AppClass::kSocialMedia, as_list({32934}), {}});
  f.push_back({"social-twitter", AppClass::kSocialMedia, as_list({13414}), {}});
  f.push_back({"social-shortvideo", AppClass::kSocialMedia, as_list({138699}), {}});
  f.push_back({"social-eastsocial", AppClass::kSocialMedia, as_list({47541}),
               {tcp(443)}});

  // --- Video on Demand: 5 filters, 5 ASNs, no ports. ----------------------
  for (const std::uint32_t asn : {2906u, 64600u, 64601u, 64602u, 64603u}) {
    f.push_back({"vod-as" + std::to_string(asn), AppClass::kVod, as_list({asn}), {}});
  }

  // --- Educational: 9 filters, 9 ASNs. ------------------------------------
  for (const std::uint32_t asn :
       {680u, 766u, 20965u, 11537u, 1103u, 2200u, 137u, 786u, 1930u}) {
    f.push_back({"edu-as" + std::to_string(asn), AppClass::kEducational,
                 as_list({asn}), {}});
  }

  // --- CDN: 8 filters, 8 ASNs. ---------------------------------------------
  for (const std::uint32_t asn : {20940u, 13335u, 22822u, 15133u, 54113u,
                                  60068u, 12989u, 30081u}) {
    f.push_back({"cdn-as" + std::to_string(asn), AppClass::kCdn, as_list({asn}), {}});
  }

  return AppClassifier(std::move(f));
}

std::vector<AppClassifier::ClassStats> AppClassifier::table_stats() const {
  std::map<AppClass, ClassStats> by_class;
  std::map<AppClass, std::set<std::uint32_t>> asns;
  std::map<AppClass, std::set<PortKey>> ports;

  for (const AppFilter& f : filters_) {
    ClassStats& s = by_class[f.target];
    s.app_class = f.target;
    ++s.filters;
    for (const Asn a : f.asns) asns[f.target].insert(a.value());
    for (const PortKey p : f.ports) ports[f.target].insert(p);
  }

  std::vector<ClassStats> out;
  for (auto& [cls, s] : by_class) {
    s.distinct_asns = asns[cls].size();
    s.distinct_ports = ports[cls].size();
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ClassHeatmap
// ---------------------------------------------------------------------------

ClassHeatmap::ClassHeatmap(const AppClassifier& classifier, const AsView& view,
                           std::vector<net::TimeRange> weeks)
    : classifier_(classifier), view_(view), weeks_(std::move(weeks)) {
  if (weeks_.size() < 2) {
    throw std::invalid_argument("ClassHeatmap: need a base week plus stages");
  }
  for (const net::TimeRange& w : weeks_) {
    if (w.hours() != 168) {
      throw std::invalid_argument("ClassHeatmap: weeks must be 7 days");
    }
  }
  week_index_ = WeekIndex(weeks_);
  for (unsigned day = 0; day < 7; ++day) {
    // Weeks start on Thursday in the paper's panels; days 2,3 are Sat/Sun.
    base_day_weekend_[day] = net::is_weekend(
        weeks_[0].begin.plus(static_cast<std::int64_t>(day) * net::kSecondsPerDay)
            .date()
            .weekday());
  }
}

void ClassHeatmap::deposit(const flow::FlowRecord& r, AppClass cls) {
  const std::size_t week = week_of(r.first);
  if (week == weeks_.size()) return;
  const auto slot = static_cast<std::size_t>(
      (r.first.seconds() - weeks_[week].begin.seconds()) / net::kSecondsPerHour);
  auto& per_week = volume_[cls];
  if (per_week.empty()) per_week.assign(weeks_.size(), {});
  per_week[week][slot] += util::counter_to_double(r.bytes);
}

void ClassHeatmap::add(const flow::FlowRecord& r) {
  if (week_of(r.first) == weeks_.size()) return;
  const auto cls = classifier_.classify(r, view_);
  if (!cls) return;
  deposit(r, *cls);
}

void ClassHeatmap::add_batch(std::span<const flow::FlowRecord> batch) {
  batch_scratch_.resize(batch.size());
  classifier_.classify_batch(batch, view_, batch_scratch_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch_scratch_[i]) deposit(batch[i], *batch_scratch_[i]);
  }
}

void ClassHeatmap::add_batch(std::span<const flow::FlowRecord> batch,
                             const filter::FlowColumns& cols) {
  batch_scratch_.resize(batch.size());
  classifier_.classify_columns(batch.size(), cols.service.data(),
                               cols.src_as.data(), cols.dst_as.data(),
                               batch_scratch_, classify_cache_);
  // Inline deposit with the per-class week vectors resolved once per batch
  // (volume_ is a node-based map, so the pointers are stable).
  std::array<std::vector<std::array<double, 168>>*, synth::kAppClassCount>
      per_cls{};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch_scratch_[i]) continue;
    const flow::FlowRecord& r = batch[i];
    const std::size_t week = week_of(r.first);
    if (week == weeks_.size()) continue;
    const auto cls_index = static_cast<std::size_t>(*batch_scratch_[i]);
    if (per_cls[cls_index] == nullptr) {
      auto& per_week = volume_[*batch_scratch_[i]];
      if (per_week.empty()) per_week.assign(weeks_.size(), {});
      per_cls[cls_index] = &per_week;
    }
    const auto slot = static_cast<std::size_t>(
        (r.first.seconds() - weeks_[week].begin.seconds()) /
        net::kSecondsPerHour);
    (*per_cls[cls_index])[week][slot] += util::counter_to_double(r.bytes);
  }
}

void ClassHeatmap::merge(const ClassHeatmap& other) {
  for (const auto& [cls, weeks] : other.volume_) {
    auto& mine = volume_[cls];
    if (mine.empty()) mine.assign(weeks_.size(), {});
    for (std::size_t w = 0; w < weeks.size() && w < mine.size(); ++w) {
      for (std::size_t slot = 0; slot < 168; ++slot) {
        mine[w][slot] += weeks[w][slot];
      }
    }
  }
}

std::vector<AppClass> ClassHeatmap::observed_classes() const {
  std::vector<AppClass> out;
  for (const auto& [cls, v] : volume_) out.push_back(cls);
  return out;
}

std::vector<double> ClassHeatmap::base_normalized(AppClass cls) const {
  std::vector<double> out(168, kMaskedHour);
  const auto it = volume_.find(cls);
  if (it == volume_.end()) return out;

  double mn = 0, mx = 0;
  bool first = true;
  for (const auto& week : it->second) {
    for (std::size_t slot = 0; slot < 168; ++slot) {
      if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
      const double v = week[slot];
      if (first || v < mn) mn = v;
      if (first || v > mx) mx = v;
      first = false;
    }
  }
  const double span = mx - mn;
  for (std::size_t slot = 0; slot < 168; ++slot) {
    if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
    out[slot] = span > 0 ? (it->second[0][slot] - mn) / span : 0.0;
  }
  return out;
}

std::vector<double> ClassHeatmap::diff_percent(AppClass cls,
                                               std::size_t week_index) const {
  if (week_index == 0 || week_index >= weeks_.size()) {
    throw std::out_of_range("ClassHeatmap::diff_percent: bad week index");
  }
  std::vector<double> out(168, kMaskedHour);
  const auto it = volume_.find(cls);
  if (it == volume_.end()) return out;

  for (std::size_t slot = 0; slot < 168; ++slot) {
    if (masked_hour(static_cast<unsigned>(slot % 24))) continue;
    const double base = it->second[0][slot];
    const double stage = it->second[week_index][slot];
    if (base <= 0.0) {
      out[slot] = stage > 0.0 ? 200.0 : 0.0;
      continue;
    }
    const double pct = 100.0 * (stage - base) / base;
    out[slot] = std::clamp(pct, -100.0, 200.0);
  }
  return out;
}

double ClassHeatmap::working_hours_growth(AppClass cls,
                                          std::size_t week_index) const {
  const auto diffs = diff_percent(cls, week_index);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < 168; ++slot) {
    const unsigned hour = static_cast<unsigned>(slot % 24);
    const unsigned day = static_cast<unsigned>(slot / 24);
    if (base_day_weekend_[day]) continue;
    if (hour < 9 || hour >= 17) continue;
    if (diffs[slot] == kMaskedHour) continue;
    sum += diffs[slot];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace lockdown::analysis
