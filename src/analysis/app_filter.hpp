// §5 / Table 1 / Fig 9: application-class traffic classification.
//
// "We apply a traffic classification based on a combination of transport
// port and traffic source/sink criteria. In total, we define more than 50
// combinations of transport port and AS criteria." Each filter can match
// on AS endpoints, on the service port, or on both; the first matching
// filter (in registry order: most specific first) assigns the class.
// The table1() registry reproduces Table 1's per-class filter/ASN/port
// counts exactly.
//
// classify() runs on a compiled form of the registry (DESIGN.md §9): a
// per-protocol port -> first-matching-filter table, a sorted ASN -> filter
// vector and a small combined (AS + port) index, all carrying the *lowest*
// matching filter index so first-match priority is preserved exactly. The
// interpreted scan is retained as classify_reference() and pinned against
// the compiled path by a differential fuzz test.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/as_view.hpp"
#include "analysis/day_cache.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"
#include "synth/app_class.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

using synth::AppClass;

/// Caller-owned memo table for AppClassifier::classify_columns: record
/// streams repeat a small set of (service, src AS, dst AS) triples, so the
/// compiled lookup (port table + four binary searches) runs once per
/// distinct triple instead of once per record. Direct-mapped: a colliding
/// triple simply recomputes and overwrites. Owned by the aggregator (one
/// per scan lane), never by the shared immutable classifier.
class ClassifyCache {
 public:
  ClassifyCache() : slots_(kSlots) {}

 private:
  friend class AppClassifier;
  static constexpr std::size_t kSlots = 4096;  // power of two
  struct Slot {
    std::uint32_t service = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t index = 0;
    bool valid = false;
  };
  std::vector<Slot> slots_;
};

struct AppFilter {
  std::string name;
  AppClass target = AppClass::kOther;
  std::vector<net::Asn> asns;        ///< empty = no AS criterion
  std::vector<flow::PortKey> ports;  ///< empty = no port criterion

  /// A filter must constrain something.
  [[nodiscard]] bool valid() const noexcept {
    return !asns.empty() || !ports.empty();
  }
};

class AppClassifier {
 public:
  /// Validates (every filter constrains something, names are unique,
  /// registry fits the compiled index) and compiles the flat tables.
  explicit AppClassifier(std::vector<AppFilter> filters);

  /// The paper's filter registry (Table 1's nine classes).
  [[nodiscard]] static AppClassifier table1();

  /// First matching filter's class; nullopt if nothing matches. Flat-table
  /// lookup -- O(1) on the port axis plus two binary searches on the AS
  /// axis -- with exactly the first-match semantics of
  /// classify_reference().
  [[nodiscard]] std::optional<AppClass> classify(const flow::FlowRecord& r,
                                                 const AsView& view) const;

  /// The original interpreted scan over the filter registry, retained as
  /// the semantic reference for differential tests and the flat-vs-
  /// reference bench series. Same results as classify(), filters x scan
  /// cost.
  [[nodiscard]] std::optional<AppClass> classify_reference(
      const flow::FlowRecord& r, const AsView& view) const;

  /// Batch classification for the BatchSink collector path: one call per
  /// decoded datagram, no per-record std::function hop. Writes
  /// `records.size()` results into `out` (which must be at least that
  /// large).
  void classify_batch(std::span<const flow::FlowRecord> records,
                      const AsView& view,
                      std::span<std::optional<AppClass>> out) const;

  [[nodiscard]] std::vector<std::optional<AppClass>> classify_batch(
      std::span<const flow::FlowRecord> records, const AsView& view) const {
    std::vector<std::optional<AppClass>> out(records.size());
    classify_batch(records, view, out);
    return out;
  }

  /// Columnar batch classification over pre-resolved per-batch columns
  /// (filter::FlowColumns layout): `service` is the (proto << 16 | port)
  /// key column, `src_as`/`dst_as` the resolved endpoint AS columns, each
  /// `n` elements. Skips the per-record service_port()/trie work entirely;
  /// same results as classify() over the same records.
  void classify_columns(std::size_t n, const std::uint32_t* service,
                        const std::uint32_t* src_as,
                        const std::uint32_t* dst_as,
                        std::span<std::optional<AppClass>> out) const;

  /// classify_columns with a caller-owned memo cache: identical results,
  /// but repeated (service, src AS, dst AS) triples hit the cache instead
  /// of re-running the compiled lookup.
  void classify_columns(std::size_t n, const std::uint32_t* service,
                        const std::uint32_t* src_as,
                        const std::uint32_t* dst_as,
                        std::span<std::optional<AppClass>> out,
                        ClassifyCache& cache) const;

  [[nodiscard]] const std::vector<AppFilter>& filters() const noexcept {
    return filters_;
  }

  /// Table 1 rows: per class, number of filters, distinct ASNs, distinct
  /// transport ports.
  struct ClassStats {
    AppClass app_class = AppClass::kOther;
    std::size_t filters = 0;
    std::size_t distinct_asns = 0;
    std::size_t distinct_ports = 0;
  };
  [[nodiscard]] std::vector<ClassStats> table_stats() const;

 private:
  /// Sentinel for "no filter matches" in the compiled tables. Filter
  /// indices are uint16; the constructor rejects registries that large.
  static constexpr std::uint16_t kNoFilter = 0xffff;

  void compile_tables();
  /// Lowest-index matching filter, or kNoFilter.
  [[nodiscard]] std::uint16_t match_index(net::Asn src, net::Asn dst,
                                          flow::PortKey port) const;

  std::vector<AppFilter> filters_;

  // --- compiled form (built once by the constructor) ----------------------
  // port_first_[proto][port]: lowest index of a *port-only* filter matching
  // (proto, port); proto 0 = TCP, 1 = UDP. Port-only filters naming other
  // protocols (GRE/ESP/ICMP carry no port) land in other_port_filters_ and
  // are scanned only for such records.
  std::array<std::vector<std::uint16_t>, 2> port_first_;
  std::vector<std::uint16_t> other_port_filters_;
  // Sorted (asn, lowest index of an *asn-only* filter naming it).
  std::vector<std::pair<std::uint32_t, std::uint16_t>> asn_first_;
  // Combined (AS + port) filters, one entry per (asn, filter), sorted by
  // asn; the port criterion is checked against the filter's own port list.
  struct CombinedEntry {
    std::uint32_t asn;
    std::uint16_t index;
  };
  std::vector<CombinedEntry> combined_;
};

/// Fig 9 heatmaps: per application class, hourly volume over a base week
/// and the differences of two lockdown-stage weeks against it. Weeks are
/// aligned on their first day (the paper's panels run Thu..Wed).
class ClassHeatmap {
 public:
  /// `weeks[0]` is the base week; all weeks must be 7 days.
  ClassHeatmap(const AppClassifier& classifier, const AsView& view,
               std::vector<net::TimeRange> weeks);

  void add(const flow::FlowRecord& r);

  /// Batch ingestion for the BatchSink collector path: classifies the span
  /// through AppClassifier::classify_batch, then deposits. Same final
  /// aggregate as per-record add().
  void add_batch(std::span<const flow::FlowRecord> batch);

  /// Columnar batch ingestion for the scan engine: classification reads the
  /// batch's pre-resolved service/AS columns instead of re-running the trie
  /// per record. Same final aggregate as per-record add().
  void add_batch(std::span<const flow::FlowRecord> batch,
                 const filter::FlowColumns& cols);

  /// Fold a sibling heatmap (same classifier/weeks) into this one; hourly
  /// bins are exact-integer byte sums, so the merge is order-independent.
  void merge(const ClassHeatmap& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Span-shaped sink matching flow::Collector::BatchSink.
  [[nodiscard]] std::function<void(std::span<const flow::FlowRecord>)>
  batch_sink() {
    return [this](std::span<const flow::FlowRecord> batch) { add_batch(batch); };
  }

  [[nodiscard]] std::vector<AppClass> observed_classes() const;

  /// Base-week hourly volume of a class normalized to [0,1] by the class's
  /// min/max over *all* weeks, with early-morning hours (2-7 am) removed
  /// (set to -1 as a sentinel), per the paper's §5 transformation.
  [[nodiscard]] std::vector<double> base_normalized(AppClass cls) const;

  /// Difference of week `week_index` (>=1) vs the base week, as percent of
  /// the base value, clamped to [-100, +200] ("we cut off any growth above
  /// 200% and decrease below 100%"). Early-morning hours -> sentinel -999.
  [[nodiscard]] std::vector<double> diff_percent(AppClass cls,
                                                 std::size_t week_index) const;

  /// Mean diff (percent) over working hours (9-17) of workdays -- the
  /// quantitative summary used in EXPERIMENTS.md.
  [[nodiscard]] double working_hours_growth(AppClass cls,
                                            std::size_t week_index) const;

  static constexpr double kMaskedHour = -999.0;

 private:
  [[nodiscard]] static bool masked_hour(unsigned hour_of_day) noexcept {
    return hour_of_day >= 2 && hour_of_day < 7;
  }

  /// Index into weeks_ of the (first-in-constructor-order) week containing
  /// `t`, or weeks_.size(). Disjoint-segment index with a cached-segment
  /// fast path (WeekIndex) instead of the per-record linear scan; streams
  /// are near-sorted, so the cache hits almost always.
  [[nodiscard]] std::size_t week_of(net::Timestamp t) noexcept {
    return week_index_.lookup(t);
  }

  void deposit(const flow::FlowRecord& r, AppClass cls);

  const AppClassifier& classifier_;
  const AsView& view_;
  std::vector<net::TimeRange> weeks_;
  WeekIndex week_index_;
  /// Weekend flags of the base week's 7 days, so working_hours_growth does
  /// not rebuild a net::Date per hour slot.
  std::array<bool, 7> base_day_weekend_{};
  /// Scratch for add_batch (ClassHeatmap is single-threaded, like every
  /// analysis aggregator; the sharded runtime merges before analysis).
  std::vector<std::optional<AppClass>> batch_scratch_;
  /// Memo for the columnar add_batch's classification.
  ClassifyCache classify_cache_;
  // volume[class][week][hour-slot 0..167]
  std::map<AppClass, std::vector<std::array<double, 168>>> volume_;
};

}  // namespace lockdown::analysis
