// §5 / Table 1 / Fig 9: application-class traffic classification.
//
// "We apply a traffic classification based on a combination of transport
// port and traffic source/sink criteria. In total, we define more than 50
// combinations of transport port and AS criteria." Each filter can match
// on AS endpoints, on the service port, or on both; the first matching
// filter (in registry order: most specific first) assigns the class.
// The table1() registry reproduces Table 1's per-class filter/ASN/port
// counts exactly.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/as_view.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"
#include "synth/app_class.hpp"

namespace lockdown::analysis {

using synth::AppClass;

struct AppFilter {
  std::string name;
  AppClass target = AppClass::kOther;
  std::vector<net::Asn> asns;        ///< empty = no AS criterion
  std::vector<flow::PortKey> ports;  ///< empty = no port criterion

  /// A filter must constrain something.
  [[nodiscard]] bool valid() const noexcept {
    return !asns.empty() || !ports.empty();
  }
};

class AppClassifier {
 public:
  explicit AppClassifier(std::vector<AppFilter> filters);

  /// The paper's filter registry (Table 1's nine classes).
  [[nodiscard]] static AppClassifier table1();

  /// First matching filter's class; nullopt if nothing matches.
  [[nodiscard]] std::optional<AppClass> classify(const flow::FlowRecord& r,
                                                 const AsView& view) const;

  [[nodiscard]] const std::vector<AppFilter>& filters() const noexcept {
    return filters_;
  }

  /// Table 1 rows: per class, number of filters, distinct ASNs, distinct
  /// transport ports.
  struct ClassStats {
    AppClass app_class = AppClass::kOther;
    std::size_t filters = 0;
    std::size_t distinct_asns = 0;
    std::size_t distinct_ports = 0;
  };
  [[nodiscard]] std::vector<ClassStats> table_stats() const;

 private:
  std::vector<AppFilter> filters_;
};

/// Fig 9 heatmaps: per application class, hourly volume over a base week
/// and the differences of two lockdown-stage weeks against it. Weeks are
/// aligned on their first day (the paper's panels run Thu..Wed).
class ClassHeatmap {
 public:
  /// `weeks[0]` is the base week; all weeks must be 7 days.
  ClassHeatmap(const AppClassifier& classifier, const AsView& view,
               std::vector<net::TimeRange> weeks);

  void add(const flow::FlowRecord& r);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  [[nodiscard]] std::vector<AppClass> observed_classes() const;

  /// Base-week hourly volume of a class normalized to [0,1] by the class's
  /// min/max over *all* weeks, with early-morning hours (2-7 am) removed
  /// (set to -1 as a sentinel), per the paper's §5 transformation.
  [[nodiscard]] std::vector<double> base_normalized(AppClass cls) const;

  /// Difference of week `week_index` (>=1) vs the base week, as percent of
  /// the base value, clamped to [-100, +200] ("we cut off any growth above
  /// 200% and decrease below 100%"). Early-morning hours -> sentinel -999.
  [[nodiscard]] std::vector<double> diff_percent(AppClass cls,
                                                 std::size_t week_index) const;

  /// Mean diff (percent) over working hours (9-17) of workdays -- the
  /// quantitative summary used in EXPERIMENTS.md.
  [[nodiscard]] double working_hours_growth(AppClass cls,
                                            std::size_t week_index) const;

  static constexpr double kMaskedHour = -999.0;

 private:
  [[nodiscard]] static bool masked_hour(unsigned hour_of_day) noexcept {
    return hour_of_day >= 2 && hour_of_day < 7;
  }

  const AppClassifier& classifier_;
  const AsView& view_;
  std::vector<net::TimeRange> weeks_;
  // volume[class][week][hour-slot 0..167]
  std::map<AppClass, std::vector<std::array<double, 168>>> volume_;
};

}  // namespace lockdown::analysis
