// Endpoint-to-AS resolution for analyses. Real flow pipelines prefer the
// exporter's BGP-derived AS annotations and fall back to longest-prefix
// matching a routing snapshot; we mirror that: use FlowRecord src/dst AS if
// present, else the registry's prefix trie.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "flow/flow_record.hpp"
#include "net/asn.hpp"
#include "net/prefix_trie.hpp"

namespace lockdown::analysis {

class AsView {
 public:
  explicit AsView(const net::Ipv4PrefixTrie<net::Asn>& trie) : trie_(trie) {}

  [[nodiscard]] net::Asn src_as(const flow::FlowRecord& r) const {
    if (r.src_as.value() != 0) return r.src_as;
    if (r.src_addr.is_v4()) {
      if (const auto as = trie_.lookup(r.src_addr.v4())) return *as;
    }
    return net::Asn(0);
  }

  [[nodiscard]] net::Asn dst_as(const flow::FlowRecord& r) const {
    if (r.dst_as.value() != 0) return r.dst_as;
    if (r.dst_addr.is_v4()) {
      if (const auto as = trie_.lookup(r.dst_addr.v4())) return *as;
    }
    return net::Asn(0);
  }

 private:
  const net::Ipv4PrefixTrie<net::Asn>& trie_;
};

/// Ordered ASN set with membership test; used for hypergiant lists, eyeball
/// lists, local-network lists. Backed by a sorted vector: these sets are
/// built once and probed per record, so binary search over contiguous
/// storage beats a node-based std::set on the batch hot paths. The raw
/// uint32 overload serves the columnar add_batch paths, which carry
/// resolved ASes as plain integers (filter::FlowColumns).
class AsnSet {
 public:
  AsnSet() = default;
  explicit AsnSet(const std::vector<net::Asn>& asns) {
    sorted_.reserve(asns.size());
    for (const net::Asn a : asns) sorted_.push_back(a.value());
    std::sort(sorted_.begin(), sorted_.end());
    sorted_.erase(std::unique(sorted_.begin(), sorted_.end()), sorted_.end());
  }

  void insert(net::Asn a) {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), a.value());
    if (it == sorted_.end() || *it != a.value()) sorted_.insert(it, a.value());
  }
  [[nodiscard]] bool contains(net::Asn a) const noexcept {
    return contains(a.value());
  }
  [[nodiscard]] bool contains(std::uint32_t a) const noexcept {
    return std::binary_search(sorted_.begin(), sorted_.end(), a);
  }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Member ASNs, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& values() const noexcept {
    return sorted_;
  }

 private:
  std::vector<std::uint32_t> sorted_;
};

}  // namespace lockdown::analysis
