// Endpoint-to-AS resolution for analyses. Real flow pipelines prefer the
// exporter's BGP-derived AS annotations and fall back to longest-prefix
// matching a routing snapshot; we mirror that: use FlowRecord src/dst AS if
// present, else the registry's prefix trie.
#pragma once

#include <set>

#include "flow/flow_record.hpp"
#include "net/asn.hpp"
#include "net/prefix_trie.hpp"

namespace lockdown::analysis {

class AsView {
 public:
  explicit AsView(const net::Ipv4PrefixTrie<net::Asn>& trie) : trie_(trie) {}

  [[nodiscard]] net::Asn src_as(const flow::FlowRecord& r) const {
    if (r.src_as.value() != 0) return r.src_as;
    if (r.src_addr.is_v4()) {
      if (const auto as = trie_.lookup(r.src_addr.v4())) return *as;
    }
    return net::Asn(0);
  }

  [[nodiscard]] net::Asn dst_as(const flow::FlowRecord& r) const {
    if (r.dst_as.value() != 0) return r.dst_as;
    if (r.dst_addr.is_v4()) {
      if (const auto as = trie_.lookup(r.dst_addr.v4())) return *as;
    }
    return net::Asn(0);
  }

 private:
  const net::Ipv4PrefixTrie<net::Asn>& trie_;
};

/// Ordered ASN set with membership test; used for hypergiant lists, eyeball
/// lists, local-network lists.
class AsnSet {
 public:
  AsnSet() = default;
  explicit AsnSet(const std::vector<net::Asn>& asns)
      : set_(asns.begin(), asns.end()) {}

  void insert(net::Asn a) { set_.insert(a); }
  [[nodiscard]] bool contains(net::Asn a) const { return set_.contains(a); }
  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }

 private:
  std::set<net::Asn> set_;
};

}  // namespace lockdown::analysis
