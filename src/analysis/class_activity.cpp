#include "analysis/class_activity.hpp"

#include "net/ip.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::analysis {

void ClassActivityTracker::add(const flow::FlowRecord& r) {
  const auto cls = classifier_.classify(r, view_);
  if (!cls || *cls != cls_) return;

  const std::int64_t hour = r.first.floor_hour().seconds();
  HourAcc& acc = hours_[hour];
  acc.bytes += static_cast<double>(r.bytes);
  const net::IpAddressHash hash;
  acc.ips.insert(hash(r.src_addr));
  acc.ips.insert(hash(r.dst_addr));
}

std::vector<ClassActivityTracker::HourPoint> ClassActivityTracker::hourly() const {
  std::vector<HourPoint> out;
  out.reserve(hours_.size());
  for (const auto& [hour, acc] : hours_) {
    out.push_back(HourPoint{net::Timestamp(hour), acc.bytes, acc.ips.size()});
  }
  return out;
}

std::vector<ClassActivityTracker::DayEnvelope> ClassActivityTracker::envelope(
    const std::function<double(const HourAcc&)>& metric) const {
  // Smallest *positive* hourly value for normalization (Fig 8's y-axis is
  // "x minimum"): an idle zero hour must not collapse the divisor to the
  // 1.0 fallback and silently turn the envelope into raw values. Only a
  // series with no positive hour at all falls back to 1.0.
  double global_min = 0.0;
  for (const auto& [hour, acc] : hours_) {
    const double v = metric(acc);
    if (v > 0.0 && (global_min <= 0.0 || v < global_min)) global_min = v;
  }
  if (global_min <= 0.0) global_min = 1.0;

  std::map<std::int64_t, stats::RunningStats> days;
  for (const auto& [hour, acc] : hours_) {
    days[net::Timestamp(hour).floor_day().seconds()].add(metric(acc) / global_min);
  }

  std::vector<DayEnvelope> out;
  out.reserve(days.size());
  for (const auto& [day, rs] : days) {
    out.push_back(DayEnvelope{net::Timestamp(day).date(), rs.min(), rs.mean(),
                              rs.max()});
  }
  return out;
}

std::vector<ClassActivityTracker::DayEnvelope>
ClassActivityTracker::daily_volume_envelope() const {
  return envelope([](const HourAcc& a) { return a.bytes; });
}

std::vector<ClassActivityTracker::DayEnvelope>
ClassActivityTracker::daily_ip_envelope() const {
  return envelope([](const HourAcc& a) { return static_cast<double>(a.ips.size()); });
}

}  // namespace lockdown::analysis
