#include "analysis/class_activity.hpp"

#include "filter/plan.hpp"
#include "net/ip.hpp"
#include "stats/timeseries.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

void ClassActivityTracker::add(const flow::FlowRecord& r) {
  const auto cls = classifier_.classify(r, view_);
  if (!cls || *cls != cls_) return;

  const std::int64_t hour = r.first.floor_hour().seconds();
  HourAcc& acc = hours_[hour];
  acc.bytes += util::counter_to_double(r.bytes);
  const net::IpAddressHash hash;
  acc.ips.insert(hash(r.src_addr));
  acc.ips.insert(hash(r.dst_addr));
}

void ClassActivityTracker::add_batch(std::span<const flow::FlowRecord> records,
                                     const filter::FlowColumns& cols) {
  batch_scratch_.resize(records.size());
  classifier_.classify_columns(records.size(), cols.service.data(),
                               cols.src_as.data(), cols.dst_as.data(),
                               batch_scratch_, classify_cache_);
  const net::IpAddressHash hash;
  // Cache the current hour's accumulator locally: near-sorted streams keep
  // hitting the same std::map node, and map nodes are pointer-stable.
  std::int64_t cached_hour = 0;
  HourAcc* cached_acc = nullptr;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!batch_scratch_[i] || *batch_scratch_[i] != cls_) continue;
    const flow::FlowRecord& r = records[i];
    const std::int64_t hour = r.first.floor_hour().seconds();
    if (cached_acc == nullptr || hour != cached_hour) {
      cached_acc = &hours_[hour];
      cached_hour = hour;
    }
    cached_acc->bytes += util::counter_to_double(r.bytes);
    cached_acc->ips.insert(hash(r.src_addr));
    cached_acc->ips.insert(hash(r.dst_addr));
  }
}

void ClassActivityTracker::merge(const ClassActivityTracker& other) {
  for (const auto& [hour, acc] : other.hours_) {
    HourAcc& mine = hours_[hour];
    mine.bytes += acc.bytes;
    mine.ips.insert(acc.ips.begin(), acc.ips.end());
  }
}

std::vector<ClassActivityTracker::HourPoint> ClassActivityTracker::hourly() const {
  std::vector<HourPoint> out;
  out.reserve(hours_.size());
  for (const auto& [hour, acc] : hours_) {
    out.push_back(HourPoint{net::Timestamp(hour), acc.bytes, acc.ips.size()});
  }
  return out;
}

std::vector<ClassActivityTracker::DayEnvelope> ClassActivityTracker::envelope(
    const std::function<double(const HourAcc&)>& metric) const {
  // Smallest *positive* hourly value for normalization (Fig 8's y-axis is
  // "x minimum"): an idle zero hour must not collapse the divisor to the
  // 1.0 fallback and silently turn the envelope into raw values. Only a
  // series with no positive hour at all falls back to 1.0.
  double global_min = 0.0;
  for (const auto& [hour, acc] : hours_) {
    const double v = metric(acc);
    if (v > 0.0 && (global_min <= 0.0 || v < global_min)) global_min = v;
  }
  if (global_min <= 0.0) global_min = 1.0;

  std::map<std::int64_t, stats::RunningStats> days;
  for (const auto& [hour, acc] : hours_) {
    days[net::Timestamp(hour).floor_day().seconds()].add(metric(acc) / global_min);
  }

  std::vector<DayEnvelope> out;
  out.reserve(days.size());
  for (const auto& [day, rs] : days) {
    out.push_back(DayEnvelope{net::Timestamp(day).date(), rs.min(), rs.mean(),
                              rs.max()});
  }
  return out;
}

std::vector<ClassActivityTracker::DayEnvelope>
ClassActivityTracker::daily_volume_envelope() const {
  return envelope([](const HourAcc& a) { return a.bytes; });
}

std::vector<ClassActivityTracker::DayEnvelope>
ClassActivityTracker::daily_ip_envelope() const {
  return envelope([](const HourAcc& a) { return static_cast<double>(a.ips.size()); });
}

}  // namespace lockdown::analysis
