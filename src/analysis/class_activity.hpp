// §5 / Fig 8: per-hour activity of one application class -- traffic volume
// and distinct IP addresses (a proxy for the order of households) -- with
// daily min/avg/max envelopes, normalized to the observed minimum.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "analysis/app_filter.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

class ClassActivityTracker {
 public:
  ClassActivityTracker(const AppClassifier& classifier, const AsView& view,
                       AppClass cls)
      : classifier_(classifier), view_(view), cls_(cls) {}

  void add(const flow::FlowRecord& r);

  /// Columnar batch path: classification reads the batch's pre-resolved
  /// service/AS columns. Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling tracker (same classifier/class) into this one. Byte
  /// bins are exact-integer sums and IP sets union, so the result is
  /// independent of how records were partitioned.
  void merge(const ClassActivityTracker& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  struct HourPoint {
    net::Timestamp hour;
    double bytes = 0.0;
    std::size_t unique_ips = 0;
  };
  /// Chronological per-hour activity.
  [[nodiscard]] std::vector<HourPoint> hourly() const;

  struct DayEnvelope {
    net::Date date;
    double min = 0.0, avg = 0.0, max = 0.0;
  };
  /// Daily envelopes of one metric, normalized to the global minimum hourly
  /// value of that metric (the paper normalizes Fig 8 to the minimum).
  [[nodiscard]] std::vector<DayEnvelope> daily_volume_envelope() const;
  [[nodiscard]] std::vector<DayEnvelope> daily_ip_envelope() const;

 private:
  struct HourAcc {
    double bytes = 0.0;
    std::unordered_set<std::size_t> ips;  // hashed addresses
  };

  [[nodiscard]] std::vector<DayEnvelope> envelope(
      const std::function<double(const HourAcc&)>& metric) const;

  const AppClassifier& classifier_;
  const AsView& view_;
  AppClass cls_;
  std::map<std::int64_t, HourAcc> hours_;
  std::vector<std::optional<AppClass>> batch_scratch_;
  /// Memo for the columnar add_batch's classification.
  ClassifyCache classify_cache_;
};

}  // namespace lockdown::analysis
