// Per-batch civil-time cache for the columnar aggregator loops. The
// per-record add() paths pay the full Date decomposition (year/month/day,
// weekday, holiday table) for every record; flow streams are near-sorted in
// time, so consecutive records overwhelmingly share a calendar day and the
// batch paths resolve those facts once per distinct day instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/civil_time.hpp"
#include "synth/timeline.hpp"

namespace lockdown::analysis {

/// Calendar facts of the day containing the last timestamp seen, refreshed
/// when a timestamp falls outside it. Purely a lookup accelerator: at(t)
/// returns exactly what recomputing from t would.
class DayFlagsCache {
 public:
  struct Flags {
    std::int64_t day_begin = 0;  ///< floor_day(t) in Unix seconds
    net::Date date;
    unsigned paper_week = 0;
    bool weekend = false;          ///< Saturday or Sunday
    bool weekend_or_holiday = false;  ///< weekend or a 2020 public holiday
  };

  [[nodiscard]] const Flags& at(net::Timestamp t) {
    const std::int64_t s = t.seconds();
    if (s < day_begin_ || s >= day_end_) refresh(t);
    return flags_;
  }

  /// Hour-of-day via the cached day base; valid for the `t` (or any
  /// same-day timestamp) passed to the preceding at() call.
  [[nodiscard]] static unsigned hour_of(const Flags& f,
                                        net::Timestamp t) noexcept {
    return static_cast<unsigned>((t.seconds() - f.day_begin) /
                                 net::kSecondsPerHour);
  }

 private:
  void refresh(net::Timestamp t) {
    const net::Timestamp day = t.floor_day();
    flags_.day_begin = day.seconds();
    flags_.date = day.date();
    flags_.paper_week = flags_.date.paper_week();
    flags_.weekend = flags_.date.is_weekend_day();
    flags_.weekend_or_holiday =
        flags_.weekend || synth::is_holiday_2020(flags_.date);
    day_begin_ = flags_.day_begin;
    day_end_ = flags_.day_begin + net::kSecondsPerDay;
  }

  // Empty range so the first at() refreshes.
  std::int64_t day_begin_ = 1;
  std::int64_t day_end_ = 0;
  Flags flags_;
};

/// First-match lookup over a fixed list of (possibly overlapping)
/// TimeRanges -- the "which analysis week is this record in" question
/// PortAnalyzer and VpnAnalyzer answer per record with a linear scan. The
/// ranges are compiled to disjoint segments at construction (each segment
/// carries the index the linear scan would return anywhere inside it), so
/// the hot lookup is a cached range check on near-sorted streams and one
/// binary search otherwise. Semantics are identical to the linear scan,
/// including overlap resolution (lowest index wins).
class WeekIndex {
 public:
  WeekIndex() = default;
  explicit WeekIndex(const std::vector<net::TimeRange>& weeks)
      : count_(weeks.size()) {
    std::vector<std::int64_t> bounds;
    bounds.reserve(weeks.size() * 2);
    for (const net::TimeRange& w : weeks) {
      if (w.begin < w.end) {
        bounds.push_back(w.begin.seconds());
        bounds.push_back(w.end.seconds());
      }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      const std::int64_t b = bounds[k];
      std::size_t idx = count_;
      for (std::size_t i = 0; i < weeks.size(); ++i) {
        if (weeks[i].begin.seconds() <= b && b < weeks[i].end.seconds()) {
          idx = i;
          break;
        }
      }
      if (idx == count_) continue;
      if (!segments_.empty() && segments_.back().end == b &&
          segments_.back().idx == idx) {
        segments_.back().end = bounds[k + 1];
      } else {
        segments_.push_back({b, bounds[k + 1], idx});
      }
    }
  }

  /// Index of the first range containing `t`, or size() if none.
  [[nodiscard]] std::size_t lookup(net::Timestamp t) noexcept {
    const std::int64_t s = t.seconds();
    if (s >= cached_begin_ && s < cached_end_) return cached_idx_;
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), s,
        [](std::int64_t v, const Segment& seg) { return v < seg.begin; });
    if (it == segments_.begin()) return count_;
    --it;
    if (s >= it->end) return count_;
    cached_begin_ = it->begin;
    cached_end_ = it->end;
    cached_idx_ = it->idx;
    return it->idx;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  struct Segment {
    std::int64_t begin;
    std::int64_t end;
    std::size_t idx;
  };
  std::vector<Segment> segments_;
  std::size_t count_ = 0;
  std::int64_t cached_begin_ = 1;
  std::int64_t cached_end_ = 0;
  std::size_t cached_idx_ = 0;
};

}  // namespace lockdown::analysis
