#include "analysis/edu.hpp"

#include <vector>

#include "filter/plan.hpp"
#include "stats/ecdf.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

using flow::IpProtocol;

std::optional<EduClass> EduAnalyzer::classify_port(
    const flow::FlowRecord& r) const noexcept {
  const flow::PortKey p = r.service_port();
  const std::uint32_t service =
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p.proto)) << 16) |
      p.port;
  return classify_cols(service, view_.src_as(r).value(), view_.dst_as(r).value());
}

std::optional<EduClass> EduAnalyzer::classify_cols(
    std::uint32_t service, std::uint32_t src, std::uint32_t dst) const noexcept {
  const auto proto = static_cast<IpProtocol>(service >> 16);
  // VPN protocols first (no ports).
  if (proto == IpProtocol::kGre || proto == IpProtocol::kEsp) {
    return EduClass::kVpn;
  }
  if (proto != IpProtocol::kTcp && proto != IpProtocol::kUdp) {
    return std::nullopt;
  }

  // Spotify is also identified by AS 8403 (Appendix B).
  if (src == 8403 || dst == 8403) {
    return EduClass::kSpotify;
  }

  const auto port = static_cast<std::uint16_t>(service & 0xffff);
  const bool tcp = proto == IpProtocol::kTcp;
  const bool udp = proto == IpProtocol::kUdp;

  switch (port) {
    case 443:
      if (udp) return EduClass::kQuic;
      [[fallthrough]];
    case 80:
    case 8000:
    case 8080:
      if (tcp) {
        const bool hg =
            hypergiants_.contains(src) || hypergiants_.contains(dst);
        return hg ? EduClass::kHypergiantWeb : EduClass::kWeb;
      }
      return std::nullopt;
    case 5223:
    case 5228:
      return tcp ? std::optional(EduClass::kPushNotifications) : std::nullopt;
    case 25:
    case 110:
    case 143:
    case 465:
    case 587:
    case 993:
    case 995:
      return tcp ? std::optional(EduClass::kEmail) : std::nullopt;
    case 500:
      return udp ? std::optional(EduClass::kVpn) : std::nullopt;
    case 1194:
      return EduClass::kVpn;  // TCP and UDP (Appendix B)
    case 4500:
      return udp ? std::optional(EduClass::kVpn) : std::nullopt;
    case 22:
      return tcp ? std::optional(EduClass::kSsh) : std::nullopt;
    case 1494:
    case 5938:
      return EduClass::kRemoteDesktop;  // Citrix / TeamViewer, TCP+UDP
    case 3389:
      return tcp ? std::optional(EduClass::kRemoteDesktop) : std::nullopt;
    case 4070:
      return tcp ? std::optional(EduClass::kSpotify) : std::nullopt;
    default:
      return std::nullopt;
  }
}

Direction EduAnalyzer::direction_of(const flow::FlowRecord& r,
                                    bool classified) const noexcept {
  // A connection is oriented by its service side; without a recognizable
  // service the paper could not orient 39% of flows.
  if (!classified) return Direction::kUndetermined;
  const bool dst_inside = universities_.contains(view_.dst_as(r));
  const bool src_inside = universities_.contains(view_.src_as(r));
  if (dst_inside && !src_inside) return Direction::kIncoming;
  if (src_inside && !dst_inside) return Direction::kOutgoing;
  return Direction::kUndetermined;
}

void EduAnalyzer::add(const flow::FlowRecord& r) {
  const bool dst_inside = universities_.contains(view_.dst_as(r));
  const bool src_inside = universities_.contains(view_.src_as(r));
  const double bytes = util::counter_to_double(r.bytes);

  // Byte-level directionality (Fig 11): every flow crossing the border is
  // either entering or leaving.
  if (dst_inside && !src_inside) {
    volume_in_.add(r.first, bytes);
  } else if (src_inside && !dst_inside) {
    volume_out_.add(r.first, bytes);
  }

  // Connection counting: request-direction flows only. Clients use
  // ephemeral ports (> service port); portless protocols count as requests
  // towards the ESP/GRE terminator.
  const bool portless =
      r.protocol == IpProtocol::kGre || r.protocol == IpProtocol::kEsp;
  const bool is_request = portless || r.dst_port < r.src_port;
  if (!is_request) return;

  const auto cls = classify_port(r);
  const Direction dir = direction_of(r, cls.has_value());
  const std::int64_t day = r.first.floor_day().seconds();

  connections_total_[day] += 1.0;
  connections_by_dir_[dir][day] += 1.0;
  if (dir == Direction::kUndetermined) {
    undetermined_ += 1.0;
  } else {
    determined_ += 1.0;
  }
  if (cls) {
    connections_[{*cls, dir}][day] += 1.0;
    // Hypergiant web also counts as plain web (it *is* web traffic).
    if (*cls == EduClass::kHypergiantWeb) {
      connections_[{EduClass::kWeb, dir}][day] += 1.0;
    }
  }
}

void EduAnalyzer::add_batch(std::span<const flow::FlowRecord> records,
                            const filter::FlowColumns& cols) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    const flow::FlowRecord& r = records[i];
    const std::uint32_t src = cols.src_as[i];
    const std::uint32_t dst = cols.dst_as[i];
    const bool dst_inside = universities_.contains(dst);
    const bool src_inside = universities_.contains(src);
    const double bytes = util::counter_to_double(r.bytes);

    if (dst_inside && !src_inside) {
      volume_in_.add(r.first, bytes);
    } else if (src_inside && !dst_inside) {
      volume_out_.add(r.first, bytes);
    }

    const bool portless =
        r.protocol == IpProtocol::kGre || r.protocol == IpProtocol::kEsp;
    const bool is_request = portless || r.dst_port < r.src_port;
    if (!is_request) continue;

    const auto cls = classify_cols(cols.service[i], src, dst);
    Direction dir = Direction::kUndetermined;
    if (cls.has_value()) {
      if (dst_inside && !src_inside) {
        dir = Direction::kIncoming;
      } else if (src_inside && !dst_inside) {
        dir = Direction::kOutgoing;
      }
    }
    const std::int64_t day = day_cache_.at(r.first).day_begin;

    connections_total_[day] += 1.0;
    connections_by_dir_[dir][day] += 1.0;
    if (dir == Direction::kUndetermined) {
      undetermined_ += 1.0;
    } else {
      determined_ += 1.0;
    }
    if (cls) {
      connections_[{*cls, dir}][day] += 1.0;
      if (*cls == EduClass::kHypergiantWeb) {
        connections_[{EduClass::kWeb, dir}][day] += 1.0;
      }
    }
  }
}

void EduAnalyzer::merge(const EduAnalyzer& other) {
  volume_in_.merge(other.volume_in_);
  volume_out_.merge(other.volume_out_);
  for (const auto& [key, daily] : other.connections_) {
    auto& mine = connections_[key];
    for (const auto& [day, count] : daily) mine[day] += count;
  }
  for (const auto& [dir, daily] : other.connections_by_dir_) {
    auto& mine = connections_by_dir_[dir];
    for (const auto& [day, count] : daily) mine[day] += count;
  }
  for (const auto& [day, count] : other.connections_total_) {
    connections_total_[day] += count;
  }
  undetermined_ += other.undetermined_;
  determined_ += other.determined_;
}

double EduAnalyzer::daily_volume(net::Date d) const {
  const net::Timestamp t = net::Timestamp::from_date(d);
  return volume_in_.at(t) + volume_out_.at(t);
}

double EduAnalyzer::in_out_ratio(net::Date d) const {
  const net::Timestamp t = net::Timestamp::from_date(d);
  const double out = volume_out_.at(t);
  return out > 0.0 ? volume_in_.at(t) / out : 0.0;
}

std::vector<std::pair<net::Date, double>> EduAnalyzer::daily_connections(
    EduClass cls, Direction dir) const {
  std::vector<std::pair<net::Date, double>> out;
  const auto it = connections_.find({cls, dir});
  if (it == connections_.end()) return out;
  for (const auto& [day, count] : it->second) {
    out.emplace_back(net::Timestamp(day).date(), count);
  }
  return out;
}

std::vector<std::pair<net::Date, double>> EduAnalyzer::daily_connections(
    Direction dir) const {
  std::vector<std::pair<net::Date, double>> out;
  const auto it = connections_by_dir_.find(dir);
  if (it == connections_by_dir_.end()) return out;
  for (const auto& [day, count] : it->second) {
    out.emplace_back(net::Timestamp(day).date(), count);
  }
  return out;
}

double EduAnalyzer::median_of_range(const std::map<std::int64_t, double>& daily,
                                    net::TimeRange range) {
  std::vector<double> values;
  for (auto it = daily.lower_bound(range.begin.seconds());
       it != daily.end() && it->first < range.end.seconds(); ++it) {
    values.push_back(it->second);
  }
  return stats::median(std::move(values));
}

double EduAnalyzer::median_growth(EduClass cls, Direction dir,
                                  net::TimeRange before,
                                  net::TimeRange after) const {
  const auto it = connections_.find({cls, dir});
  if (it == connections_.end()) return 0.0;
  const double b = median_of_range(it->second, before);
  return b > 0.0 ? median_of_range(it->second, after) / b : 0.0;
}

double EduAnalyzer::median_growth(Direction dir, net::TimeRange before,
                                  net::TimeRange after) const {
  const auto it = connections_by_dir_.find(dir);
  if (it == connections_by_dir_.end()) return 0.0;
  const double b = median_of_range(it->second, before);
  return b > 0.0 ? median_of_range(it->second, after) / b : 0.0;
}

double EduAnalyzer::median_growth_total(net::TimeRange before,
                                        net::TimeRange after) const {
  const double b = median_of_range(connections_total_, before);
  return b > 0.0 ? median_of_range(connections_total_, after) / b : 0.0;
}

double EduAnalyzer::undetermined_fraction() const noexcept {
  const double total = undetermined_ + determined_;
  return total > 0.0 ? undetermined_ / total : 0.0;
}

}  // namespace lockdown::analysis
