// §7 / Fig 11-12: the educational metropolitan network.
//
//  * Volume analysis: daily totals for three key weeks (base, transition,
//    online-lecturing), Fig 11a.
//  * Directionality: ingress (into the EDU network) vs egress bytes per
//    day, Fig 11b's in/out ratio.
//  * Connection-level analysis: daily connection counts per (traffic
//    class, direction), classes per Appendix B, growth relative to a
//    pre-closure baseline, Fig 12 and the §7 median-growth numbers.
//
// A "connection" is a request-direction flow: the flow whose destination
// port is the service port (dst_port < src_port; clients use ephemeral
// ports). Direction follows the paper: a connection towards a service
// hosted inside the EDU network is incoming; one from inside to an outside
// service is outgoing; anything whose service port matches no known class
// and cannot be oriented is undetermined (39% of flows in the paper).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/as_view.hpp"
#include "analysis/day_cache.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

enum class EduClass : std::uint8_t {
  kWeb,
  kQuic,
  kPushNotifications,
  kEmail,
  kVpn,
  kSsh,
  kRemoteDesktop,
  kSpotify,
  kHypergiantWeb,  ///< web with a hypergiant on the far side
};

[[nodiscard]] constexpr const char* to_string(EduClass c) noexcept {
  switch (c) {
    case EduClass::kWeb: return "Web";
    case EduClass::kQuic: return "QUIC";
    case EduClass::kPushNotifications: return "Push notifications";
    case EduClass::kEmail: return "Email";
    case EduClass::kVpn: return "VPN";
    case EduClass::kSsh: return "SSH";
    case EduClass::kRemoteDesktop: return "Remote desktop";
    case EduClass::kSpotify: return "Spotify";
    case EduClass::kHypergiantWeb: return "Hypergiants (Web)";
  }
  return "?";
}

enum class Direction : std::uint8_t { kIncoming, kOutgoing, kUndetermined };

[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kIncoming: return "In";
    case Direction::kOutgoing: return "Out";
    case Direction::kUndetermined: return "Undetermined";
  }
  return "?";
}

class EduAnalyzer {
 public:
  /// `universities`: the member institutions (the network's inside).
  /// `hypergiants`: Appendix A list, for the hypergiant-web class.
  EduAnalyzer(const AsView& view, AsnSet universities, AsnSet hypergiants)
      : view_(view), universities_(std::move(universities)),
        hypergiants_(std::move(hypergiants)), volume_in_(stats::Bucket::kDay),
        volume_out_(stats::Bucket::kDay) {}

  /// Appendix B port classification (port/protocol only; Spotify also by
  /// AS 8403).
  [[nodiscard]] std::optional<EduClass> classify_port(
      const flow::FlowRecord& r) const noexcept;

  void add(const flow::FlowRecord& r);

  /// Columnar batch path. The per-record add() resolves endpoint ASes up
  /// to six times per record (direction twice, Spotify AS, hypergiant-web
  /// checks); here every AS consultation reads the batch's pre-resolved
  /// columns. Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling analyzer (same university/hypergiant lists) into this
  /// one; counts and exact-integer byte bins merge order-independently.
  void merge(const EduAnalyzer& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  // --- Fig 11a: volume ----------------------------------------------------
  [[nodiscard]] const stats::TimeSeries& ingress_volume() const noexcept {
    return volume_in_;
  }
  [[nodiscard]] const stats::TimeSeries& egress_volume() const noexcept {
    return volume_out_;
  }
  /// Total (in+out) daily volume.
  [[nodiscard]] double daily_volume(net::Date d) const;
  /// Fig 11b: ingress/egress ratio for a day (0 if egress is 0).
  [[nodiscard]] double in_out_ratio(net::Date d) const;

  // --- Fig 12 / §7: connections -------------------------------------------
  struct ClassKey {
    EduClass cls;
    Direction dir;
    bool operator<(const ClassKey& o) const noexcept {
      return cls != o.cls ? cls < o.cls : dir < o.dir;
    }
  };

  /// Daily connection counts of one (class, direction).
  [[nodiscard]] std::vector<std::pair<net::Date, double>> daily_connections(
      EduClass cls, Direction dir) const;

  /// Daily totals by direction (incoming / outgoing / undetermined).
  [[nodiscard]] std::vector<std::pair<net::Date, double>> daily_connections(
      Direction dir) const;

  /// Ratio of median daily connections in `after` vs `before` for one
  /// (class, direction) -- the §7 growth numbers (web 1.7x, VPN 4.8x, ...).
  [[nodiscard]] double median_growth(EduClass cls, Direction dir,
                                     net::TimeRange before,
                                     net::TimeRange after) const;
  [[nodiscard]] double median_growth(Direction dir, net::TimeRange before,
                                     net::TimeRange after) const;
  /// All connections regardless of direction.
  [[nodiscard]] double median_growth_total(net::TimeRange before,
                                           net::TimeRange after) const;

  /// Fraction of connection flows with undetermined direction.
  [[nodiscard]] double undetermined_fraction() const noexcept;

 private:
  [[nodiscard]] Direction direction_of(const flow::FlowRecord& r,
                                       bool classified) const noexcept;
  /// classify_port over pre-resolved columns: `service` is the FlowColumns
  /// (proto << 16 | port) key, `src`/`dst` the resolved endpoint ASes.
  [[nodiscard]] std::optional<EduClass> classify_cols(
      std::uint32_t service, std::uint32_t src,
      std::uint32_t dst) const noexcept;
  [[nodiscard]] static double median_of_range(
      const std::map<std::int64_t, double>& daily, net::TimeRange range);

  const AsView& view_;
  AsnSet universities_;
  AsnSet hypergiants_;
  DayFlagsCache day_cache_;
  stats::TimeSeries volume_in_;
  stats::TimeSeries volume_out_;
  std::map<ClassKey, std::map<std::int64_t, double>> connections_;
  std::map<Direction, std::map<std::int64_t, double>> connections_by_dir_;
  std::map<std::int64_t, double> connections_total_;
  double undetermined_ = 0.0;
  double determined_ = 0.0;
};

}  // namespace lockdown::analysis
