#include "analysis/export.hpp"

#include <cstdio>
#include <memory>

#include "util/strings.hpp"

namespace lockdown::analysis {

util::Table timeseries_table(const stats::TimeSeries& series,
                             const std::string& value_name) {
  util::Table table({"timestamp", value_name});
  for (const auto& [ts, v] : series.points()) {
    table.add_row({ts.to_string(), util::format_fixed(v, 6)});
  }
  return table;
}

util::Table weekly_table(const std::vector<std::pair<unsigned, double>>& weekly,
                         const std::string& value_name) {
  util::Table table({"week", value_name});
  for (const auto& [week, value] : weekly) {
    table.add_row({std::to_string(week), util::format_fixed(value, 6)});
  }
  return table;
}

util::Table heatmap_table(const ClassHeatmap& heatmap, AppClass cls,
                          std::size_t stage_weeks) {
  std::vector<std::string> header = {"hour_slot", "base_normalized"};
  for (std::size_t w = 1; w <= stage_weeks; ++w) {
    header.push_back("diff_stage" + std::to_string(w) + "_pct");
  }
  util::Table table(std::move(header));

  const auto base = heatmap.base_normalized(cls);
  std::vector<std::vector<double>> diffs;
  for (std::size_t w = 1; w <= stage_weeks; ++w) {
    diffs.push_back(heatmap.diff_percent(cls, w));
  }
  auto cell = [](double v) {
    return v == ClassHeatmap::kMaskedHour ? std::string()
                                          : util::format_fixed(v, 3);
  };
  for (std::size_t slot = 0; slot < base.size(); ++slot) {
    std::vector<std::string> row = {std::to_string(slot), cell(base[slot])};
    for (const auto& d : diffs) row.push_back(cell(d[slot]));
    table.add_row(std::move(row));
  }
  return table;
}

util::Table vpn_profile_table(const std::vector<VpnAnalyzer::Profile>& profiles) {
  util::Table table({"method", "week", "hour", "workday", "weekend"});
  for (const auto& p : profiles) {
    const char* method = p.method == VpnMethod::kPort ? "port" : "domain";
    for (unsigned h = 0; h < 24; ++h) {
      table.add_row({method, std::to_string(p.week_index), std::to_string(h),
                     util::format_fixed(p.workday[h], 6),
                     util::format_fixed(p.weekend[h], 6)});
    }
  }
  return table;
}

bool write_csv(const util::Table& table, const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  const std::string csv = table.to_csv();
  return std::fwrite(csv.data(), 1, csv.size(), f.get()) == csv.size();
}

}  // namespace lockdown::analysis
