// CSV export of analysis results: the bridge from this library to whatever
// plotting stack regenerates the paper's figures graphically. Writers are
// pure (TimeSeries/heatmap in, util::Table out) so they are testable
// without touching the filesystem; `write_csv` is the thin I/O shim.
#pragma once

#include <string>

#include "analysis/app_filter.hpp"
#include "analysis/vpn.hpp"
#include "stats/timeseries.hpp"
#include "util/table.hpp"

namespace lockdown::analysis {

/// (timestamp, value) rows of a TimeSeries; timestamps in ISO form.
[[nodiscard]] util::Table timeseries_table(const stats::TimeSeries& series,
                                           const std::string& value_name = "value");

/// Weekly normalized series (Fig 1 style): week, value.
[[nodiscard]] util::Table weekly_table(
    const std::vector<std::pair<unsigned, double>>& weekly,
    const std::string& value_name = "normalized");

/// Fig 9 heatmap for one class: hour-slot, base, diff per stage week.
/// Masked early-morning hours are emitted as empty fields.
[[nodiscard]] util::Table heatmap_table(const ClassHeatmap& heatmap,
                                        AppClass cls, std::size_t stage_weeks);

/// Fig 10 profiles: hour, workday/weekend value per (method, week).
[[nodiscard]] util::Table vpn_profile_table(
    const std::vector<VpnAnalyzer::Profile>& profiles);

/// Write any table as CSV. Returns false on I/O error.
[[nodiscard]] bool write_csv(const util::Table& table, const std::string& path);

}  // namespace lockdown::analysis
