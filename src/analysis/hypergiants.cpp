#include "analysis/hypergiants.hpp"

#include <stdexcept>

#include "filter/plan.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

void HypergiantAnalyzer::build_fast_lookup() {
  std::size_t slots = 16;
  while (slots < hypergiants_.size() * 4) slots *= 2;
  hg_table_.assign(slots, 0);
  const std::size_t mask = slots - 1;
  for (const std::uint32_t asn : hypergiants_.values()) {
    if (asn == 0) {
      zero_is_member_ = true;
      continue;
    }
    std::size_t slot = (asn * 0x9e3779b1u) & mask;
    while (hg_table_[slot] != 0) slot = (slot + 1) & mask;
    hg_table_[slot] = asn;
  }
}

void HypergiantAnalyzer::add(const flow::FlowRecord& r) {
  // Attribute to the serving side: whichever endpoint is a hypergiant; for
  // hypergiant-to-hypergiant (rare) the source wins; otherwise the source.
  const net::Asn src = view_.src_as(r);
  const net::Asn dst = view_.dst_as(r);
  net::Asn server = src;
  if (hypergiants_.contains(src)) {
    server = src;
  } else if (hypergiants_.contains(dst)) {
    server = dst;
  }
  const bool is_hg = hypergiants_.contains(server);

  const double bytes = util::counter_to_double(r.bytes);
  total_bytes_ += bytes;
  if (is_hg) {
    hg_bytes_ += bytes;
    per_hg_bytes_[server] += bytes;
  }

  const unsigned hour = r.first.hour_of_day();
  // Fig 4 slices cover 09:00-24:00 only; night hours are not plotted.
  if (hour < 9) return;

  const bool weekend = net::is_weekend(r.first.weekday());
  const bool evening = hour >= 17;
  const DaySlice slice =
      weekend ? (evening ? DaySlice::kWeekendEvening : DaySlice::kWeekendWork)
              : (evening ? DaySlice::kWorkdayEvening : DaySlice::kWorkdayWork);
  const Key key{r.first.date().paper_week(), slice};
  bytes_[key][is_hg ? 0 : 1] += bytes;
}

void HypergiantAnalyzer::add_batch(std::span<const flow::FlowRecord> records,
                                   const filter::FlowColumns& cols) {
  // Streams are time-sorted, so the Fig 4 (paper week, slice) key is
  // constant over long runs: one run spans a day's night (<9h), work
  // (9-17h) or evening (17-24h) block. Slice sums are flushed once per run
  // and per-hypergiant sums once per batch; all values are exact integers
  // (counter_to_double), so the grouped flush is bit-identical to
  // per-record add().
  server_accum_.clear();
  const std::size_t n = records.size();
  std::size_t i = 0;
  while (i < n) {
    const DayFlagsCache::Flags& day = day_cache_.at(records[i].first);
    const unsigned hour = DayFlagsCache::hour_of(day, records[i].first);
    const unsigned block_begin = hour < 9 ? 0 : hour < 17 ? 9 : 17;
    const unsigned block_end = hour < 9 ? 9 : hour < 17 ? 17 : 24;
    const std::int64_t run_begin =
        day.day_begin +
        static_cast<std::int64_t>(block_begin) * net::kSecondsPerHour;
    const std::int64_t run_end =
        day.day_begin +
        static_cast<std::int64_t>(block_end) * net::kSecondsPerHour;
    const bool plotted = block_begin != 0;  // Fig 4 covers 09:00-24:00 only
    const bool weekend = day.weekend;
    const unsigned week = day.paper_week;

    double hg_sum = 0.0;
    double other_sum = 0.0;
    for (; i < n; ++i) {
      const std::int64_t s = records[i].first.seconds();
      if (s < run_begin || s >= run_end) break;
      const std::uint32_t src = cols.src_as[i];
      const std::uint32_t dst = cols.dst_as[i];
      bool is_hg = true;
      std::uint32_t server = src;
      if (is_hypergiant(src)) {
        server = src;
      } else if (is_hypergiant(dst)) {
        server = dst;
      } else {
        is_hg = false;
      }

      const double bytes = util::counter_to_double(records[i].bytes);
      total_bytes_ += bytes;
      if (is_hg) {
        hg_bytes_ += bytes;
        server_accum_.add(server, bytes);
        hg_sum += bytes;
      } else {
        other_sum += bytes;
      }
    }

    if (plotted) {
      const bool evening = block_begin >= 17;
      const DaySlice slice =
          weekend
              ? (evening ? DaySlice::kWeekendEvening : DaySlice::kWeekendWork)
              : (evening ? DaySlice::kWorkdayEvening : DaySlice::kWorkdayWork);
      auto& cell = bytes_[Key{week, slice}];
      cell[0] += hg_sum;
      cell[1] += other_sum;
    }
  }
  for (const KeyAccumulator::Entry& e : server_accum_.entries()) {
    per_hg_bytes_[net::Asn(e.key)] += e.sum;
  }
}

void HypergiantAnalyzer::merge(const HypergiantAnalyzer& other) {
  for (const auto& [key, v] : other.bytes_) {
    auto& mine = bytes_[key];
    mine[0] += v[0];
    mine[1] += v[1];
  }
  for (const auto& [as, v] : other.per_hg_bytes_) per_hg_bytes_[as] += v;
  total_bytes_ += other.total_bytes_;
  hg_bytes_ += other.hg_bytes_;
}

std::vector<HypergiantAnalyzer::WeeklySlice> HypergiantAnalyzer::weekly_series(
    unsigned baseline_week) const {
  // Baseline per slice.
  std::array<double, 4> base_hg{}, base_other{};
  bool have_base = false;
  for (const auto& [key, v] : bytes_) {
    if (key.week == baseline_week) {
      base_hg[static_cast<std::size_t>(key.slice)] = v[0];
      base_other[static_cast<std::size_t>(key.slice)] = v[1];
      have_base = true;
    }
  }
  if (!have_base) {
    throw std::invalid_argument("HypergiantAnalyzer: baseline week has no data");
  }

  std::vector<WeeklySlice> out;
  for (const auto& [key, v] : bytes_) {
    const auto s = static_cast<std::size_t>(key.slice);
    if (base_hg[s] <= 0.0 || base_other[s] <= 0.0) continue;
    out.push_back(WeeklySlice{key.week, key.slice, v[0] / base_hg[s],
                              v[1] / base_other[s]});
  }
  return out;
}

double HypergiantAnalyzer::hypergiant_share() const noexcept {
  return total_bytes_ > 0.0 ? hg_bytes_ / total_bytes_ : 0.0;
}

}  // namespace lockdown::analysis
