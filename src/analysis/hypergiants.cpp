#include "analysis/hypergiants.hpp"

#include <stdexcept>

namespace lockdown::analysis {

void HypergiantAnalyzer::add(const flow::FlowRecord& r) {
  // Attribute to the serving side: whichever endpoint is a hypergiant; for
  // hypergiant-to-hypergiant (rare) the source wins; otherwise the source.
  const net::Asn src = view_.src_as(r);
  const net::Asn dst = view_.dst_as(r);
  net::Asn server = src;
  if (hypergiants_.contains(src)) {
    server = src;
  } else if (hypergiants_.contains(dst)) {
    server = dst;
  }
  const bool is_hg = hypergiants_.contains(server);

  const auto bytes = static_cast<double>(r.bytes);
  total_bytes_ += bytes;
  if (is_hg) {
    hg_bytes_ += bytes;
    per_hg_bytes_[server] += bytes;
  }

  const unsigned hour = r.first.hour_of_day();
  // Fig 4 slices cover 09:00-24:00 only; night hours are not plotted.
  if (hour < 9) return;

  const bool weekend = net::is_weekend(r.first.weekday());
  const bool evening = hour >= 17;
  const DaySlice slice =
      weekend ? (evening ? DaySlice::kWeekendEvening : DaySlice::kWeekendWork)
              : (evening ? DaySlice::kWorkdayEvening : DaySlice::kWorkdayWork);
  const Key key{r.first.date().paper_week(), slice};
  bytes_[key][is_hg ? 0 : 1] += bytes;
}

std::vector<HypergiantAnalyzer::WeeklySlice> HypergiantAnalyzer::weekly_series(
    unsigned baseline_week) const {
  // Baseline per slice.
  std::array<double, 4> base_hg{}, base_other{};
  bool have_base = false;
  for (const auto& [key, v] : bytes_) {
    if (key.week == baseline_week) {
      base_hg[static_cast<std::size_t>(key.slice)] = v[0];
      base_other[static_cast<std::size_t>(key.slice)] = v[1];
      have_base = true;
    }
  }
  if (!have_base) {
    throw std::invalid_argument("HypergiantAnalyzer: baseline week has no data");
  }

  std::vector<WeeklySlice> out;
  for (const auto& [key, v] : bytes_) {
    const auto s = static_cast<std::size_t>(key.slice);
    if (base_hg[s] <= 0.0 || base_other[s] <= 0.0) continue;
    out.push_back(WeeklySlice{key.week, key.slice, v[0] / base_hg[s],
                              v[1] / base_other[s]});
  }
  return out;
}

double HypergiantAnalyzer::hypergiant_share() const noexcept {
  return total_bytes_ > 0.0 ? hg_bytes_ / total_bytes_ : 0.0;
}

}  // namespace lockdown::analysis
