// Hypergiant vs other-AS decomposition (§3.2, Fig 4, Table 2).
//
// Fig 4 plots, per calendar week, the traffic of each AS group in four
// time-of-day/day-type slices (workday/weekend x 9:00-16:59 / 17:00-24:00),
// normalized by that slice's value in a baseline week. Table 2's headline
// is the hypergiants' ~75% share of traffic delivered to the ISP's users.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "analysis/as_view.hpp"
#include "analysis/day_cache.hpp"
#include "analysis/run_accum.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

enum class DaySlice : std::uint8_t {
  kWorkdayWork = 0,     // workday 09:00-16:59
  kWorkdayEvening = 1,  // workday 17:00-24:00
  kWeekendWork = 2,     // weekend 09:00-16:59
  kWeekendEvening = 3,  // weekend 17:00-24:00
};

[[nodiscard]] constexpr const char* to_string(DaySlice s) noexcept {
  switch (s) {
    case DaySlice::kWorkdayWork: return "Workday 09:00-16:59";
    case DaySlice::kWorkdayEvening: return "Workday 17:00-24:00";
    case DaySlice::kWeekendWork: return "Weekend 09:00-16:59";
    case DaySlice::kWeekendEvening: return "Weekend 17:00-24:00";
  }
  return "?";
}

class HypergiantAnalyzer {
 public:
  HypergiantAnalyzer(const AsView& view, AsnSet hypergiants)
      : view_(view), hypergiants_(std::move(hypergiants)) {
    build_fast_lookup();
  }

  /// Feed a flow: attributes its bytes to the serving AS group (the
  /// non-eyeball endpoint; for flows between two non-hypergiants the
  /// source side is used -- deliveries are server-sourced in NetFlow).
  void add(const flow::FlowRecord& r);

  /// Columnar batch path: endpoint ASes come pre-resolved from `cols`
  /// (built once per batch for all consumers) instead of two trie lookups
  /// per record. Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling analyzer (same hypergiant list) into this one;
  /// exact-integer bins make the merge order-independent.
  void merge(const HypergiantAnalyzer& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Fig 4 series: per paper week, per slice, traffic normalized by
  /// `baseline_week`. Missing slices yield no entry.
  struct WeeklySlice {
    unsigned week = 0;
    DaySlice slice = DaySlice::kWorkdayWork;
    double hypergiant = 0.0;  ///< normalized
    double other = 0.0;       ///< normalized
  };
  [[nodiscard]] std::vector<WeeklySlice> weekly_series(
      unsigned baseline_week = 3) const;

  /// Table 2 headline: fraction of total bytes served by hypergiants.
  [[nodiscard]] double hypergiant_share() const noexcept;

  /// Per-hypergiant byte totals (Table 2 rows).
  [[nodiscard]] std::map<net::Asn, double> per_hypergiant_bytes() const {
    return per_hg_bytes_;
  }

 private:
  struct Key {
    unsigned week;
    DaySlice slice;
    bool operator<(const Key& o) const noexcept {
      return week != o.week ? week < o.week : slice < o.slice;
    }
  };

  void build_fast_lookup();

  /// Flat open-address membership probe over hg_table_ -- same answer as
  /// hypergiants_.contains(), one load on most probes instead of a binary
  /// search. ASN 0 (unresolved endpoint) is the empty-slot sentinel and is
  /// never a hypergiant.
  [[nodiscard]] bool is_hypergiant(std::uint32_t asn) const noexcept {
    if (asn == 0) return zero_is_member_;
    const std::size_t mask = hg_table_.size() - 1;
    std::size_t slot = (asn * 0x9e3779b1u) & mask;
    while (true) {
      const std::uint32_t v = hg_table_[slot];
      if (v == asn) return true;
      if (v == 0) return false;
      slot = (slot + 1) & mask;
    }
  }

  const AsView& view_;
  AsnSet hypergiants_;
  DayFlagsCache day_cache_;
  /// Scratch for add_batch's per-batch per-hypergiant sums.
  KeyAccumulator server_accum_;
  /// Open-address table of hypergiant ASNs (power-of-two size, 0 = empty).
  std::vector<std::uint32_t> hg_table_;
  /// Degenerate case: ASN 0 listed as a member (0 doubles as the empty
  /// sentinel above, so it gets its own flag).
  bool zero_is_member_ = false;
  std::map<Key, std::array<double, 2>> bytes_;  // [hypergiant, other]
  std::map<net::Asn, double> per_hg_bytes_;
  double total_bytes_ = 0.0;
  double hg_bytes_ = 0.0;
};

}  // namespace lockdown::analysis
