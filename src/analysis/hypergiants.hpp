// Hypergiant vs other-AS decomposition (§3.2, Fig 4, Table 2).
//
// Fig 4 plots, per calendar week, the traffic of each AS group in four
// time-of-day/day-type slices (workday/weekend x 9:00-16:59 / 17:00-24:00),
// normalized by that slice's value in a baseline week. Table 2's headline
// is the hypergiants' ~75% share of traffic delivered to the ISP's users.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <vector>

#include "analysis/as_view.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"

namespace lockdown::analysis {

enum class DaySlice : std::uint8_t {
  kWorkdayWork = 0,     // workday 09:00-16:59
  kWorkdayEvening = 1,  // workday 17:00-24:00
  kWeekendWork = 2,     // weekend 09:00-16:59
  kWeekendEvening = 3,  // weekend 17:00-24:00
};

[[nodiscard]] constexpr const char* to_string(DaySlice s) noexcept {
  switch (s) {
    case DaySlice::kWorkdayWork: return "Workday 09:00-16:59";
    case DaySlice::kWorkdayEvening: return "Workday 17:00-24:00";
    case DaySlice::kWeekendWork: return "Weekend 09:00-16:59";
    case DaySlice::kWeekendEvening: return "Weekend 17:00-24:00";
  }
  return "?";
}

class HypergiantAnalyzer {
 public:
  HypergiantAnalyzer(const AsView& view, AsnSet hypergiants)
      : view_(view), hypergiants_(std::move(hypergiants)) {}

  /// Feed a flow: attributes its bytes to the serving AS group (the
  /// non-eyeball endpoint; for flows between two non-hypergiants the
  /// source side is used -- deliveries are server-sourced in NetFlow).
  void add(const flow::FlowRecord& r);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Fig 4 series: per paper week, per slice, traffic normalized by
  /// `baseline_week`. Missing slices yield no entry.
  struct WeeklySlice {
    unsigned week = 0;
    DaySlice slice = DaySlice::kWorkdayWork;
    double hypergiant = 0.0;  ///< normalized
    double other = 0.0;       ///< normalized
  };
  [[nodiscard]] std::vector<WeeklySlice> weekly_series(
      unsigned baseline_week = 3) const;

  /// Table 2 headline: fraction of total bytes served by hypergiants.
  [[nodiscard]] double hypergiant_share() const noexcept;

  /// Per-hypergiant byte totals (Table 2 rows).
  [[nodiscard]] std::map<net::Asn, double> per_hypergiant_bytes() const {
    return per_hg_bytes_;
  }

 private:
  struct Key {
    unsigned week;
    DaySlice slice;
    bool operator<(const Key& o) const noexcept {
      return week != o.week ? week < o.week : slice < o.slice;
    }
  };

  const AsView& view_;
  AsnSet hypergiants_;
  std::map<Key, std::array<double, 2>> bytes_;  // [hypergiant, other]
  std::map<net::Asn, double> per_hg_bytes_;
  double total_bytes_ = 0.0;
  double hg_bytes_ = 0.0;
};

}  // namespace lockdown::analysis
