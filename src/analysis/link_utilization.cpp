#include "analysis/link_utilization.hpp"

namespace lockdown::analysis {

UtilizationEcdfs LinkUtilizationAnalyzer::analyze(
    std::span<const synth::PortDayUtilization> day) {
  UtilizationEcdfs out;
  for (const synth::PortDayUtilization& p : day) {
    out.min_util.add(p.min_util);
    out.avg_util.add(p.avg_util);
    out.max_util.add(p.max_util);
  }
  return out;
}

std::vector<double> LinkUtilizationAnalyzer::utilization_grid() {
  std::vector<double> grid = {0.01};
  for (int pct = 10; pct <= 100; pct += 10) grid.push_back(pct / 100.0);
  return grid;
}

LinkUtilizationAnalyzer::Shift LinkUtilizationAnalyzer::median_shift(
    const UtilizationEcdfs& base, const UtilizationEcdfs& stage2) {
  Shift s;
  s.min_shift = stage2.min_util.quantile(0.5) - base.min_util.quantile(0.5);
  s.avg_shift = stage2.avg_util.quantile(0.5) - base.avg_util.quantile(0.5);
  s.max_shift = stage2.max_util.quantile(0.5) - base.max_util.quantile(0.5);
  return s;
}

}  // namespace lockdown::analysis
