#include "analysis/link_utilization.hpp"

namespace lockdown::analysis {

UtilizationEcdfs LinkUtilizationAnalyzer::analyze(
    std::span<const synth::PortDayUtilization> day) {
  // Columnar: gather each statistic into a contiguous column, then bulk-
  // append via Ecdf::add_batch (one dirty-flag flip per column instead of
  // one per sample).
  std::vector<double> mins, avgs, maxs;
  mins.reserve(day.size());
  avgs.reserve(day.size());
  maxs.reserve(day.size());
  for (const synth::PortDayUtilization& p : day) {
    mins.push_back(p.min_util);
    avgs.push_back(p.avg_util);
    maxs.push_back(p.max_util);
  }
  UtilizationEcdfs out;
  out.min_util.add_batch(mins);
  out.avg_util.add_batch(avgs);
  out.max_util.add_batch(maxs);
  return out;
}

std::vector<double> LinkUtilizationAnalyzer::utilization_grid() {
  std::vector<double> grid = {0.01};
  for (int pct = 10; pct <= 100; pct += 10) grid.push_back(pct / 100.0);
  return grid;
}

LinkUtilizationAnalyzer::Shift LinkUtilizationAnalyzer::median_shift(
    const UtilizationEcdfs& base, const UtilizationEcdfs& stage2) {
  Shift s;
  s.min_shift = stage2.min_util.quantile(0.5) - base.min_util.quantile(0.5);
  s.avg_shift = stage2.avg_util.quantile(0.5) - base.avg_util.quantile(0.5);
  s.max_shift = stage2.max_util.quantile(0.5) - base.max_util.quantile(0.5);
  return s;
}

}  // namespace lockdown::analysis
