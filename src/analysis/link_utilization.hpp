// §3.3 / Fig 5: ECDFs of IXP member port utilization (minimum, average,
// maximum per-minute usage over a day), compared between a base week
// workday and a stage-2 workday. Consumes per-port daily summaries (from
// synth::IxpMemberModel or any SNMP-style source).
#pragma once

#include <span>
#include <vector>

#include "stats/ecdf.hpp"
#include "synth/member_model.hpp"

namespace lockdown::analysis {

struct UtilizationEcdfs {
  stats::Ecdf min_util;
  stats::Ecdf avg_util;
  stats::Ecdf max_util;

  /// Fold another day-shard's ECDFs into this one; sample multisets union,
  /// so the result is independent of how ports were partitioned.
  void merge(const UtilizationEcdfs& other) {
    min_util.merge(other.min_util);
    avg_util.merge(other.avg_util);
    max_util.merge(other.max_util);
  }
};

class LinkUtilizationAnalyzer {
 public:
  /// Build the three ECDFs from one day's per-port summaries.
  [[nodiscard]] static UtilizationEcdfs analyze(
      std::span<const synth::PortDayUtilization> day);

  /// Fig 5's x-axis grid: utilization percentages 1,10,20,...,100.
  [[nodiscard]] static std::vector<double> utilization_grid();

  /// Median (P50) shift between two days, per statistic -- the quantitative
  /// summary of "all curves are shifted to the right".
  struct Shift {
    double min_shift = 0.0;
    double avg_shift = 0.0;
    double max_shift = 0.0;
  };
  [[nodiscard]] static Shift median_shift(const UtilizationEcdfs& base,
                                          const UtilizationEcdfs& stage2);
};

}  // namespace lockdown::analysis
