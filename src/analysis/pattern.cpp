#include "analysis/pattern.hpp"

#include <cmath>
#include <stdexcept>

namespace lockdown::analysis {

using net::Date;
using net::Timestamp;

namespace {

double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0 || nb <= 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

PatternClassifier::PatternClassifier(unsigned bin_hours)
    : bin_hours_(bin_hours),
      bins_(bin_hours != 0 && 24 % bin_hours == 0 ? 24 / bin_hours : 0) {
  if (bins_ == 0) {
    throw std::invalid_argument("PatternClassifier: bin_hours must divide 24");
  }
}

std::optional<std::vector<double>> PatternClassifier::day_shape(
    const stats::TimeSeries& hourly, Date day, double* volume_out) const {
  std::vector<double> shape(bins_, 0.0);
  double total = 0.0;
  const Timestamp day_start = Timestamp::from_date(day);
  for (unsigned h = 0; h < 24; ++h) {
    const double v = hourly.at(day_start.plus(h * net::kSecondsPerHour));
    shape[h / bin_hours_] += v;
    total += v;
  }
  if (total <= 0.0) return std::nullopt;
  for (double& v : shape) v /= total;  // remove the volume scale
  if (volume_out != nullptr) *volume_out = total;
  return shape;
}

void PatternClassifier::train(const stats::TimeSeries& hourly,
                              net::TimeRange train_range) {
  std::vector<double> sum_workday(bins_, 0.0), sum_weekend(bins_, 0.0);
  std::size_t n_workday = 0, n_weekend = 0;

  for (Timestamp t = train_range.begin.floor_day(); t < train_range.end;
       t = t.plus(net::kSecondsPerDay)) {
    const Date day = t.date();
    const auto shape = day_shape(hourly, day, nullptr);
    if (!shape) continue;
    if (day.is_weekend_day()) {
      for (unsigned b = 0; b < bins_; ++b) sum_weekend[b] += (*shape)[b];
      ++n_weekend;
    } else {
      for (unsigned b = 0; b < bins_; ++b) sum_workday[b] += (*shape)[b];
      ++n_workday;
    }
  }
  if (n_workday == 0 || n_weekend == 0) {
    throw std::invalid_argument(
        "PatternClassifier::train: training range lacks workdays or weekends");
  }
  centroid_workday_.assign(bins_, 0.0);
  centroid_weekend_.assign(bins_, 0.0);
  for (unsigned b = 0; b < bins_; ++b) {
    centroid_workday_[b] = sum_workday[b] / static_cast<double>(n_workday);
    centroid_weekend_[b] = sum_weekend[b] / static_cast<double>(n_weekend);
  }
  trained_ = true;
}

std::vector<ClassifiedDay> PatternClassifier::classify(
    const stats::TimeSeries& hourly, net::TimeRange range) const {
  if (!trained_) {
    throw std::logic_error("PatternClassifier::classify before train");
  }
  std::vector<ClassifiedDay> out;
  for (Timestamp t = range.begin.floor_day(); t < range.end;
       t = t.plus(net::kSecondsPerDay)) {
    const Date day = t.date();
    double volume = 0.0;
    const auto shape = day_shape(hourly, day, &volume);
    if (!shape) continue;

    ClassifiedDay cd;
    cd.date = day;
    cd.actual_weekend = day.is_weekend_day();
    cd.similarity_workday = cosine(*shape, centroid_workday_);
    cd.similarity_weekend = cosine(*shape, centroid_weekend_);
    cd.classified = cd.similarity_weekend >= cd.similarity_workday
                        ? DayPattern::kWeekendLike
                        : DayPattern::kWorkdayLike;
    cd.daily_volume = volume;
    out.push_back(cd);
  }
  return out;
}

}  // namespace lockdown::analysis
