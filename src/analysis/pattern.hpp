// Workday-vs-weekend pattern classification (Fig 2b/2c). The paper's
// method, §1: "For our classification, we use baseline data from Feb 2020
// at the aggregation level of 6 hours. Then we apply this classification to
// all days."
//
// Implementation: from a February training window, build the average
// 6-hour-bin day shape of actual workdays and actual weekends (each day's
// bins normalized to sum 1, removing the volume scale). A day is then
// classified by which centroid its own normalized shape is closer to
// (cosine similarity). The headline result is that from mid-March onward
// almost every day classifies as weekend-like.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "net/civil_time.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::analysis {

enum class DayPattern : std::uint8_t { kWorkdayLike, kWeekendLike };

[[nodiscard]] constexpr const char* to_string(DayPattern p) noexcept {
  return p == DayPattern::kWorkdayLike ? "workday-like" : "weekend-like";
}

struct ClassifiedDay {
  net::Date date;
  DayPattern classified = DayPattern::kWorkdayLike;
  bool actual_weekend = false;  ///< true for Sat/Sun (not holidays)
  double similarity_workday = 0.0;
  double similarity_weekend = 0.0;
  double daily_volume = 0.0;

  /// Blue bars in Fig 2b/2c: classification matches the actual day type.
  [[nodiscard]] bool agrees() const noexcept {
    return (classified == DayPattern::kWeekendLike) == actual_weekend;
  }
};

class PatternClassifier {
 public:
  /// Number of bins per day. The paper uses 6-hour aggregation (4 bins);
  /// the ablation bench sweeps this.
  explicit PatternClassifier(unsigned bin_hours = 6);

  /// Train centroids from hourly `series` over [train.begin, train.end).
  /// Days with zero volume are skipped. Throws if either class ends up
  /// with no training days.
  void train(const stats::TimeSeries& hourly, net::TimeRange train_range);

  /// Classify every day with data in the range.
  [[nodiscard]] std::vector<ClassifiedDay> classify(
      const stats::TimeSeries& hourly, net::TimeRange range) const;

  [[nodiscard]] const std::vector<double>& workday_centroid() const noexcept {
    return centroid_workday_;
  }
  [[nodiscard]] const std::vector<double>& weekend_centroid() const noexcept {
    return centroid_weekend_;
  }
  [[nodiscard]] unsigned bin_hours() const noexcept { return bin_hours_; }

 private:
  [[nodiscard]] std::optional<std::vector<double>> day_shape(
      const stats::TimeSeries& hourly, net::Date day, double* volume_out) const;

  unsigned bin_hours_;
  unsigned bins_;
  std::vector<double> centroid_workday_;
  std::vector<double> centroid_weekend_;
  bool trained_ = false;
};

}  // namespace lockdown::analysis
