#include "analysis/peaks.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lockdown::analysis {

namespace {

double growth_pct(double base, double after) noexcept {
  return base > 0.0 ? 100.0 * (after - base) / base : 0.0;
}

}  // namespace

double PeakShift::peak_growth_pct() const noexcept {
  return growth_pct(base.peak, after.peak);
}
double PeakShift::p95_growth_pct() const noexcept {
  return growth_pct(base.p95, after.p95);
}
double PeakShift::mean_growth_pct() const noexcept {
  return growth_pct(base.mean, after.mean);
}
double PeakShift::offpeak_growth_pct() const noexcept {
  return growth_pct(base.offpeak_mean, after.offpeak_mean);
}
double PeakShift::valley_growth_pct() const noexcept {
  return growth_pct(base.valley, after.valley);
}
double PeakShift::base_peak_to_mean() const noexcept {
  return base.mean > 0.0 ? base.peak / base.mean : 0.0;
}
double PeakShift::after_peak_to_mean() const noexcept {
  return after.mean > 0.0 ? after.peak / after.mean : 0.0;
}

WeekLoadProfile PeakAnalyzer::profile(const stats::TimeSeries& hourly,
                                      net::TimeRange week) {
  std::vector<double> values;
  for (const auto& [ts, v] : hourly.points_in(week)) values.push_back(v);
  if (values.empty()) {
    throw std::invalid_argument("PeakAnalyzer: no data in the requested week");
  }
  std::sort(values.begin(), values.end());

  const std::size_t n = values.size();
  auto mean_of = [&](std::size_t from, std::size_t to) {  // [from, to)
    double sum = 0.0;
    for (std::size_t i = from; i < to; ++i) sum += values[i];
    return sum / static_cast<double>(to - from);
  };

  WeekLoadProfile p;
  p.valley = values.front();
  p.peak = values.back();
  p.p95 = values[std::min(n - 1, static_cast<std::size_t>(0.95 * n))];
  p.mean = mean_of(0, n);
  p.busy_mean = mean_of(n - std::max<std::size_t>(1, n / 10), n);
  p.offpeak_mean = mean_of(0, std::max<std::size_t>(1, n / 4));
  return p;
}

PeakShift PeakAnalyzer::compare(const stats::TimeSeries& hourly,
                                net::TimeRange base_week,
                                net::TimeRange after_week) {
  return PeakShift{profile(hourly, base_week), profile(hourly, after_week)};
}

}  // namespace lockdown::analysis
