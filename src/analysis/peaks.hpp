// §9 (Discussion) quantified: "The effect of the pandemic fills the valleys
// during the working hours ... and has a moderate increase in the peak
// traffic that can be handled by well-provisioned networks."
//
// Traffic engineering provisions for the peak; this analyzer splits a
// week's hourly series into peak / busy / off-peak strata and compares two
// weeks stratum by stratum, so the "valley-filling" claim becomes a number:
// off-peak growth should exceed mean growth, which should exceed peak
// growth.
#pragma once

#include "net/civil_time.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::analysis {

struct WeekLoadProfile {
  double peak = 0.0;        ///< maximum hourly volume
  double p95 = 0.0;         ///< 95th-percentile hour (industry billing metric)
  double busy_mean = 0.0;   ///< mean of the busiest 10% of hours
  double mean = 0.0;        ///< mean over all hours
  double offpeak_mean = 0.0;///< mean of the quietest 25% of hours
  double valley = 0.0;      ///< minimum hourly volume
};

struct PeakShift {
  WeekLoadProfile base;
  WeekLoadProfile after;

  [[nodiscard]] double peak_growth_pct() const noexcept;
  [[nodiscard]] double p95_growth_pct() const noexcept;
  [[nodiscard]] double mean_growth_pct() const noexcept;
  [[nodiscard]] double offpeak_growth_pct() const noexcept;
  [[nodiscard]] double valley_growth_pct() const noexcept;

  /// The §9 claim in one bit: valleys grow faster than peaks.
  [[nodiscard]] bool valleys_fill_faster() const noexcept {
    return offpeak_growth_pct() > peak_growth_pct();
  }

  /// Peak-to-mean ratio ("burstiness") before and after; valley-filling
  /// flattens it.
  [[nodiscard]] double base_peak_to_mean() const noexcept;
  [[nodiscard]] double after_peak_to_mean() const noexcept;
};

class PeakAnalyzer {
 public:
  /// Stratified load profile of `week` from an hourly series. The week
  /// must contain data. Throws std::invalid_argument if empty.
  [[nodiscard]] static WeekLoadProfile profile(const stats::TimeSeries& hourly,
                                               net::TimeRange week);

  [[nodiscard]] static PeakShift compare(const stats::TimeSeries& hourly,
                                         net::TimeRange base_week,
                                         net::TimeRange after_week);
};

}  // namespace lockdown::analysis
