#include "analysis/ports.hpp"

#include <algorithm>

#include "filter/plan.hpp"
#include "synth/timeline.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

using flow::PortKey;

PortAnalyzer::PortAnalyzer(std::vector<net::TimeRange> weeks,
                           bool holidays_as_weekend)
    : weeks_(std::move(weeks)), holidays_as_weekend_(holidays_as_weekend),
      week_index_(weeks_) {}

void PortAnalyzer::add(const flow::FlowRecord& r) {
  std::size_t week_index = weeks_.size();
  for (std::size_t i = 0; i < weeks_.size(); ++i) {
    if (weeks_[i].contains(r.first)) {
      week_index = i;
      break;
    }
  }
  if (week_index == weeks_.size()) return;

  const net::Date date = r.first.date();
  const bool weekend =
      date.is_weekend_day() ||
      (holidays_as_weekend_ && synth::is_holiday_2020(date));
  const PortKey port = r.service_port();
  const double bytes = util::counter_to_double(r.bytes);

  bytes_[{week_index, port, weekend, r.first.hour_of_day()}] += bytes;
  totals_[port] += bytes;
  all_bytes_ += bytes;
  if (port.proto == flow::IpProtocol::kTcp && (port.port == 80 || port.port == 443)) {
    web_bytes_ += bytes;
  }
}

void PortAnalyzer::add_batch(std::span<const flow::FlowRecord> records,
                             const filter::FlowColumns& cols) {
  // Streams are time-sorted, so (week, weekend, hour) is constant over long
  // runs. Per-service byte sums are gathered per run in a small scratch
  // table and flushed into the ordered maps once per (run, service) instead
  // of twice per record. All sums are exact integers (counter_to_double),
  // so the grouped flush is bit-identical to per-record add().
  const std::size_t n = records.size();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t week_index = week_index_.lookup(records[i].first);
    if (week_index == weeks_.size()) {
      ++i;
      continue;
    }
    const DayFlagsCache::Flags& day = day_cache_.at(records[i].first);
    const bool weekend =
        holidays_as_weekend_ ? day.weekend_or_holiday : day.weekend;
    const unsigned hour = DayFlagsCache::hour_of(day, records[i].first);
    const std::int64_t hour_begin =
        day.day_begin + static_cast<std::int64_t>(hour) * net::kSecondsPerHour;
    const std::int64_t hour_end = hour_begin + net::kSecondsPerHour;

    run_accum_.clear();
    for (; i < n; ++i) {
      const std::int64_t s = records[i].first.seconds();
      if (s < hour_begin || s >= hour_end) break;
      // Analysis weeks need not be hour-aligned, so re-check membership;
      // the WeekIndex cached-segment fast path makes this two comparisons.
      if (week_index_.lookup(records[i].first) != week_index) break;
      run_accum_.add(cols.service[i], util::counter_to_double(records[i].bytes));
    }

    for (const KeyAccumulator::Entry& e : run_accum_.entries()) {
      const PortKey port{static_cast<flow::IpProtocol>(e.key >> 16),
                         static_cast<std::uint16_t>(e.key & 0xffff)};
      bytes_[{week_index, port, weekend, hour}] += e.sum;
      totals_[port] += e.sum;
      all_bytes_ += e.sum;
      if (port.proto == flow::IpProtocol::kTcp &&
          (port.port == 80 || port.port == 443)) {
        web_bytes_ += e.sum;
      }
    }
  }
}

void PortAnalyzer::merge(const PortAnalyzer& other) {
  for (const auto& [key, v] : other.bytes_) bytes_[key] += v;
  for (const auto& [port, v] : other.totals_) totals_[port] += v;
  all_bytes_ += other.all_bytes_;
  web_bytes_ += other.web_bytes_;
}

std::vector<PortKey> PortAnalyzer::top_ports(std::size_t top_n,
                                             bool skip_web) const {
  std::vector<std::pair<PortKey, double>> ranked(totals_.begin(), totals_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<PortKey> out;
  for (const auto& [port, bytes] : ranked) {
    if (skip_web && port.proto == flow::IpProtocol::kTcp &&
        (port.port == 80 || port.port == 443)) {
      continue;
    }
    out.push_back(port);
    if (out.size() == top_n) break;
  }
  return out;
}

std::vector<PortAnalyzer::PortProfile> PortAnalyzer::profiles(
    const std::vector<PortKey>& ports) const {
  // Count workdays/weekend days per week for averaging.
  std::vector<std::array<unsigned, 2>> day_counts(weeks_.size(), {0, 0});
  for (std::size_t w = 0; w < weeks_.size(); ++w) {
    for (net::Timestamp t = weeks_[w].begin.floor_day(); t < weeks_[w].end;
         t = t.plus(net::kSecondsPerDay)) {
      const net::Date d = t.date();
      const bool weekend =
          d.is_weekend_day() ||
          (holidays_as_weekend_ && synth::is_holiday_2020(d));
      ++day_counts[w][weekend ? 1 : 0];
    }
  }

  std::vector<PortProfile> out;
  for (const PortKey& port : ports) {
    // Find the port's maximum hourly average across all weeks for the
    // shared normalization.
    double max_avg = 0.0;
    std::vector<PortProfile> port_profiles;
    for (std::size_t w = 0; w < weeks_.size(); ++w) {
      PortProfile p;
      p.port = port;
      p.week_index = w;
      for (unsigned h = 0; h < 24; ++h) {
        for (const bool weekend : {false, true}) {
          const auto it = bytes_.find({w, port, weekend, h});
          const unsigned days = day_counts[w][weekend ? 1 : 0];
          const double avg =
              (it == bytes_.end() || days == 0)
                  ? 0.0
                  : it->second / static_cast<double>(days);
          (weekend ? p.weekend : p.workday)[h] = avg;
          max_avg = std::max(max_avg, avg);
        }
      }
      port_profiles.push_back(p);
    }
    if (max_avg > 0.0) {
      for (PortProfile& p : port_profiles) {
        for (unsigned h = 0; h < 24; ++h) {
          p.workday[h] /= max_avg;
          p.weekend[h] /= max_avg;
        }
      }
    }
    out.insert(out.end(), port_profiles.begin(), port_profiles.end());
  }
  return out;
}

double PortAnalyzer::web_share() const noexcept {
  return all_bytes_ > 0.0 ? web_bytes_ / all_bytes_ : 0.0;
}

}  // namespace lockdown::analysis
