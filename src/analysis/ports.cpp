#include "analysis/ports.hpp"

#include <algorithm>

#include "synth/timeline.hpp"

namespace lockdown::analysis {

using flow::PortKey;

PortAnalyzer::PortAnalyzer(std::vector<net::TimeRange> weeks,
                           bool holidays_as_weekend)
    : weeks_(std::move(weeks)), holidays_as_weekend_(holidays_as_weekend) {}

void PortAnalyzer::add(const flow::FlowRecord& r) {
  std::size_t week_index = weeks_.size();
  for (std::size_t i = 0; i < weeks_.size(); ++i) {
    if (weeks_[i].contains(r.first)) {
      week_index = i;
      break;
    }
  }
  if (week_index == weeks_.size()) return;

  const net::Date date = r.first.date();
  const bool weekend =
      date.is_weekend_day() ||
      (holidays_as_weekend_ && synth::is_holiday_2020(date));
  const PortKey port = r.service_port();
  const auto bytes = static_cast<double>(r.bytes);

  bytes_[{week_index, port, weekend, r.first.hour_of_day()}] += bytes;
  totals_[port] += bytes;
  all_bytes_ += bytes;
  if (port.proto == flow::IpProtocol::kTcp && (port.port == 80 || port.port == 443)) {
    web_bytes_ += bytes;
  }
}

std::vector<PortKey> PortAnalyzer::top_ports(std::size_t top_n,
                                             bool skip_web) const {
  std::vector<std::pair<PortKey, double>> ranked(totals_.begin(), totals_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<PortKey> out;
  for (const auto& [port, bytes] : ranked) {
    if (skip_web && port.proto == flow::IpProtocol::kTcp &&
        (port.port == 80 || port.port == 443)) {
      continue;
    }
    out.push_back(port);
    if (out.size() == top_n) break;
  }
  return out;
}

std::vector<PortAnalyzer::PortProfile> PortAnalyzer::profiles(
    const std::vector<PortKey>& ports) const {
  // Count workdays/weekend days per week for averaging.
  std::vector<std::array<unsigned, 2>> day_counts(weeks_.size(), {0, 0});
  for (std::size_t w = 0; w < weeks_.size(); ++w) {
    for (net::Timestamp t = weeks_[w].begin.floor_day(); t < weeks_[w].end;
         t = t.plus(net::kSecondsPerDay)) {
      const net::Date d = t.date();
      const bool weekend =
          d.is_weekend_day() ||
          (holidays_as_weekend_ && synth::is_holiday_2020(d));
      ++day_counts[w][weekend ? 1 : 0];
    }
  }

  std::vector<PortProfile> out;
  for (const PortKey& port : ports) {
    // Find the port's maximum hourly average across all weeks for the
    // shared normalization.
    double max_avg = 0.0;
    std::vector<PortProfile> port_profiles;
    for (std::size_t w = 0; w < weeks_.size(); ++w) {
      PortProfile p;
      p.port = port;
      p.week_index = w;
      for (unsigned h = 0; h < 24; ++h) {
        for (const bool weekend : {false, true}) {
          const auto it = bytes_.find({w, port, weekend, h});
          const unsigned days = day_counts[w][weekend ? 1 : 0];
          const double avg =
              (it == bytes_.end() || days == 0)
                  ? 0.0
                  : it->second / static_cast<double>(days);
          (weekend ? p.weekend : p.workday)[h] = avg;
          max_avg = std::max(max_avg, avg);
        }
      }
      port_profiles.push_back(p);
    }
    if (max_avg > 0.0) {
      for (PortProfile& p : port_profiles) {
        for (unsigned h = 0; h < 24; ++h) {
          p.workday[h] /= max_avg;
          p.weekend[h] /= max_avg;
        }
      }
    }
    out.insert(out.end(), port_profiles.begin(), port_profiles.end());
  }
  return out;
}

double PortAnalyzer::web_share() const noexcept {
  return all_bytes_ > 0.0 ? web_bytes_ / all_bytes_ : 0.0;
}

}  // namespace lockdown::analysis
