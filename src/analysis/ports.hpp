// §4 / Fig 7: per-port diurnal traffic profiles. For each analysis week,
// volume is kept per (service port, hour-of-day, workday/weekend); the
// figure plots the top 3-12 ports (TCP/443 and TCP/80 are omitted for
// readability) normalized across all weeks.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "analysis/day_cache.hpp"
#include "analysis/run_accum.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

class PortAnalyzer {
 public:
  /// `weeks`: the analysis weeks (e.g. Feb/Mar/Apr weeks of Fig 7). Flows
  /// outside all weeks are ignored. Holiday days count as weekends when
  /// `holidays_as_weekend` (the ISP treats Easter as weekend days, §4).
  explicit PortAnalyzer(std::vector<net::TimeRange> weeks,
                        bool holidays_as_weekend = true);

  void add(const flow::FlowRecord& r);

  /// Columnar batch path: service keys come from `cols` (built once per
  /// batch for all consumers) and the calendar facts from the cached
  /// per-day/week lookups. Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling analyzer (same weeks + holiday configuration) into
  /// this one; exact-integer bins make the merge order-independent.
  void merge(const PortAnalyzer& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Ports ranked by total volume over all weeks. `skip_web` drops TCP/80
  /// and TCP/443 (the paper omits them); `top_n` bounds the result.
  [[nodiscard]] std::vector<flow::PortKey> top_ports(std::size_t top_n,
                                                     bool skip_web = true) const;

  /// Hourly profile of one port in one week: 24 workday values followed by
  /// 24 weekend values, each the average bytes for that hour-of-day,
  /// normalized by the port's maximum across *all* weeks (so growth across
  /// weeks is visible, like Fig 7's shared scale).
  struct PortProfile {
    flow::PortKey port;
    std::size_t week_index = 0;
    std::array<double, 24> workday{};
    std::array<double, 24> weekend{};
  };
  [[nodiscard]] std::vector<PortProfile> profiles(
      const std::vector<flow::PortKey>& ports) const;

  /// Total bytes share of TCP/443 + TCP/80 (the paper: ~80% at the ISP,
  /// ~60% at the IXP).
  [[nodiscard]] double web_share() const noexcept;

 private:
  struct Cell {
    double bytes = 0.0;
    unsigned days = 0;  // populated lazily at query time
  };

  std::vector<net::TimeRange> weeks_;
  bool holidays_as_weekend_;
  WeekIndex week_index_;
  DayFlagsCache day_cache_;
  /// Scratch for add_batch's run-grouped per-service sums.
  KeyAccumulator run_accum_;
  // key: (week index, port, weekend?, hour)
  std::map<std::tuple<std::size_t, flow::PortKey, bool, unsigned>, double> bytes_;
  std::map<flow::PortKey, double> totals_;
  double all_bytes_ = 0.0;
  double web_bytes_ = 0.0;
};

}  // namespace lockdown::analysis
