#include "analysis/remote_work.hpp"

#include "filter/plan.hpp"
#include "stats/ecdf.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

void RemoteWorkAnalyzer::add(const flow::FlowRecord& r) {
  const bool in_feb = feb_.contains(r.first);
  const bool in_mar = mar_.contains(r.first);
  if (!in_feb && !in_mar) return;

  const net::Asn src = view_.src_as(r);
  const net::Asn dst = view_.dst_as(r);
  const double bytes = util::counter_to_double(r.bytes);
  const bool touches_eyeball = eyeballs_.contains(src) || eyeballs_.contains(dst);
  const bool weekend = net::is_weekend(r.first.weekday());

  // Attribute the flow to each non-eyeball, non-local endpoint AS: that is
  // the population whose provisioning the analysis reasons about.
  for (const net::Asn as : {src, dst}) {
    if (as.value() == 0 || eyeballs_.contains(as) || local_.contains(as)) continue;
    Acc& acc = per_as_[as];
    if (in_feb) {
      acc.feb_total += bytes;
      if (touches_eyeball) acc.feb_res += bytes;
    } else {
      acc.mar_total += bytes;
      if (touches_eyeball) acc.mar_res += bytes;
    }
    if (weekend) {
      acc.weekend += bytes;
    } else {
      acc.workday += bytes;
    }
  }
}

void RemoteWorkAnalyzer::add_batch(std::span<const flow::FlowRecord> records,
                                   const filter::FlowColumns& cols) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    const flow::FlowRecord& r = records[i];
    const bool in_feb = feb_.contains(r.first);
    const bool in_mar = mar_.contains(r.first);
    if (!in_feb && !in_mar) continue;

    const std::uint32_t src = cols.src_as[i];
    const std::uint32_t dst = cols.dst_as[i];
    const double bytes = util::counter_to_double(r.bytes);
    const bool touches_eyeball =
        eyeballs_.contains(src) || eyeballs_.contains(dst);
    const bool weekend = day_cache_.at(r.first).weekend;

    for (const std::uint32_t as : {src, dst}) {
      if (as == 0 || eyeballs_.contains(as) || local_.contains(as)) continue;
      Acc& acc = per_as_[net::Asn(as)];
      if (in_feb) {
        acc.feb_total += bytes;
        if (touches_eyeball) acc.feb_res += bytes;
      } else {
        acc.mar_total += bytes;
        if (touches_eyeball) acc.mar_res += bytes;
      }
      if (weekend) {
        acc.weekend += bytes;
      } else {
        acc.workday += bytes;
      }
    }
  }
}

void RemoteWorkAnalyzer::merge(const RemoteWorkAnalyzer& other) {
  for (const auto& [asn, acc] : other.per_as_) {
    Acc& mine = per_as_[asn];
    mine.feb_total += acc.feb_total;
    mine.feb_res += acc.feb_res;
    mine.mar_total += acc.mar_total;
    mine.mar_res += acc.mar_res;
    mine.workday += acc.workday;
    mine.weekend += acc.weekend;
  }
}

namespace {

/// Normalized difference in [-1, 1]: (b - a) / max(a, b); 0 when both are 0.
double norm_diff(double a, double b) noexcept {
  const double m = std::max(a, b);
  return m > 0.0 ? (b - a) / m : 0.0;
}

WeekRatioGroup ratio_group(double workday, double weekend) noexcept {
  // Workday volume is spread over 5 days, weekend over 2: compare per-day
  // rates. Dominance = one rate exceeding the other by 50%.
  const double wd_rate = workday / 5.0;
  const double we_rate = weekend / 2.0;
  if (wd_rate > 1.5 * we_rate) return WeekRatioGroup::kWorkdayDominated;
  if (we_rate > 1.5 * wd_rate) return WeekRatioGroup::kWeekendDominated;
  return WeekRatioGroup::kBalanced;
}

}  // namespace

std::vector<AsShift> RemoteWorkAnalyzer::shifts() const {
  std::vector<AsShift> out;
  out.reserve(per_as_.size());
  for (const auto& [asn, acc] : per_as_) {
    AsShift s;
    s.asn = asn;
    s.total_shift = norm_diff(acc.feb_total, acc.mar_total);
    s.residential_shift = norm_diff(acc.feb_res, acc.mar_res);
    s.feb_bytes = acc.feb_total;
    s.mar_bytes = acc.mar_total;
    s.group = ratio_group(acc.workday, acc.weekend);
    out.push_back(s);
  }
  return out;
}

RemoteWorkAnalyzer::QuadrantCounts RemoteWorkAnalyzer::quadrants(
    WeekRatioGroup group) const {
  QuadrantCounts q;
  for (const AsShift& s : shifts()) {
    if (s.group != group) continue;
    if (s.total_shift >= 0 && s.residential_shift >= 0) ++q.up_up;
    if (s.total_shift >= 0 && s.residential_shift < 0) ++q.up_down;
    if (s.total_shift < 0 && s.residential_shift >= 0) ++q.down_up;
    if (s.total_shift < 0 && s.residential_shift < 0) ++q.down_down;
  }
  return q;
}

double RemoteWorkAnalyzer::shift_correlation(WeekRatioGroup group) const {
  std::vector<double> xs, ys;
  for (const AsShift& s : shifts()) {
    if (s.group != group) continue;
    xs.push_back(s.total_shift);
    ys.push_back(s.residential_shift);
  }
  return stats::pearson(xs, ys);
}

}  // namespace lockdown::analysis
