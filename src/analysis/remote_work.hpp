// §3.4 / Fig 6: identifying remote-work-relevant ASes at the ISP
// (including transit traffic).
//
// Per AS we accumulate (a) total bytes and (b) bytes exchanged with the
// manually curated eyeball ASes ("residential" traffic), separately for a
// February base week and a March lockdown week, plus workday/weekend
// volumes for the ratio grouping. The figure plots, per AS, the normalized
// difference in mean volume against the normalized difference in mean
// residential volume.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "analysis/as_view.hpp"
#include "analysis/day_cache.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

/// Workday/weekend dominance groups (§3.4).
enum class WeekRatioGroup : std::uint8_t {
  kWorkdayDominated,
  kBalanced,
  kWeekendDominated,
};

[[nodiscard]] constexpr const char* to_string(WeekRatioGroup g) noexcept {
  switch (g) {
    case WeekRatioGroup::kWorkdayDominated: return "workday-dominated";
    case WeekRatioGroup::kBalanced: return "balanced";
    case WeekRatioGroup::kWeekendDominated: return "weekend-dominated";
  }
  return "?";
}

struct AsShift {
  net::Asn asn;
  /// Normalized difference of mean volume, (mar - feb) / max(mar, feb):
  /// bounded in [-1, 1] like the paper's axes.
  double total_shift = 0.0;
  double residential_shift = 0.0;
  double feb_bytes = 0.0;
  double mar_bytes = 0.0;
  WeekRatioGroup group = WeekRatioGroup::kBalanced;
};

class RemoteWorkAnalyzer {
 public:
  /// `eyeballs`: the curated residential broadband ASes. `local`: the ISP's
  /// own ASN(s), excluded from the per-AS population (they are the vantage
  /// point itself).
  RemoteWorkAnalyzer(const AsView& view, AsnSet eyeballs, AsnSet local,
                     net::TimeRange feb_week, net::TimeRange mar_week)
      : view_(view), eyeballs_(std::move(eyeballs)), local_(std::move(local)),
        feb_(feb_week), mar_(mar_week) {}

  void add(const flow::FlowRecord& r);

  /// Columnar batch path: endpoint ASes come pre-resolved from `cols`, the
  /// weekend flag from the shared day cache. Same final state as add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling analyzer (same eyeball/local sets and weeks) into this
  /// one; exact-integer byte accumulators merge order-independently.
  void merge(const RemoteWorkAnalyzer& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Per-AS shifts, one entry per AS seen in either week.
  [[nodiscard]] std::vector<AsShift> shifts() const;

  /// Quadrant counts of the shift plane for workday-dominated ASes (the
  /// group the paper focuses on): (total up/down) x (residential up/down).
  struct QuadrantCounts {
    std::size_t up_up = 0;      // total up, residential up
    std::size_t up_down = 0;    // total up, residential down
    std::size_t down_up = 0;    // total down, residential up
    std::size_t down_down = 0;  // total down, residential down
  };
  [[nodiscard]] QuadrantCounts quadrants(
      WeekRatioGroup group = WeekRatioGroup::kWorkdayDominated) const;

  /// Correlation between total shift and residential shift within a group.
  [[nodiscard]] double shift_correlation(WeekRatioGroup group) const;

 private:
  struct Acc {
    double feb_total = 0, feb_res = 0;
    double mar_total = 0, mar_res = 0;
    double workday = 0, weekend = 0;
  };

  const AsView& view_;
  AsnSet eyeballs_;
  AsnSet local_;
  net::TimeRange feb_;
  net::TimeRange mar_;
  DayFlagsCache day_cache_;
  std::map<net::Asn, Acc> per_as_;
};

}  // namespace lockdown::analysis
