// Chunk-local uint32-key -> byte-sum accumulator for the columnar batch
// kernels (ports, hypergiants). Records inside one batch repeat a handful
// of keys (service ports, server ASes), so sums are gathered in a small
// open-address table and flushed into the ordered result maps once per
// run/batch instead of once per record. Every value is an exact-integer
// double (util::counter_to_double), so grouped addition yields the same
// bits as per-record addition.
#pragma once

#include <cstdint>
#include <vector>

namespace lockdown::analysis {

class KeyAccumulator {
 public:
  struct Entry {
    std::uint32_t key = 0;
    double sum = 0.0;
    std::uint32_t slot = 0;  ///< occupied slot, for selective clear()
  };

  KeyAccumulator() : slots_(kInitialSlots, kEmpty) {}

  void add(std::uint32_t key, double bytes) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash(key) & mask;
    while (true) {
      const std::uint32_t idx = slots_[slot];
      if (idx == kEmpty) {
        if (entries_.size() * 2 >= slots_.size()) {
          grow();
          add(key, bytes);
          return;
        }
        slots_[slot] = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(
            Entry{key, bytes, static_cast<std::uint32_t>(slot)});
        return;
      }
      if (entries_[idx].key == key) {
        entries_[idx].sum += bytes;
        return;
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Entries in first-seen order (deterministic for a given record order).
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// O(occupied) reset: only the slots actually taken are emptied.
  void clear() noexcept {
    for (const Entry& e : entries_) slots_[e.slot] = kEmpty;
    entries_.clear();
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kInitialSlots = 256;  // power of two

  [[nodiscard]] static std::size_t hash(std::uint32_t key) noexcept {
    return static_cast<std::size_t>(key * 0x9e3779b1u);
  }

  void grow() {
    std::vector<std::uint32_t> slots(slots_.size() * 2, kEmpty);
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t slot = hash(entries_[i].key) & mask;
      while (slots[slot] != kEmpty) slot = (slot + 1) & mask;
      slots[slot] = static_cast<std::uint32_t>(i);
      entries_[i].slot = static_cast<std::uint32_t>(slot);
    }
    slots_ = std::move(slots);
  }

  std::vector<std::uint32_t> slots_;  ///< slot -> entry index or kEmpty
  std::vector<Entry> entries_;
};

}  // namespace lockdown::analysis
