#include "analysis/scan.hpp"

#include "obs/trace.hpp"

namespace lockdown::analysis {

ScanPool::ScanPool(unsigned threads, BatchFn fn, const filter::AsnTrie* trie,
                   std::size_t chunk_records)
    : lanes_(threads == 0 ? 1u : threads),
      chunk_records_(chunk_records == 0 ? kDefaultChunkRecords : chunk_records),
      fn_(std::move(fn)),
      trie_(trie) {
  if (lanes_ <= 1) return;  // inline mode: no threads, no queues
  queues_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(lanes_);
  for (unsigned i = 0; i < lanes_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
  pending_.reserve(chunk_records_);
}

ScanPool::~ScanPool() { finish(); }

void ScanPool::feed(std::span<const flow::FlowRecord> records) {
  if (lanes_ <= 1) {
    // Inline: no copy, no chunking -- per-record results do not depend on
    // batch boundaries, so the caller's span is processed as one batch.
    if (records.empty()) return;
    inline_cols_.build(records, trie_);
    fn_(0, records, inline_cols_);
    return;
  }
  while (!records.empty()) {
    const std::size_t room = chunk_records_ - pending_.size();
    const std::size_t take = records.size() < room ? records.size() : room;
    pending_.insert(pending_.end(), records.begin(),
                    records.begin() + static_cast<std::ptrdiff_t>(take));
    records = records.subspan(take);
    if (pending_.size() == chunk_records_) {
      std::vector<flow::FlowRecord> chunk = take_buffer();
      chunk.swap(pending_);
      dispatch(std::move(chunk));
    }
  }
}

void ScanPool::finish() {
  if (finished_) return;
  finished_ = true;
  if (lanes_ <= 1) return;
  if (!pending_.empty()) {
    dispatch(std::move(pending_));
    pending_.clear();
  }
  for (auto& q : queues_) {
    std::lock_guard lock(q->mu);
    q->done = true;
    q->not_empty.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ScanPool::dispatch(std::vector<flow::FlowRecord>&& chunk) {
  WorkerQueue& q = *queues_[next_worker_];
  next_worker_ = (next_worker_ + 1) % lanes_;
  std::unique_lock lock(q.mu);
  q.not_full.wait(lock, [&q] { return q.chunks.size() < kMaxQueuedChunks; });
  q.chunks.push_back(std::move(chunk));
  q.not_empty.notify_one();
}

void ScanPool::worker_main(unsigned index) {
  filter::FlowColumns cols;  // thread-local: rebuilt per chunk, reused storage
  WorkerQueue& q = *queues_[index];
  for (;;) {
    std::vector<flow::FlowRecord> chunk;
    {
      std::unique_lock lock(q.mu);
      q.not_empty.wait(lock, [&q] { return !q.chunks.empty() || q.done; });
      if (q.chunks.empty()) return;  // done and drained
      chunk = std::move(q.chunks.front());
      q.chunks.pop_front();
      q.not_full.notify_one();
    }
    {
      TRACE_SPAN_ARG("analysis", "scan.chunk", chunk.size());
      cols.build(chunk, trie_);
      fn_(index, chunk, cols);
    }
    recycle_buffer(std::move(chunk));
  }
}

std::vector<flow::FlowRecord> ScanPool::take_buffer() {
  {
    std::lock_guard lock(free_mu_);
    if (!free_buffers_.empty()) {
      std::vector<flow::FlowRecord> buf = std::move(free_buffers_.back());
      free_buffers_.pop_back();
      return buf;
    }
  }
  std::vector<flow::FlowRecord> buf;
  buf.reserve(chunk_records_);
  return buf;
}

void ScanPool::recycle_buffer(std::vector<flow::FlowRecord>&& buf) {
  buf.clear();
  std::lock_guard lock(free_mu_);
  if (free_buffers_.size() < lanes_ * kMaxQueuedChunks) {
    free_buffers_.push_back(std::move(buf));
  }
}

}  // namespace lockdown::analysis
