// Parallel slice-scan engine (DESIGN.md §15).
//
// ScanPool shards a flow-record stream across N worker threads in fixed-
// size chunks: the feeder cuts chunks round-robin onto per-worker bounded
// queues, each worker builds the batch's shared filter::FlowColumns once
// (service keys + resolved endpoint ASes) and hands (worker index, records,
// columns) to the supplied callback. With threads <= 1 everything runs
// inline on the calling thread with zero copies.
//
// ScanEngine<Bundle> layers thread-local aggregation on top: one Bundle
// (any type with `add_batch(span, const FlowColumns&)` and
// `merge(const Bundle&)`) per worker, fed only from that worker's thread,
// merged in worker-index order by finish(). Because every aggregator bin
// is a sum of exactly-representable integers (util::counter_to_double),
// the merged result is BIT-IDENTICAL to a single-threaded run regardless
// of how the stream was sharded -- the determinism the figure-export
// `--scan-threads` flag relies on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "filter/plan.hpp"
#include "flow/flow_record.hpp"

namespace lockdown::analysis {

class ScanPool {
 public:
  static constexpr std::size_t kDefaultChunkRecords = 4096;
  /// Chunks a worker may have queued before the feeder blocks: bounds
  /// memory to threads * kMaxQueuedChunks * chunk_records records.
  static constexpr std::size_t kMaxQueuedChunks = 4;

  using BatchFn = std::function<void(unsigned worker,
                                     std::span<const flow::FlowRecord> records,
                                     const filter::FlowColumns& cols)>;

  /// `fn` is called with worker indices in [0, max(1, threads)); for a
  /// given worker index all calls come from one thread. `trie` is the
  /// routing snapshot for the AS columns (may be null: annotation-only).
  ScanPool(unsigned threads, BatchFn fn, const filter::AsnTrie* trie = nullptr,
           std::size_t chunk_records = kDefaultChunkRecords);
  ~ScanPool();
  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  /// Enqueue records. Inline (threads <= 1) this processes the span
  /// directly; threaded it copies into chunk buffers and may block on
  /// queue backpressure.
  void feed(std::span<const flow::FlowRecord> records);

  /// Flush the partial trailing chunk, signal completion and join the
  /// workers. Idempotent; the destructor calls it.
  void finish();

  /// Number of worker lanes (= number of distinct worker indices): 1 for
  /// the inline pool.
  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<std::vector<flow::FlowRecord>> chunks;
    bool done = false;
  };

  void worker_main(unsigned index);
  void dispatch(std::vector<flow::FlowRecord>&& chunk);
  [[nodiscard]] std::vector<flow::FlowRecord> take_buffer();
  void recycle_buffer(std::vector<flow::FlowRecord>&& buf);

  unsigned lanes_;
  std::size_t chunk_records_;
  BatchFn fn_;
  const filter::AsnTrie* trie_;
  bool finished_ = false;

  // Inline path (lanes_ == 1, no worker threads).
  filter::FlowColumns inline_cols_;

  // Threaded path.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::vector<flow::FlowRecord> pending_;
  std::size_t next_worker_ = 0;
  std::mutex free_mu_;
  std::vector<std::vector<flow::FlowRecord>> free_buffers_;
};

/// Thread-local-aggregate + deterministic-reduce harness over ScanPool.
/// Bundle requirements:
///   void add_batch(std::span<const flow::FlowRecord>,
///                  const filter::FlowColumns&);
///   void merge(const Bundle&);
template <typename Bundle>
class ScanEngine {
 public:
  /// One factory() bundle per worker lane. The factory runs on the
  /// constructing thread.
  ScanEngine(unsigned threads, const std::function<Bundle()>& factory,
             const filter::AsnTrie* trie = nullptr,
             std::size_t chunk_records = ScanPool::kDefaultChunkRecords) {
    const unsigned n = threads == 0 ? 1u : threads;
    bundles_.reserve(n);
    for (unsigned i = 0; i < n; ++i) bundles_.push_back(factory());
    pool_.emplace(
        threads,
        [this](unsigned worker, std::span<const flow::FlowRecord> records,
               const filter::FlowColumns& cols) {
          bundles_[worker].add_batch(records, cols);
        },
        trie, chunk_records);
  }

  ScanEngine(const ScanEngine&) = delete;
  ScanEngine& operator=(const ScanEngine&) = delete;

  void feed(std::span<const flow::FlowRecord> records) {
    pool_->feed(records);
  }

  /// Join the workers and reduce: bundles are merged into bundle 0 in
  /// worker-index order (the merge is order-independent anyway -- exact
  /// integer sums -- but a fixed order keeps the reduction auditable).
  /// Idempotent; returns the merged bundle.
  Bundle& finish() {
    if (!reduced_) {
      pool_->finish();
      for (std::size_t i = 1; i < bundles_.size(); ++i) {
        bundles_[0].merge(bundles_[i]);
      }
      reduced_ = true;
    }
    return bundles_[0];
  }

  [[nodiscard]] unsigned lanes() const noexcept { return pool_->lanes(); }

 private:
  std::vector<Bundle> bundles_;
  std::optional<ScanPool> pool_;
  bool reduced_ = false;
};

}  // namespace lockdown::analysis
