#include "analysis/table1_dsl.hpp"

#include <cctype>
#include <map>
#include <stdexcept>

namespace lockdown::analysis {

namespace {

using flow::IpProtocol;
using flow::PortKey;

[[nodiscard]] std::string class_slug(AppClass cls) {
  std::string out;
  for (const char* p = synth::to_string(cls); *p != '\0'; ++p) {
    const auto c = static_cast<unsigned char>(*p);
    if (std::isalnum(c) != 0) {
      out += static_cast<char>(std::tolower(c));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

[[nodiscard]] const char* proto_keyword(IpProtocol proto) {
  switch (proto) {
    case IpProtocol::kIcmp: return "icmp";
    case IpProtocol::kTcp: return "tcp";
    case IpProtocol::kUdp: return "udp";
    case IpProtocol::kGre: return "gre";
    case IpProtocol::kEsp: return "esp";
  }
  return "0";
}

/// Port criterion of one AppFilter: service-port membership per protocol.
/// `port N` (no direction) matches FlowRecord::service_port().port, so
/// `proto P and port N` is exactly PortKey{P, N} equality -- GRE/ESP/ICMP
/// entries carry service port 0.
[[nodiscard]] std::string ports_expr(const std::vector<PortKey>& ports) {
  std::map<IpProtocol, std::string> by_proto;
  for (const PortKey& k : ports) {
    std::string& list = by_proto[k.proto];
    if (!list.empty()) list += ',';
    list += std::to_string(k.port);
  }
  std::string out;
  for (const auto& [proto, list] : by_proto) {
    if (!out.empty()) out += " or ";
    out += "(proto ";
    out += proto_keyword(proto);
    out += " and port ";
    out += list;
    out += ")";
  }
  return by_proto.size() > 1 ? "(" + out + ")" : out;
}

/// `asn A or asn B` membership of either endpoint -- AppFilter's AS
/// criterion (src OR dst in the list) is the DSL's undirected asn term.
[[nodiscard]] std::string asns_expr(const std::vector<net::Asn>& asns) {
  std::string out = "asn ";
  for (std::size_t i = 0; i < asns.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(asns[i].value());
  }
  return out;
}

[[nodiscard]] std::string filter_expr(const AppFilter& f) {
  const bool has_as = !f.asns.empty();
  const bool has_port = !f.ports.empty();
  if (has_as && has_port) {
    return "(" + asns_expr(f.asns) + " and " + ports_expr(f.ports) + ")";
  }
  if (has_as) return "(" + asns_expr(f.asns) + ")";
  return ports_expr(f.ports);
}

}  // namespace

std::vector<MonitorDefinition> dsl_monitor_definitions(
    const AppClassifier& classifier) {
  // Collect the contiguous class runs of the registry.
  std::vector<std::pair<AppClass, std::string>> unions;
  for (const AppFilter& f : classifier.filters()) {
    if (unions.empty() || unions.back().first != f.target) {
      for (const auto& [cls, expr] : unions) {
        if (cls == f.target) {
          throw std::invalid_argument(
              "dsl_monitor_definitions: registry is not class-contiguous "
              "(class of '" + f.name + "' reappears)");
        }
      }
      unions.emplace_back(f.target, std::string());
    }
    std::string& u = unions.back().second;
    if (!u.empty()) u += " or ";
    u += filter_expr(f);
  }

  // First-match priority across classes becomes a not-any-earlier-class
  // guard: object k matches exactly the records classify() assigns class k.
  std::vector<MonitorDefinition> defs;
  defs.reserve(unions.size());
  std::string guard;
  for (const auto& [cls, expr] : unions) {
    MonitorDefinition def;
    def.name = class_slug(cls);
    def.app_class = cls;
    def.expression =
        guard.empty() ? expr : "(" + expr + ") and not (" + guard + ")";
    defs.push_back(std::move(def));
    if (!guard.empty()) guard += " or ";
    guard += expr;
  }
  return defs;
}

void add_monitor_definitions(filter::MonitorSet& set,
                             const std::vector<MonitorDefinition>& defs) {
  for (const MonitorDefinition& def : defs) {
    set.add(def.name, def.expression);
  }
}

}  // namespace lockdown::analysis
