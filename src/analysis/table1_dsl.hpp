// Table 1 re-expressed in the filter DSL: generates one monitoring-object
// definition per application class from an AppClassifier registry, so the
// generic filter/monitor layer reproduces the paper's §5 classification
// without any hardcoded class logic (DESIGN.md §12).
//
// The classifier resolves overlap by first-match priority over a
// class-contiguous registry; monitoring objects route every batch to every
// matching object. The generator bridges the two semantics with precedence
// guards: class k's expression is (union of class-k filters) and not
// (union of all earlier classes' filters). A synthesized-slice test pins
// the per-class flow/byte totals to AppClassifier::classify_batch exactly.
#pragma once

#include <string>
#include <vector>

#include "analysis/app_filter.hpp"
#include "filter/monitor.hpp"

namespace lockdown::analysis {

struct MonitorDefinition {
  std::string name;  ///< class-name slug ("web_conf", "vod", ...)
  AppClass app_class = AppClass::kOther;
  std::string expression;
};

/// One guarded DSL definition per class of `classifier`, in registry
/// order. Requires a class-contiguous registry (each class's filters form
/// one run, as table1() is laid out); throws std::invalid_argument
/// otherwise, because first-match priority then has no per-class guard
/// expression.
[[nodiscard]] std::vector<MonitorDefinition> dsl_monitor_definitions(
    const AppClassifier& classifier);

/// Register the definitions into `set` (typically built over the same
/// prefix trie the classifier's AsView resolves against).
void add_monitor_definitions(filter::MonitorSet& set,
                             const std::vector<MonitorDefinition>& defs);

}  // namespace lockdown::analysis
