#include "analysis/volume.hpp"

#include <map>
#include <stdexcept>

namespace lockdown::analysis {

std::vector<std::pair<unsigned, double>> weekly_normalized(
    const stats::TimeSeries& series, unsigned baseline_week) {
  // Average the *daily* volumes within each paper week, so partial weeks at
  // the range edges do not bias the mean (the paper plots "daily traffic
  // averaged per week").
  const stats::TimeSeries daily = series.rebucket(stats::Bucket::kDay);

  std::map<unsigned, std::pair<double, unsigned>> weeks;  // week -> (sum, days)
  for (const auto& [ts, v] : daily.points()) {
    const unsigned week = ts.date().paper_week();
    auto& [sum, days] = weeks[week];
    sum += v;
    ++days;
  }

  const auto base_it = weeks.find(baseline_week);
  if (base_it == weeks.end() || base_it->second.first <= 0.0) {
    throw std::invalid_argument("weekly_normalized: baseline week missing or empty");
  }
  const double base =
      base_it->second.first / static_cast<double>(base_it->second.second);

  std::vector<std::pair<unsigned, double>> out;
  out.reserve(weeks.size());
  for (const auto& [week, acc] : weeks) {
    out.emplace_back(week, acc.first / static_cast<double>(acc.second) / base);
  }
  return out;
}

}  // namespace lockdown::analysis
