#include "analysis/volume.hpp"

#include <map>
#include <stdexcept>

#include "filter/plan.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

void VolumeAggregator::add(const flow::FlowRecord& r) {
  if (filter_ && !filter_(r)) return;
  if (plan_ != nullptr && !plan_->match(r)) return;
  series_.add(r.first, util::counter_to_double(r.bytes));
  ++records_;
}

void VolumeAggregator::add_batch(std::span<const flow::FlowRecord> records,
                                 const filter::FlowColumns& cols) {
  if (plan_ != nullptr) {
    mask_.resize(records.size());
    plan_->match_batch(records, mask_, cols);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (mask_[i] == 0) continue;
      series_.add(records[i].first, util::counter_to_double(records[i].bytes));
      ++records_;
    }
    return;
  }
  if (filter_) {
    for (const flow::FlowRecord& r : records) {
      if (!filter_(r)) continue;
      series_.add(r.first, util::counter_to_double(r.bytes));
      ++records_;
    }
    return;
  }
  for (const flow::FlowRecord& r : records) {
    series_.add(r.first, util::counter_to_double(r.bytes));
  }
  records_ += records.size();
}

void VolumeAggregator::merge(const VolumeAggregator& other) {
  series_.merge(other.series_);
  records_ += other.records_;
}

std::vector<std::pair<unsigned, double>> weekly_normalized(
    const stats::TimeSeries& series, unsigned baseline_week) {
  // Average the *daily* volumes within each paper week, so partial weeks at
  // the range edges do not bias the mean (the paper plots "daily traffic
  // averaged per week").
  const stats::TimeSeries daily = series.rebucket(stats::Bucket::kDay);

  std::map<unsigned, std::pair<double, unsigned>> weeks;  // week -> (sum, days)
  for (const auto& [ts, v] : daily.points()) {
    const unsigned week = ts.date().paper_week();
    auto& [sum, days] = weeks[week];
    sum += v;
    ++days;
  }

  const auto base_it = weeks.find(baseline_week);
  if (base_it == weeks.end() || base_it->second.first <= 0.0) {
    throw std::invalid_argument("weekly_normalized: baseline week missing or empty");
  }
  const double base =
      base_it->second.first / static_cast<double>(base_it->second.second);

  std::vector<std::pair<unsigned, double>> out;
  out.reserve(weeks.size());
  for (const auto& [week, acc] : weeks) {
    out.emplace_back(week, acc.first / static_cast<double>(acc.second) / base);
  }
  return out;
}

}  // namespace lockdown::analysis
