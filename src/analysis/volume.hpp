// Volume aggregation: flows -> calendar time series, the reduction behind
// Figs 1, 2a, 3, 11a. A VolumeAggregator is a flow sink (plugs directly
// into a flow::Collector or a synth::FlowSynthesizer) with an optional
// record filter: either an interpreted std::function or a compiled
// filter::CompiledFilter, whose FilterPlan mask drives the columnar
// add_batch path without a per-record function hop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_record.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::filter {
class CompiledFilter;
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

class VolumeAggregator {
 public:
  using Filter = std::function<bool(const flow::FlowRecord&)>;

  explicit VolumeAggregator(stats::Bucket bucket, Filter filter = {})
      : series_(bucket), filter_(std::move(filter)) {}

  /// Compiled-filter variant: `plan` gates records on both the per-record
  /// and the batch path (as a FilterPlan mask there). The filter must
  /// outlive the aggregator; null means unfiltered.
  VolumeAggregator(stats::Bucket bucket, const filter::CompiledFilter* plan)
      : series_(bucket), plan_(plan) {}

  void add(const flow::FlowRecord& r);

  /// Columnar batch path: one FilterPlan mask pass over the batch, then a
  /// straight accumulation loop. `cols` must have been built over exactly
  /// `records` (and, when a compiled filter is set, with the trie it was
  /// compiled against). Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling aggregator (same bucket + filter configuration) into
  /// this one. Bin values are sums of exact integers, so merging
  /// per-thread instances reproduces single-threaded results bit-exactly.
  void merge(const VolumeAggregator& other);

  /// Sink adapter.
  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  [[nodiscard]] const stats::TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  stats::TimeSeries series_;
  Filter filter_;
  const filter::CompiledFilter* plan_ = nullptr;
  std::vector<std::uint8_t> mask_;  ///< add_batch scratch
  std::uint64_t records_ = 0;
};

/// Fig 1 reduction: daily traffic averaged per week, normalized by the
/// value of `baseline_week` (the paper's calendar week 3). Input must be a
/// day- or finer-bucketed series; returns (paper week -> normalized value).
[[nodiscard]] std::vector<std::pair<unsigned, double>> weekly_normalized(
    const stats::TimeSeries& series, unsigned baseline_week = 3);

}  // namespace lockdown::analysis
