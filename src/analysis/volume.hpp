// Volume aggregation: flows -> calendar time series, the reduction behind
// Figs 1, 2a, 3, 11a. A VolumeAggregator is a flow sink (plugs directly
// into a flow::Collector or a synth::FlowSynthesizer) with an optional
// record filter.
#pragma once

#include <functional>
#include <optional>

#include "flow/flow_record.hpp"
#include "stats/timeseries.hpp"

namespace lockdown::analysis {

class VolumeAggregator {
 public:
  using Filter = std::function<bool(const flow::FlowRecord&)>;

  explicit VolumeAggregator(stats::Bucket bucket, Filter filter = {})
      : series_(bucket), filter_(std::move(filter)) {}

  void add(const flow::FlowRecord& r) {
    if (filter_ && !filter_(r)) return;
    series_.add(r.first, static_cast<double>(r.bytes));
    ++records_;
  }

  /// Sink adapter.
  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  [[nodiscard]] const stats::TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  stats::TimeSeries series_;
  Filter filter_;
  std::uint64_t records_ = 0;
};

/// Fig 1 reduction: daily traffic averaged per week, normalized by the
/// value of `baseline_week` (the paper's calendar week 3). Input must be a
/// day- or finer-bucketed series; returns (paper week -> normalized value).
[[nodiscard]] std::vector<std::pair<unsigned, double>> weekly_normalized(
    const stats::TimeSeries& series, unsigned baseline_week = 3);

}  // namespace lockdown::analysis
