#include "analysis/vpn.hpp"

#include <algorithm>

#include "filter/plan.hpp"
#include "util/arith.hpp"

namespace lockdown::analysis {

using flow::IpProtocol;

VpnAnalyzer::VpnAnalyzer(std::vector<net::TimeRange> weeks,
                         std::set<net::IpAddress> domain_candidates)
    : weeks_(std::move(weeks)), candidates_(std::move(domain_candidates)),
      week_index_(weeks_) {
  bytes_.assign(weeks_.size(), {});
}

bool VpnAnalyzer::is_port_vpn(const flow::FlowRecord& r) noexcept {
  if (r.protocol == IpProtocol::kGre || r.protocol == IpProtocol::kEsp) {
    return true;
  }
  if (r.protocol != IpProtocol::kTcp && r.protocol != IpProtocol::kUdp) {
    return false;
  }
  const std::uint16_t port = r.service_port().port;
  switch (port) {
    case 500:
    case 4500:
    case 1194:
    case 1701:
    case 1723:
      return true;
    default:
      return false;
  }
}

bool VpnAnalyzer::is_domain_vpn(const flow::FlowRecord& r) const noexcept {
  if (r.protocol != IpProtocol::kTcp || r.service_port().port != 443) {
    return false;
  }
  return candidates_.contains(r.src_addr) || candidates_.contains(r.dst_addr);
}

void VpnAnalyzer::add(const flow::FlowRecord& r) {
  std::size_t week = weeks_.size();
  for (std::size_t i = 0; i < weeks_.size(); ++i) {
    if (weeks_[i].contains(r.first)) {
      week = i;
      break;
    }
  }
  if (week == weeks_.size()) return;

  const bool port_vpn = is_port_vpn(r);
  const bool domain_vpn = !port_vpn && is_domain_vpn(r);
  if (!port_vpn && !domain_vpn) return;

  const std::size_t method = port_vpn ? 0 : 1;
  const std::size_t weekend = net::is_weekend(r.first.weekday()) ? 1 : 0;
  bytes_[week][method][weekend][r.first.hour_of_day()] +=
      util::counter_to_double(r.bytes);
}

void VpnAnalyzer::add_batch(std::span<const flow::FlowRecord> records,
                            const filter::FlowColumns& cols) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    const flow::FlowRecord& r = records[i];
    const std::size_t week = week_index_.lookup(r.first);
    if (week == weeks_.size()) continue;

    // Port classification off the pre-computed service key (proto << 16 |
    // service port) -- identical decision to is_port_vpn()/is_domain_vpn().
    const std::uint32_t service = cols.service[i];
    const auto proto = static_cast<IpProtocol>(service >> 16);
    const auto port = static_cast<std::uint16_t>(service & 0xffff);
    bool port_vpn = proto == IpProtocol::kGre || proto == IpProtocol::kEsp;
    if (!port_vpn && (proto == IpProtocol::kTcp || proto == IpProtocol::kUdp)) {
      port_vpn = port == 500 || port == 4500 || port == 1194 || port == 1701 ||
                 port == 1723;
    }
    const bool domain_vpn =
        !port_vpn && proto == IpProtocol::kTcp && port == 443 &&
        (candidates_.contains(r.src_addr) || candidates_.contains(r.dst_addr));
    if (!port_vpn && !domain_vpn) continue;

    const std::size_t method = port_vpn ? 0 : 1;
    const DayFlagsCache::Flags& day = day_cache_.at(r.first);
    bytes_[week][method][day.weekend ? 1 : 0][DayFlagsCache::hour_of(day, r.first)] +=
        util::counter_to_double(r.bytes);
  }
}

void VpnAnalyzer::merge(const VpnAnalyzer& other) {
  for (std::size_t w = 0; w < bytes_.size() && w < other.bytes_.size(); ++w) {
    for (std::size_t m = 0; m < 2; ++m) {
      for (std::size_t we = 0; we < 2; ++we) {
        for (std::size_t h = 0; h < 24; ++h) {
          bytes_[w][m][we][h] += other.bytes_[w][m][we][h];
        }
      }
    }
  }
}

std::vector<VpnAnalyzer::Profile> VpnAnalyzer::profiles() const {
  // Day counts per week for hourly averages.
  std::vector<std::array<double, 2>> day_counts(weeks_.size(), {0.0, 0.0});
  for (std::size_t w = 0; w < weeks_.size(); ++w) {
    for (net::Timestamp t = weeks_[w].begin.floor_day(); t < weeks_[w].end;
         t = t.plus(net::kSecondsPerDay)) {
      ++day_counts[w][net::is_weekend(t.weekday()) ? 1 : 0];
    }
  }

  double max_avg = 0.0;
  std::vector<Profile> out;
  for (std::size_t w = 0; w < weeks_.size(); ++w) {
    for (const std::size_t method : {0u, 1u}) {
      Profile p;
      p.method = method == 0 ? VpnMethod::kPort : VpnMethod::kDomain;
      p.week_index = w;
      for (unsigned h = 0; h < 24; ++h) {
        for (const std::size_t weekend : {0u, 1u}) {
          const double days = day_counts[w][weekend];
          const double avg =
              days > 0 ? bytes_[w][method][weekend][h] / days : 0.0;
          (weekend ? p.weekend : p.workday)[h] = avg;
          max_avg = std::max(max_avg, avg);
        }
      }
      out.push_back(p);
    }
  }
  if (max_avg > 0.0) {
    for (Profile& p : out) {
      for (unsigned h = 0; h < 24; ++h) {
        p.workday[h] /= max_avg;
        p.weekend[h] /= max_avg;
      }
    }
  }
  return out;
}

double VpnAnalyzer::working_hours_growth(VpnMethod method, std::size_t w) const {
  const std::size_t m = method == VpnMethod::kPort ? 0 : 1;
  auto working_sum = [&](std::size_t week) {
    double sum = 0.0;
    for (unsigned h = 9; h < 17; ++h) sum += bytes_[week][m][0][h];
    return sum;
  };
  const double base = working_sum(0);
  if (base <= 0.0) return 0.0;
  return 100.0 * (working_sum(w) - base) / base;
}

}  // namespace lockdown::analysis
