// §6 / Fig 10: VPN traffic identification, twofold as in the paper:
//
//   * port-based -- well-known VPN transport ports/protocols: IPsec
//     (UDP 500/4500), OpenVPN (1194), L2TP (1701), PPTP (1723), both TCP
//     and UDP, plus the GRE and ESP protocols;
//   * domain-based -- TCP/443 traffic to/from the candidate addresses the
//     dns::VpnCandidateFinder produced from the *vpn* corpus search.
//
// Aggregates hourly volume per method, per analysis week, split into
// workday and weekend averages (Fig 10 shows workdays as positive and
// weekends as negative bars).
#pragma once

#include <functional>
#include <set>
#include <span>
#include <vector>

#include "analysis/day_cache.hpp"
#include "flow/flow_record.hpp"
#include "net/civil_time.hpp"
#include "net/ip.hpp"

namespace lockdown::filter {
struct FlowColumns;
}  // namespace lockdown::filter

namespace lockdown::analysis {

enum class VpnMethod : std::uint8_t { kPort, kDomain };

class VpnAnalyzer {
 public:
  VpnAnalyzer(std::vector<net::TimeRange> weeks,
              std::set<net::IpAddress> domain_candidates);

  /// True if the record matches the port-based VPN definition.
  [[nodiscard]] static bool is_port_vpn(const flow::FlowRecord& r) noexcept;

  /// True if the record is TCP/443 to or from a domain-identified gateway.
  [[nodiscard]] bool is_domain_vpn(const flow::FlowRecord& r) const noexcept;

  void add(const flow::FlowRecord& r);

  /// Columnar batch path: week lookup through the compiled WeekIndex, port
  /// classification off the batch's service-key column, weekend/hour from
  /// the shared day cache. Same final state as per-record add().
  void add_batch(std::span<const flow::FlowRecord> records,
                 const filter::FlowColumns& cols);

  /// Fold a sibling analyzer (same weeks/candidates) into this one;
  /// exact-integer hourly bins merge order-independently.
  void merge(const VpnAnalyzer& other);

  [[nodiscard]] std::function<void(const flow::FlowRecord&)> sink() {
    return [this](const flow::FlowRecord& r) { add(r); };
  }

  /// Average hourly volume for (method, week, hour-of-day, weekend?),
  /// normalized by the maximum across everything (Fig 10's shared scale).
  struct Profile {
    VpnMethod method = VpnMethod::kPort;
    std::size_t week_index = 0;
    std::array<double, 24> workday{};
    std::array<double, 24> weekend{};
  };
  [[nodiscard]] std::vector<Profile> profiles() const;

  /// Growth of working-hours (9-17h) workday volume of week `w` relative
  /// to week 0, in percent, per method.
  [[nodiscard]] double working_hours_growth(VpnMethod method, std::size_t w) const;

 private:
  std::vector<net::TimeRange> weeks_;
  std::set<net::IpAddress> candidates_;
  WeekIndex week_index_;
  DayFlagsCache day_cache_;
  // bytes_[week][method][weekend][hour]
  std::vector<std::array<std::array<std::array<double, 24>, 2>, 2>> bytes_;
};

}  // namespace lockdown::analysis
