#include "dns/corpus.hpp"

#include <array>
#include <stdexcept>

#include "util/rng.hpp"

namespace lockdown::dns {

namespace {

constexpr std::array<const char*, 24> kOrgStems = {
    "acme",    "globex",   "initech", "umbra",   "vandelay", "hooli",
    "stark",   "wayne",    "tyrell",  "cyberdyne", "aperture", "wonka",
    "oscorp",  "dunder",   "pied",    "massive", "soylent",  "gringott",
    "weyland", "monarch",  "sirius",  "zorin",   "virtucon", "octan"};

constexpr std::array<const char*, 12> kOrgSuffixes = {
    "corp", "group",  "systems", "labs",   "works", "tech",
    "soft", "media",  "logistics", "energy", "bank",  "consulting"};

constexpr std::array<const char*, 8> kTlds = {"com", "net",   "org", "de",
                                              "es",  "co.uk", "eu",  "io"};

// Varied VPN gateway naming patterns seen in real CT logs. All contain
// "vpn" as a substring of some label left of the public suffix.
constexpr std::array<const char*, 8> kVpnPatterns = {
    "vpn",      "vpn2",     "sslvpn", "companyvpn3",
    "vpn-gw",   "remotevpn", "myvpn", "vpn1"};

// Host names that contain "vpn" only incidentally; the substring matcher
// still flags them (conservative direction for the detector).
constexpr std::array<const char*, 3> kDecoyPatterns = {"openvpn-docs", "vpnshop",
                                                       "novpnhere"};

constexpr std::array<const char*, 5> kPlainHosts = {"mail", "portal", "shop",
                                                    "intranet", "api"};

}  // namespace

SyntheticCorpus generate_corpus(const CorpusConfig& config) {
  if (config.address_pools.empty()) {
    throw std::invalid_argument("generate_corpus: empty address pool list");
  }

  util::Rng rng(config.seed);
  SyntheticCorpus corpus;
  std::uint64_t next_host = 1;  // allocation cursor across all pools

  auto allocate_ip = [&]() -> net::IpAddress {
    const auto& pool =
        config.address_pools[next_host % config.address_pools.size()];
    // Skip network/broadcast-ish low addresses for realism.
    const net::Ipv4Address addr = pool.address_at(16 + next_host * 7);
    ++next_host;
    return addr;
  };

  auto register_host = [&](const std::string& fqdn,
                           net::IpAddress ip) -> Domain {
    const auto domain = Domain::parse(fqdn);
    if (!domain) throw std::logic_error("generate_corpus: bad fqdn " + fqdn);
    corpus.domains.push_back(*domain);
    corpus.dns.add(*domain, ip);
    return *domain;
  };

  for (std::size_t i = 0; i < config.organizations; ++i) {
    const std::string stem = kOrgStems[rng.uniform_u64(kOrgStems.size())];
    const std::string suffix = kOrgSuffixes[rng.uniform_u64(kOrgSuffixes.size())];
    const std::string tld = kTlds[rng.uniform_u64(kTlds.size())];
    const std::string registrable =
        stem + "-" + suffix + "-" + std::to_string(i) + "." + tld;

    // Every org has a www host plus a couple of plain services.
    const net::IpAddress www_ip = allocate_ip();
    register_host("www." + registrable, www_ip);
    const std::size_t extra = rng.uniform_u64(3);
    const std::size_t host_offset = rng.uniform_u64(kPlainHosts.size());
    for (std::size_t h = 0; h < extra; ++h) {
      // Distinct host names per organization (offset walk, no repeats).
      register_host(std::string(kPlainHosts[(host_offset + h) % kPlainHosts.size()]) +
                        "." + registrable,
                    allocate_ip());
    }

    if (rng.bernoulli(config.vpn_fraction)) {
      const std::string pattern = kVpnPatterns[rng.uniform_u64(kVpnPatterns.size())];
      if (rng.bernoulli(config.shared_ip_fraction)) {
        // Gateway behind the same front end as www: must be eliminated.
        register_host(pattern + "." + registrable, www_ip);
        corpus.www_shared_vpn_ips.insert(www_ip);
      } else {
        const net::IpAddress vpn_ip = allocate_ip();
        register_host(pattern + "." + registrable, vpn_ip);
        corpus.vpn_gateway_ips.insert(vpn_ip);
      }
    } else if (rng.bernoulli(config.decoy_fraction)) {
      const std::string pattern =
          kDecoyPatterns[rng.uniform_u64(kDecoyPatterns.size())];
      const net::IpAddress ip = allocate_ip();
      register_host(pattern + "." + registrable, ip);
      // Substring semantics: these are legitimate matches of the paper's
      // "*vpn*" filter, hence ground-truth candidates.
      corpus.vpn_gateway_ips.insert(ip);
    } else if (rng.bernoulli(0.10)) {
      // Port-only VPN gateway: IPsec/OpenVPN server with a non-vpn name.
      const net::IpAddress ip = allocate_ip();
      register_host("gw." + registrable, ip);
      corpus.portonly_vpn_ips.insert(ip);
    }
  }
  return corpus;
}

}  // namespace lockdown::dns
