// Synthetic domain corpus generator: stands in for the 2.7B CT-log domains,
// 1.9B Rapid7 forward-DNS names and the Cisco Umbrella toplist the paper
// mined for "*vpn*" labels (§6). The generator produces organizations with
// realistic host name sets (www, mail, portal, ...), a configurable
// fraction of VPN gateways under varied "*vpn*" naming patterns, and --
// crucially -- a fraction of VPN names that share their IP address with the
// organization's www host, which is exactly the misclassification hazard
// the paper's www-collision elimination rule exists for.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dns/domain.hpp"
#include "dns/resolver.hpp"
#include "net/prefix.hpp"

namespace lockdown::dns {

struct CorpusConfig {
  std::uint64_t seed = 1;
  std::size_t organizations = 1000;
  /// Probability that an organization operates a VPN gateway.
  double vpn_fraction = 0.35;
  /// Probability that a VPN gateway name resolves to the same address as
  /// the org's www host (reverse-proxy / shared front end).
  double shared_ip_fraction = 0.15;
  /// Probability of an unrelated host whose name merely *contains* "vpn"
  /// as part of a word ("openvpn-docs", "vpn" inside a product name) --
  /// these are true positives for the *label* matcher by the paper's
  /// definition (substring match), so they count as candidates too.
  double decoy_fraction = 0.05;
  /// Address pools to allocate organization hosts from. Must be non-empty.
  std::vector<net::Ipv4Prefix> address_pools = {
      net::Ipv4Prefix(net::Ipv4Address(203, 0, 0, 0), 10)};
};

/// Generated corpus with ground truth for evaluating the detector.
struct SyntheticCorpus {
  std::vector<Domain> domains;  ///< everything that appeared in CT/FDNS
  DnsDb dns;

  /// Ground truth: addresses of VPN gateways with a dedicated IP.
  std::set<net::IpAddress> vpn_gateway_ips;
  /// Addresses of VPN names that collide with the www host (should be
  /// eliminated by the detector to stay conservative).
  std::set<net::IpAddress> www_shared_vpn_ips;
  /// Port-based-only VPN servers (IPsec/OpenVPN on well-known ports, no
  /// *vpn* DNS name at all) -- invisible to the domain heuristic.
  std::set<net::IpAddress> portonly_vpn_ips;
};

[[nodiscard]] SyntheticCorpus generate_corpus(const CorpusConfig& config);

}  // namespace lockdown::dns
