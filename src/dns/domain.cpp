#include "dns/domain.hpp"

#include "util/strings.hpp"

namespace lockdown::dns {

namespace {

bool valid_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > 63) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<Domain> Domain::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty() || text.size() > 253) return std::nullopt;
  const std::string lower = util::to_lower(text);
  for (const auto label : util::split(lower, '.')) {
    if (!valid_label(label)) return std::nullopt;
  }
  return Domain(lower);
}

std::vector<std::string_view> Domain::labels() const {
  return util::split(name_, '.');
}

std::size_t Domain::label_count() const noexcept {
  if (name_.empty()) return 0;
  std::size_t n = 1;
  for (const char c : name_) {
    if (c == '.') ++n;
  }
  return n;
}

std::string_view Domain::suffix(std::size_t n) const noexcept {
  const std::string_view full(name_);
  if (n == 0) return full.substr(full.size());
  std::size_t dots = 0;
  for (std::size_t i = full.size(); i-- > 0;) {
    if (full[i] == '.') {
      if (++dots == n) return full.substr(i + 1);
    }
  }
  return full;  // n >= label count
}

std::optional<Domain> Domain::with_prefix_label(std::string_view label) const {
  if (empty()) return std::nullopt;
  return parse(std::string(label) + "." + name_);
}

}  // namespace lockdown::dns
