// DNS domain names. Stored lowercase (DNS is case-insensitive) with
// validated label syntax; label access is zero-copy.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lockdown::dns {

class Domain {
 public:
  Domain() = default;

  /// Parse and normalize. Rules: 1-253 chars total, labels of 1-63 chars of
  /// [a-z0-9-] (not starting/ending with '-'), at least one dot-separated
  /// label. A single trailing dot (FQDN form) is accepted and stripped.
  [[nodiscard]] static std::optional<Domain> parse(std::string_view text);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool empty() const noexcept { return name_.empty(); }

  /// Labels left-to-right ("a.b.com" -> ["a","b","com"]). Views into name().
  [[nodiscard]] std::vector<std::string_view> labels() const;

  [[nodiscard]] std::size_t label_count() const noexcept;

  /// The last `n` labels joined ("a.b.com", 2 -> "b.com"); whole domain if
  /// n >= label_count.
  [[nodiscard]] std::string_view suffix(std::size_t n) const noexcept;

  /// New domain with `label` prepended ("www" + "example.com").
  [[nodiscard]] std::optional<Domain> with_prefix_label(std::string_view label) const;

  friend auto operator<=>(const Domain&, const Domain&) = default;

 private:
  explicit Domain(std::string name) : name_(std::move(name)) {}
  std::string name_;
};

struct DomainHash {
  [[nodiscard]] std::size_t operator()(const Domain& d) const noexcept {
    return std::hash<std::string>{}(d.name());
  }
};

}  // namespace lockdown::dns
