#include "dns/public_suffix.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace lockdown::dns {

PublicSuffixList PublicSuffixList::builtin() {
  PublicSuffixList psl;
  psl.load(R"(// built-in mini PSL: suffixes used by the synthetic corpora
com
net
org
edu
gov
int
de
es
eu
us
io
fr
it
nl
ch
at
uk
co.uk
ac.uk
gov.uk
cloud
app
dev
online
site
// wildcard + exception examples (exercise the full algorithm)
*.ck
!www.ck
)");
  return psl;
}

bool PublicSuffixList::add_rule(std::string_view rule) {
  rule = util::trim(rule);
  if (rule.empty()) return false;

  RuleKind kind = RuleKind::kNormal;
  if (rule.front() == '!') {
    kind = RuleKind::kException;
    rule.remove_prefix(1);
  } else if (util::starts_with(rule, "*.")) {
    kind = RuleKind::kWildcard;
    rule.remove_prefix(2);
  }
  const auto domain = Domain::parse(rule);
  if (!domain) return false;
  rules_[domain->name()] = kind;
  return true;
}

void PublicSuffixList::load(std::string_view file_contents) {
  for (const auto line : util::split(file_contents, '\n')) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || util::starts_with(trimmed, "//")) continue;
    (void)add_rule(trimmed);
  }
}

std::size_t PublicSuffixList::public_suffix_labels(const Domain& d) const {
  const std::size_t n = d.label_count();
  std::size_t best = 1;  // fallback rule "*": the TLD is a public suffix

  for (std::size_t k = 1; k <= n; ++k) {
    const auto it = rules_.find(std::string(d.suffix(k)));
    if (it == rules_.end()) continue;
    switch (it->second) {
      case RuleKind::kException:
        // Exception rule prevails immediately; its suffix is one label
        // shorter than the rule itself.
        return k - 1;
      case RuleKind::kNormal:
        best = std::max(best, k);
        break;
      case RuleKind::kWildcard:
        // "*.foo" covers one extra label beyond the stored base, but only
        // if the domain actually has it.
        if (n >= k + 1) best = std::max(best, k + 1);
        // The wildcard's base itself is also a public suffix per PSL
        // semantics (the implicit "foo" entry).
        best = std::max(best, k);
        break;
    }
  }
  return std::min(best, n);
}

std::string PublicSuffixList::public_suffix(const Domain& d) const {
  return std::string(d.suffix(public_suffix_labels(d)));
}

std::optional<Domain> PublicSuffixList::registrable_domain(const Domain& d) const {
  const std::size_t suffix_labels = public_suffix_labels(d);
  if (d.label_count() <= suffix_labels) return std::nullopt;
  return Domain::parse(d.suffix(suffix_labels + 1));
}

std::vector<std::string_view> PublicSuffixList::labels_left_of_suffix(
    const Domain& d) const {
  const std::size_t suffix_labels = public_suffix_labels(d);
  auto labels = d.labels();
  const std::size_t keep = labels.size() - std::min(labels.size(), suffix_labels);
  labels.resize(keep);
  return labels;
}

}  // namespace lockdown::dns
