// Public Suffix List engine (https://publicsuffix.org/ -- paper ref [43]).
// Implements the PSL algorithm: normal rules, wildcard rules ("*.ck") and
// exception rules ("!www.ck"); the longest matching rule wins and the
// registrable domain is the public suffix plus one label.
//
// The paper's VPN heuristic (§6) searches for "*vpn*" in labels *left of
// the public suffix*, which requires exactly this computation.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/domain.hpp"

namespace lockdown::dns {

class PublicSuffixList {
 public:
  /// Empty list: every TLD (last label) acts as the public suffix, which is
  /// the PSL's specified fallback ("the prevailing rule is '*'").
  PublicSuffixList() = default;

  /// A built-in list covering the suffixes our synthetic corpora use (com,
  /// net, org, de, es, eu, uk + co.uk/ac.uk, us, io, cloud, app, edu, ...).
  [[nodiscard]] static PublicSuffixList builtin();

  /// Add one rule in PSL file syntax: "com", "co.uk", "*.ck", "!www.ck".
  /// Returns false (and changes nothing) on malformed input.
  bool add_rule(std::string_view rule);

  /// Load newline-separated rules; '//' comments and blank lines ignored.
  void load(std::string_view file_contents);

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Number of labels in the public suffix of `d` (>= 1 by the fallback
  /// rule; may equal label_count for a bare suffix like "co.uk").
  [[nodiscard]] std::size_t public_suffix_labels(const Domain& d) const;

  /// The public suffix itself ("a.b.co.uk" -> "co.uk").
  [[nodiscard]] std::string public_suffix(const Domain& d) const;

  /// Registrable domain = public suffix + 1 label ("a.b.co.uk" -> "b.co.uk").
  /// nullopt when the whole name is itself a public suffix.
  [[nodiscard]] std::optional<Domain> registrable_domain(const Domain& d) const;

  /// Labels strictly left of the public suffix, left-to-right.
  [[nodiscard]] std::vector<std::string_view> labels_left_of_suffix(const Domain& d) const;

 private:
  enum class RuleKind : std::uint8_t { kNormal, kWildcard, kException };
  // Keyed by the rule's literal label string (wildcard stored without "*.").
  std::unordered_map<std::string, RuleKind> rules_;
};

}  // namespace lockdown::dns
