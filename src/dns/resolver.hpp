// Forward-DNS database: the "resolve all matching domains" step of the
// paper's VPN heuristic needs an A-record source. In the paper this was
// live resolution of 3M candidate domains; here it is a deterministic map
// populated by the synthetic corpus generator.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "dns/domain.hpp"
#include "net/ip.hpp"

namespace lockdown::dns {

class DnsDb {
 public:
  void add(const Domain& domain, net::IpAddress address) {
    records_[domain].push_back(address);
  }

  /// A-records for `domain` (empty if NXDOMAIN).
  [[nodiscard]] std::span<const net::IpAddress> resolve(const Domain& domain) const {
    const auto it = records_.find(domain);
    if (it == records_.end()) return {};
    return it->second;
  }

  [[nodiscard]] bool exists(const Domain& domain) const {
    return records_.contains(domain);
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<Domain, std::vector<net::IpAddress>, DomainHash> records_;
};

}  // namespace lockdown::dns
