#include "dns/vpn_finder.hpp"

#include "util/strings.hpp"

namespace lockdown::dns {

bool VpnCandidateFinder::matches(const Domain& domain) const {
  const auto left = psl_.labels_left_of_suffix(domain);
  if (left.empty()) return false;
  // "labeled as *vpn* but not as www." -- the paper excludes www hosts.
  if (left.front() == "www") return false;
  for (const auto label : left) {
    if (util::contains(label, needle_)) return true;
  }
  return false;
}

VpnCandidateResult VpnCandidateFinder::find(std::span<const Domain> corpus,
                                            const DnsDb& dns) const {
  VpnCandidateResult result;

  // Step 1 + 2: match and resolve.
  std::vector<const Domain*> matched;
  for (const Domain& d : corpus) {
    if (!matches(d)) continue;
    ++result.matched_domains;
    matched.push_back(&d);
    for (const net::IpAddress& ip : dns.resolve(d)) {
      result.candidate_ips.insert(ip);
    }
  }
  result.resolved_ips = result.candidate_ips.size();

  // Step 3: eliminate addresses shared with the www host of the same
  // registrable domain.
  for (const Domain* d : matched) {
    const auto registrable = psl_.registrable_domain(*d);
    if (!registrable) continue;
    const auto www = registrable->with_prefix_label("www");
    if (!www) continue;
    for (const net::IpAddress& www_ip : dns.resolve(*www)) {
      if (result.candidate_ips.erase(www_ip) > 0) {
        ++result.eliminated_shared_ips;
      }
    }
  }
  return result;
}

}  // namespace lockdown::dns
