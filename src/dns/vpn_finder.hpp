// The paper's §6 domain-based VPN identification, verbatim:
//
//   1. Search every corpus domain for "vpn" as a substring of any label
//      left of the public suffix (e.g. companyvpn3.example.com), excluding
//      names whose host label is exactly "www".
//   2. Resolve all matching domains to candidate IP addresses.
//   3. For each match, also resolve www.<registrable domain>; if the
//      candidate shares an address with the www host, eliminate that
//      address (conservative estimate: do not claim Web front ends).
//   4. Classify TCP/443 traffic towards the surviving candidates as VPN.
//
// Step 4 lives in analysis::VpnAnalyzer; this class produces the candidate
// address set and bookkeeping statistics.
#pragma once

#include <set>
#include <span>
#include <string>

#include "dns/domain.hpp"
#include "dns/public_suffix.hpp"
#include "dns/resolver.hpp"

namespace lockdown::dns {

struct VpnCandidateResult {
  std::set<net::IpAddress> candidate_ips;

  // Statistics mirroring the paper's reported funnel (3M candidate IPs ->
  // 1.7M after removing shared addresses).
  std::size_t matched_domains = 0;
  std::size_t resolved_ips = 0;          ///< before www elimination
  std::size_t eliminated_shared_ips = 0; ///< removed by the www rule
};

class VpnCandidateFinder {
 public:
  explicit VpnCandidateFinder(const PublicSuffixList& psl,
                              std::string needle = "vpn")
      : psl_(psl), needle_(std::move(needle)) {}

  /// True if `domain` matches the *vpn* filter (step 1 above).
  [[nodiscard]] bool matches(const Domain& domain) const;

  /// Run the full funnel over a corpus.
  [[nodiscard]] VpnCandidateResult find(std::span<const Domain> corpus,
                                        const DnsDb& dns) const;

 private:
  const PublicSuffixList& psl_;
  std::string needle_;
};

}  // namespace lockdown::dns
