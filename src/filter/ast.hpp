// Filter DSL syntax tree: boolean expressions over flow-record fields
// (protocol, ports, CIDR prefixes, origin ASes, TCP flags, volume/rate
// thresholds). The parser (parser.hpp) produces this tree; the compiler
// (plan.hpp) lowers it to a flat step array and also keeps it around as
// the tree-walking reference interpreter pinned by differential fuzz.
//
// Every node carries the source location of its first token so compile-time
// diagnostics (parse errors, always-false conjunctions) can point at the
// offending characters -- DESIGN.md §12.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "net/prefix.hpp"

namespace lockdown::filter {

/// 1-based position inside a filter expression (multi-line sources come
/// from --monitor-file).
struct SourceLoc {
  std::uint32_t line = 1;
  std::uint32_t column = 1;

  friend constexpr auto operator<=>(const SourceLoc&, const SourceLoc&) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// Any lexing/parsing/compilation failure. what() is "<line>:<col>: detail"
/// (prefixed with an origin such as a monitor-file name when one is known);
/// loc() and detail() let tests assert exact positions.
class FilterError : public std::runtime_error {
 public:
  FilterError(SourceLoc loc, std::string detail, std::string_view origin = {})
      : std::runtime_error((origin.empty() ? std::string()
                                           : std::string(origin) + ":") +
                           loc.to_string() + ": " + detail),
        loc_(loc),
        detail_(std::move(detail)) {}

  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  SourceLoc loc_;
  std::string detail_;
};

/// Which endpoint a port/net/asn term constrains. kEither means "src or
/// dst" for net/asn terms; for port terms it means the flow's *service*
/// port (FlowRecord::service_port -- the numerically smaller non-zero
/// port), matching how the paper's §4/§5 port aggregations and the
/// AppClassifier treat bidirectional traffic.
enum class Direction : std::uint8_t { kSrc, kDst, kEither };

[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kSrc: return "src";
    case Direction::kDst: return "dst";
    case Direction::kEither: return "";
  }
  return "?";
}

enum class CmpOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] constexpr const char* to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}

/// Threshold axis of a rate term. kBps/kPps divide by the flow's active
/// duration (max(1s, last - first)); kBytes/kPackets compare the raw
/// counters.
enum class RateField : std::uint8_t { kBytes, kPackets, kBps, kPps };

[[nodiscard]] constexpr const char* to_string(RateField f) noexcept {
  switch (f) {
    case RateField::kBytes: return "bytes";
    case RateField::kPackets: return "packets";
    case RateField::kBps: return "bps";
    case RateField::kPps: return "pps";
  }
  return "?";
}

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// `proto tcp,udp` / `proto 47`. Values are raw IANA protocol numbers so
/// filters can name protocols beyond the IpProtocol enum.
struct ProtoPred {
  std::vector<std::uint8_t> protos;
};

/// `port 443` / `src port 1024-65535` / `dst port 443,8443`. Inclusive
/// ranges; single ports are degenerate ranges.
struct PortPred {
  Direction dir = Direction::kEither;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> ranges;
};

/// `net 198.51.100.0/24` / `src net 10.0.0.0/8,2001:db8::/32`.
struct NetPred {
  Direction dir = Direction::kEither;
  std::vector<net::Ipv4Prefix> v4;
  std::vector<net::Ipv6Prefix> v6;
};

/// `asn 3320` / `dst asn 15169,AS32934`. Endpoint ASes resolve like
/// analysis::AsView: exporter annotation first, prefix-trie fallback.
struct AsnPred {
  Direction dir = Direction::kEither;
  std::vector<std::uint32_t> asns;
};

/// `tcp-flags syn,ack` (all named bits set) / `tcp-flags any rst,fin`
/// (at least one set) / `tcp-flags 0x12`. Implies proto == TCP.
struct TcpFlagsPred {
  std::uint8_t mask = 0;
  bool any = false;
};

/// `bytes > 1m` / `pps <= 100`. k/m/g suffixes scale by 1e3/1e6/1e9.
struct RatePred {
  RateField field = RateField::kBytes;
  CmpOp op = CmpOp::kGt;
  double value = 0.0;
};

struct NotExpr {
  ExprPtr operand;
};

struct AndExpr {
  ExprPtr lhs;
  ExprPtr rhs;
};

struct OrExpr {
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Expr {
  SourceLoc loc;
  std::variant<ProtoPred, PortPred, NetPred, AsnPred, TcpFlagsPred, RatePred,
               NotExpr, AndExpr, OrExpr>
      node;
};

[[nodiscard]] inline ExprPtr make_expr(SourceLoc loc, auto&& node) {
  return std::make_unique<Expr>(
      Expr{loc, std::forward<decltype(node)>(node)});
}

}  // namespace lockdown::filter
