#include "filter/lexer.hpp"

#include <cctype>
#include <string>

namespace lockdown::filter {

namespace {

[[nodiscard]] bool is_atom_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == ':' || c == '-';
}

[[nodiscard]] std::string printable(char c) {
  if (std::isprint(static_cast<unsigned char>(c)) != 0) {
    return std::string("'") + c + "'";
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02x", static_cast<unsigned char>(c));
  return buf;
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  SourceLoc loc;
  std::size_t i = 0;
  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++loc.line;
        loc.column = 1;
      } else {
        ++loc.column;
      }
    }
    i += n;
  };
  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#') {  // comment to end of line
      std::size_t n = 1;
      while (i + n < source.size() && source[i + n] != '\n') ++n;
      advance(n);
      continue;
    }
    const SourceLoc at = loc;
    if (c == '(' || c == ')' || c == ',' || c == '/') {
      const TokKind kind = c == '(' ? TokKind::kLParen
                           : c == ')' ? TokKind::kRParen
                           : c == ',' ? TokKind::kComma
                                      : TokKind::kSlash;
      out.push_back({kind, source.substr(i, 1), at});
      advance(1);
      continue;
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      const bool two = i + 1 < source.size() && source[i + 1] == '=';
      if (c == '!' && !two) {
        throw FilterError(at, "unexpected character '!' (did you mean '!='?)");
      }
      out.push_back({TokKind::kCmp, source.substr(i, two ? 2 : 1), at});
      advance(two ? 2 : 1);
      continue;
    }
    if (is_atom_char(c)) {
      std::size_t n = 1;
      while (i + n < source.size() && is_atom_char(source[i + n])) ++n;
      out.push_back({TokKind::kAtom, source.substr(i, n), at});
      advance(n);
      continue;
    }
    throw FilterError(at, "unexpected character " + printable(c));
  }
  out.push_back({TokKind::kEnd, std::string_view{}, loc});
  return out;
}

}  // namespace lockdown::filter
