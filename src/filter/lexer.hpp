// Filter DSL tokenizer. Atoms are maximal runs of [A-Za-z0-9_.:-] so port
// ranges ("27000-27031"), dotted quads, IPv6 literals ("2001:db8::") and
// hyphenated keywords ("tcp-flags") each arrive as one token; punctuation
// is limited to parentheses, the list comma, the CIDR slash and comparison
// operators. '#' starts a comment running to end of line (monitor files).
// Every token carries its 1-based line/column for source-located errors.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "filter/ast.hpp"

namespace lockdown::filter {

enum class TokKind : std::uint8_t {
  kAtom,    // keyword, number, address, range, ...
  kLParen,  // (
  kRParen,  // )
  kComma,   // ,
  kSlash,   // /
  kCmp,     // < <= > >= = == !=
  kEnd,     // end of input (loc = one past the last character)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string_view text;  ///< view into the lexed source
  SourceLoc loc;
};

/// Tokenize `source`. Always ends with a kEnd token. Throws FilterError on
/// characters outside the language.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace lockdown::filter
