#include "filter/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lockdown::filter {

namespace {

constexpr std::string_view kFlowsMetric = "monitor_matched_flows_total";
constexpr std::string_view kBytesMetric = "monitor_matched_bytes_total";
constexpr std::string_view kPacketsMetric = "monitor_matched_packets_total";

[[nodiscard]] std::string object_label(std::string_view name) {
  return "object=\"" + std::string(name) + "\"";
}

[[nodiscard]] bool valid_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

MonitoringObject& MonitorSet::add(std::string_view name,
                                  std::string_view expression) {
  if (name.empty() ||
      !std::all_of(name.begin(), name.end(), valid_name_char)) {
    throw std::invalid_argument(
        "monitoring object name '" + std::string(name) +
        "' is empty or contains characters outside [A-Za-z0-9_.-]");
  }
  if (find(name) != nullptr) {
    // Same contract as AppClassifier's duplicate AppFilter rejection.
    throw std::invalid_argument("monitoring object '" + std::string(name) +
                                "' registered twice");
  }
  CompiledFilter filter = CompiledFilter::compile(expression, trie_);
  objects_.push_back(std::unique_ptr<MonitoringObject>(
      new MonitoringObject(std::string(name), std::move(filter))));
  MonitoringObject& obj = *objects_.back();
  if (registry_ != nullptr) {
    obj.flow_counter_ = &registry_->counter(
        kFlowsMetric, object_label(obj.name_),
        "Flows matched per monitoring object (sampler-rescaled)");
    obj.byte_counter_ = &registry_->counter(
        kBytesMetric, object_label(obj.name_),
        "Bytes matched per monitoring object (sampler-rescaled)");
    obj.packet_counter_ = &registry_->counter(
        kPacketsMetric, object_label(obj.name_),
        "Packets matched per monitoring object (sampler-rescaled)");
  }
  return obj;
}

void MonitorSet::add_definitions(std::string_view text,
                                 std::string_view origin) {
  std::uint32_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string_view raw = text.substr(pos, eol - pos);
    ++line_no;
    const std::string_view line = trim(raw);
    if (!line.empty() && line.front() != '#') {
      const std::size_t eq = raw.find('=');
      if (eq == std::string_view::npos) {
        throw FilterError({line_no, 1},
                          "expected a 'name = expression' definition", origin);
      }
      const std::string_view name = trim(raw.substr(0, eq));
      const std::string_view expr = raw.substr(eq + 1);
      try {
        add(name, expr);
      } catch (const FilterError& e) {
        // Re-anchor the expression-relative position (always line 1: the
        // definition format is one line per object) into the file.
        SourceLoc loc{line_no, static_cast<std::uint32_t>(eq + 1) +
                                   e.loc().column};
        throw FilterError(loc, e.detail(), origin);
      } catch (const std::invalid_argument& e) {
        // Name problems (duplicate registration, invalid characters) throw
        // invalid_argument from add(); anchor them to the name's first
        // character so a --monitor-file load reports file and line too.
        const std::size_t name_start = raw.find_first_not_of(" \t");
        SourceLoc loc{line_no,
                      name_start == std::string_view::npos
                          ? 1
                          : static_cast<std::uint32_t>(name_start + 1)};
        throw FilterError(loc, e.what(), origin);
      }
    }
    pos = eol + 1;
  }
}

void MonitorSet::route_batch(std::span<const flow::FlowRecord> records) {
  if (records.empty() || objects_.empty()) return;
  thread_local std::vector<std::uint8_t> hits;
  thread_local FlowColumns cols;
  hits.resize(records.size());
  // Service keys and resolved endpoint ASes are filter-independent; derive
  // them once per batch and share them with every object's plan.
  cols.build(records, trie_);
  for (const auto& obj : objects_) {
    obj->filter_.match_batch(records, hits, cols);
    std::uint64_t flows = 0;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (hits[i] == 0) continue;
      ++flows;
      bytes += records[i].bytes;
      packets += records[i].packets;
    }
    if (obj->batch_hook_) {
      // Even a zero-hit batch goes through: the hook may drive time-based
      // state (window rotation) off record timestamps.
      obj->batch_hook_(records,
                       std::span<const std::uint8_t>(hits.data(),
                                                     records.size()),
                       cols);
    }
    if (flows == 0) continue;
    if (flow_scale_ != 1.0) {
      flows = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(flows) * flow_scale_));
    }
    obj->flows_.fetch_add(flows, std::memory_order_relaxed);
    obj->bytes_.fetch_add(bytes, std::memory_order_relaxed);
    obj->packets_.fetch_add(packets, std::memory_order_relaxed);
    if (obj->flow_counter_ != nullptr) {
      obj->flow_counter_->add(flows);
      obj->byte_counter_->add(bytes);
      obj->packet_counter_->add(packets);
    }
  }
}

void MonitorSet::bind_metrics(obs::Registry& registry) {
  if (registry_ != nullptr) unbind_metrics();
  registry_ = &registry;
  for (const auto& obj : objects_) {
    obj->flow_counter_ = &registry.counter(
        kFlowsMetric, object_label(obj->name_),
        "Flows matched per monitoring object (sampler-rescaled)");
    obj->byte_counter_ = &registry.counter(
        kBytesMetric, object_label(obj->name_),
        "Bytes matched per monitoring object (sampler-rescaled)");
    obj->packet_counter_ = &registry.counter(
        kPacketsMetric, object_label(obj->name_),
        "Packets matched per monitoring object (sampler-rescaled)");
    // Catch up on anything routed before binding so the exposed counter
    // equals the object's lifetime total.
    obj->flow_counter_->add(obj->flows());
    obj->byte_counter_->add(obj->bytes());
    obj->packet_counter_->add(obj->packets());
  }
}

void MonitorSet::unbind_metrics() {
  if (registry_ == nullptr) return;
  for (const auto& obj : objects_) {
    obj->flow_counter_ = nullptr;
    obj->byte_counter_ = nullptr;
    obj->packet_counter_ = nullptr;
    registry_->remove_counter(kFlowsMetric, object_label(obj->name_));
    registry_->remove_counter(kBytesMetric, object_label(obj->name_));
    registry_->remove_counter(kPacketsMetric, object_label(obj->name_));
  }
  registry_ = nullptr;
}

const MonitoringObject* MonitorSet::find(std::string_view name) const {
  for (const auto& obj : objects_) {
    if (obj->name_ == name) return obj.get();
  }
  return nullptr;
}

}  // namespace lockdown::filter
