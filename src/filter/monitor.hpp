// Monitoring objects: named compiled filters that every decoded flow batch
// is routed through (xenoeye-style monitoring objects, DESIGN.md §12).
// Each object keeps flows/bytes/packets totals of the records its filter
// matched; a batch is routed to *every* matching object, so overlapping
// objects each see the full traffic they describe.
//
// Thread model: add()/bind_metrics()/unbind_metrics() are wiring-time and
// single-threaded; route_batch() may then be called concurrently from any
// number of threads (the sharded daemon's workers call it per shard batch).
// Counters are relaxed atomics, so sharded totals equal the single-threaded
// daemon's for any source mix -- sums are commutative.
//
// Sampler rescaling contract: the flow::sampler stages rescale
// bytes/packets inside each surviving record (and the collector daemons
// can do the same for header-announced intervals via rescale_sampled), so
// those counters are rescaled by construction. Flow *counts* under 1-in-N
// flow sampling are undercounted by N; set set_flow_scale(N) to rescale
// them the same way -- live_collector wires this from --flow-sampling.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "filter/plan.hpp"
#include "flow/flow_record.hpp"
#include "obs/metrics.hpp"

namespace lockdown::filter {

class MonitorSet;

class MonitoringObject {
 public:
  /// Per-batch observer: the records just routed, this object's hit mask
  /// (aligned with `records`, 1 = matched), and the batch's shared derived
  /// columns. Called from route_batch on every batch -- possibly with zero
  /// hits -- on whichever thread routed it, so hooks must be thread-safe
  /// (the streaming window aggregator is). The spans/columns are only
  /// valid for the duration of the call.
  using BatchHook = std::function<void(std::span<const flow::FlowRecord>,
                                       std::span<const std::uint8_t>,
                                       const FlowColumns&)>;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const CompiledFilter& filter() const noexcept { return filter_; }

  /// Wiring-time only (must not race route_batch). One hook per object;
  /// pass an empty function to detach.
  void set_batch_hook(BatchHook hook) { batch_hook_ = std::move(hook); }
  [[nodiscard]] bool has_batch_hook() const noexcept {
    return static_cast<bool>(batch_hook_);
  }

  [[nodiscard]] std::uint64_t flows() const noexcept {
    return flows_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }

 private:
  friend class MonitorSet;
  MonitoringObject(std::string name, CompiledFilter filter)
      : name_(std::move(name)), filter_(std::move(filter)) {}

  std::string name_;
  CompiledFilter filter_;
  BatchHook batch_hook_;
  std::atomic<std::uint64_t> flows_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> packets_{0};
  // Bound /metrics mirrors (null when not bound).
  obs::Counter* flow_counter_ = nullptr;
  obs::Counter* byte_counter_ = nullptr;
  obs::Counter* packet_counter_ = nullptr;
};

class MonitorSet {
 public:
  /// `trie` is handed to every compiled filter for asn-term resolution
  /// (may be null; must outlive the set).
  explicit MonitorSet(const AsnTrie* trie = nullptr) : trie_(trie) {}

  /// Compile `expression` and register it under `name`. Throws FilterError
  /// for expression problems and std::invalid_argument for name problems
  /// (duplicate registration, invalid characters) -- the same contract as
  /// AppClassifier's duplicate-filter rejection.
  MonitoringObject& add(std::string_view name, std::string_view expression);

  /// Parse `name = expression` definition lines (one per line; blank lines
  /// and '#' comments ignored) -- the --monitor-file format. Every failure
  /// -- expression errors and name problems (duplicate, invalid
  /// characters) alike -- throws FilterError anchored to the offending
  /// file line; `origin` is prefixed to positions ("monitors.conf:3:14:").
  void add_definitions(std::string_view text, std::string_view origin);

  /// Match `records` against every object and accumulate per-object
  /// flow/byte/packet totals (and their bound /metrics mirrors).
  void route_batch(std::span<const flow::FlowRecord> records);

  /// Span-shaped sink matching flow::Collector::BatchSink, for wiring as a
  /// daemon batch observer.
  [[nodiscard]] std::function<void(std::span<const flow::FlowRecord>)>
  batch_sink() {
    return [this](std::span<const flow::FlowRecord> batch) {
      route_batch(batch);
    };
  }

  /// Register one counter bundle per object in `registry`
  /// (monitor_matched_{flows,bytes,packets}_total{object="<name>"}) and
  /// seed it with counts accumulated so far. The registry must stay alive
  /// until unbind_metrics().
  void bind_metrics(obs::Registry& registry);

  /// Remove this set's counters from the bound registry (clean daemon
  /// shutdown: a later /metrics scrape no longer shows the objects). Must
  /// not race route_batch() -- stop the daemon first.
  void unbind_metrics();

  /// Rescale factor for matched-flow counts under 1-in-N flow sampling.
  void set_flow_scale(double scale) noexcept { flow_scale_ = scale; }

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] bool empty() const noexcept { return objects_.empty(); }
  [[nodiscard]] const MonitoringObject* find(std::string_view name) const;
  [[nodiscard]] auto begin() const noexcept { return objects_.begin(); }
  [[nodiscard]] auto end() const noexcept { return objects_.end(); }

 private:
  const AsnTrie* trie_;
  // unique_ptr: objects hold atomics (not movable) and handed-out
  // references must survive vector growth.
  std::vector<std::unique_ptr<MonitoringObject>> objects_;
  obs::Registry* registry_ = nullptr;
  double flow_scale_ = 1.0;
};

}  // namespace lockdown::filter
