#include "filter/parser.hpp"

#include <charconv>
#include <string>

#include "filter/lexer.hpp"

namespace lockdown::filter {

namespace {

[[nodiscard]] std::string quoted(const Token& t) {
  if (t.kind == TokKind::kEnd) return "end of expression";
  std::string out;
  out.reserve(t.text.size() + 2);
  out += '\'';
  out += t.text;
  out += '\'';
  return out;
}

[[nodiscard]] bool all_digits(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Case-insensitive ASCII comparison (keywords are lowercase; values like
/// "AS3320" or "0X12" are accepted in either case).
[[nodiscard]] bool ieq(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

struct Parser {
  std::vector<Token> toks;
  std::size_t pos = 0;

  [[nodiscard]] const Token& peek() const { return toks[pos]; }
  const Token& take() { return toks[pos == toks.size() - 1 ? pos : pos++]; }

  [[nodiscard]] bool at_keyword(std::string_view kw) const {
    return peek().kind == TokKind::kAtom && peek().text == kw;
  }

  [[noreturn]] void fail(const Token& t, std::string detail) const {
    throw FilterError(t.loc, std::move(detail));
  }

  // ---- value parsing -----------------------------------------------------

  [[nodiscard]] std::uint64_t parse_uint(const Token& t, std::string_view what,
                                         std::uint64_t max) {
    if (!all_digits(t.text)) {
      fail(t, "expected " + std::string(what) + ", got " + quoted(t));
    }
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
    if (ec != std::errc{} || p != t.text.data() + t.text.size() || v > max) {
      fail(t, std::string(what) + " " + std::string(t.text) +
                  " out of range (max " + std::to_string(max) + ")");
    }
    return v;
  }

  [[nodiscard]] std::uint8_t parse_proto_item(const Token& t) {
    if (ieq(t.text, "tcp")) return 6;
    if (ieq(t.text, "udp")) return 17;
    if (ieq(t.text, "icmp")) return 1;
    if (ieq(t.text, "gre")) return 47;
    if (ieq(t.text, "esp")) return 50;
    if (all_digits(t.text)) {
      return static_cast<std::uint8_t>(parse_uint(t, "protocol number", 255));
    }
    fail(t, "unknown protocol " + quoted(t) +
                " (expected tcp, udp, icmp, gre, esp or a number)");
  }

  void parse_port_item(PortPred& pred) {
    const Token& t = take();
    if (t.kind != TokKind::kAtom) {
      fail(t, "expected a port number or range, got " + quoted(t));
    }
    const std::size_t dash = t.text.find('-');
    if (dash == std::string_view::npos) {
      const auto v = parse_uint(t, "port", 65535);
      pred.ranges.emplace_back(static_cast<std::uint16_t>(v),
                               static_cast<std::uint16_t>(v));
      return;
    }
    Token lo = t, hi = t;
    lo.text = t.text.substr(0, dash);
    hi.text = t.text.substr(dash + 1);
    hi.loc.column += static_cast<std::uint32_t>(dash + 1);
    const auto l = parse_uint(lo, "port", 65535);
    const auto h = parse_uint(hi, "port", 65535);
    if (l > h) {
      fail(t, "empty port range " + std::string(t.text) + " (low > high)");
    }
    pred.ranges.emplace_back(static_cast<std::uint16_t>(l),
                             static_cast<std::uint16_t>(h));
  }

  void parse_cidr_item(NetPred& pred) {
    const Token& addr = take();
    if (addr.kind != TokKind::kAtom) {
      fail(addr, "expected an IPv4/IPv6 address or prefix, got " + quoted(addr));
    }
    const bool v6 = addr.text.find(':') != std::string_view::npos;
    std::uint64_t length = v6 ? 128 : 32;
    if (peek().kind == TokKind::kSlash) {
      take();
      const Token& len = take();
      length = parse_uint(len, "prefix length", v6 ? 128 : 32);
    }
    if (v6) {
      const auto parsed = net::Ipv6Address::parse(addr.text);
      if (!parsed) fail(addr, "malformed IPv6 address " + quoted(addr));
      const auto norm =
          net::Ipv6Prefix::containing(*parsed, static_cast<std::uint8_t>(length));
      if (!(norm.network() == *parsed)) {
        fail(addr, "host bits set in " + std::string(addr.text) + "/" +
                       std::to_string(length) + " (the enclosing network is " +
                       norm.to_string() + ")");
      }
      pred.v6.push_back(norm);
    } else {
      const auto parsed = net::Ipv4Address::parse(addr.text);
      if (!parsed) fail(addr, "malformed IPv4 address " + quoted(addr));
      const auto norm =
          net::Ipv4Prefix::containing(*parsed, static_cast<std::uint8_t>(length));
      if (!(norm.network() == *parsed)) {
        fail(addr, "host bits set in " + std::string(addr.text) + "/" +
                       std::to_string(length) + " (the enclosing network is " +
                       norm.to_string() + ")");
      }
      pred.v4.push_back(norm);
    }
  }

  void parse_asn_item(AsnPred& pred) {
    Token t = take();
    if (t.kind != TokKind::kAtom) {
      fail(t, "expected an AS number, got " + quoted(t));
    }
    if (t.text.size() > 2 && ieq(t.text.substr(0, 2), "as")) {
      t.text = t.text.substr(2);
      t.loc.column += 2;
    }
    pred.asns.push_back(
        static_cast<std::uint32_t>(parse_uint(t, "AS number", 0xffffffffULL)));
  }

  [[nodiscard]] std::uint8_t parse_flag_item(const Token& t) {
    if (ieq(t.text, "fin")) return 0x01;
    if (ieq(t.text, "syn")) return 0x02;
    if (ieq(t.text, "rst")) return 0x04;
    if (ieq(t.text, "psh")) return 0x08;
    if (ieq(t.text, "ack")) return 0x10;
    if (ieq(t.text, "urg")) return 0x20;
    if (ieq(t.text, "ece")) return 0x40;
    if (ieq(t.text, "cwr")) return 0x80;
    fail(t, "unknown TCP flag " + quoted(t) +
                " (expected fin, syn, rst, psh, ack, urg, ece or cwr)");
  }

  [[nodiscard]] double parse_number(const Token& t) {
    std::string_view s = t.text;
    double scale = 1.0;
    if (!s.empty()) {
      const char last = static_cast<char>(
          std::tolower(static_cast<unsigned char>(s.back())));
      if (last == 'k') scale = 1e3;
      if (last == 'm') scale = 1e6;
      if (last == 'g') scale = 1e9;
      if (scale != 1.0) s.remove_suffix(1);
    }
    double v = 0.0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (s.empty() || ec != std::errc{} || p != s.data() + s.size() || v < 0) {
      fail(t, "expected a number, got " + quoted(t));
    }
    return v * scale;
  }

  // ---- terms -------------------------------------------------------------

  /// Comma-separated list of `item(...)` calls. The leading keyword has
  /// been consumed; the first item is mandatory.
  template <typename Fn>
  void parse_list(Fn&& item) {
    item();
    while (peek().kind == TokKind::kComma) {
      take();
      item();
    }
  }

  [[nodiscard]] ExprPtr parse_directed_term(SourceLoc loc, Direction dir) {
    const Token& kw = take();
    if (kw.kind == TokKind::kAtom && kw.text == "port") {
      PortPred pred{dir, {}};
      parse_list([&] { parse_port_item(pred); });
      return make_expr(loc, std::move(pred));
    }
    if (kw.kind == TokKind::kAtom && kw.text == "net") {
      NetPred pred{dir, {}, {}};
      parse_list([&] { parse_cidr_item(pred); });
      return make_expr(loc, std::move(pred));
    }
    if (kw.kind == TokKind::kAtom && kw.text == "asn") {
      AsnPred pred{dir, {}};
      parse_list([&] { parse_asn_item(pred); });
      return make_expr(loc, std::move(pred));
    }
    if (dir != Direction::kEither) {
      fail(kw, "expected 'port', 'net' or 'asn' after '" +
                   std::string(to_string(dir)) + "', got " + quoted(kw));
    }
    fail(kw, "expected a filter term, got " + quoted(kw));
  }

  [[nodiscard]] ExprPtr parse_term() {
    const Token& t = peek();
    const SourceLoc loc = t.loc;
    if (t.kind != TokKind::kAtom) {
      fail(t, "expected a filter term, got " + quoted(t));
    }
    if (t.text == "src" || t.text == "dst") {
      const Direction dir = t.text == "src" ? Direction::kSrc : Direction::kDst;
      take();
      return parse_directed_term(loc, dir);
    }
    if (t.text == "port" || t.text == "net" || t.text == "asn") {
      return parse_directed_term(loc, Direction::kEither);
    }
    if (t.text == "proto") {
      take();
      ProtoPred pred;
      parse_list([&] {
        const Token& item = take();
        if (item.kind != TokKind::kAtom) {
          fail(item, "expected a protocol name, got " + quoted(item));
        }
        pred.protos.push_back(parse_proto_item(item));
      });
      return make_expr(loc, std::move(pred));
    }
    if (t.text == "tcp-flags") {
      take();
      TcpFlagsPred pred;
      if (at_keyword("any")) {
        take();
        pred.any = true;
      }
      const Token& first = peek();
      if (first.kind == TokKind::kAtom &&
          (all_digits(first.text) ||
           (first.text.size() > 2 && ieq(first.text.substr(0, 2), "0x")))) {
        const Token num = take();
        std::uint64_t v = 0;
        std::string_view s = num.text;
        const int base = all_digits(s) ? 10 : 16;
        if (base == 16) s = s.substr(2);
        const auto [p, ec] =
            std::from_chars(s.data(), s.data() + s.size(), v, base);
        if (ec != std::errc{} || p != s.data() + s.size() || v > 0xff) {
          fail(num, "TCP flag mask " + std::string(num.text) +
                        " out of range (max 0xff)");
        }
        pred.mask = static_cast<std::uint8_t>(v);
      } else {
        parse_list([&] {
          const Token& item = take();
          if (item.kind != TokKind::kAtom) {
            fail(item, "expected a TCP flag name, got " + quoted(item));
          }
          pred.mask |= parse_flag_item(item);
        });
      }
      if (pred.mask == 0) {
        fail(t, "tcp-flags mask is empty (matches nothing)");
      }
      return make_expr(loc, pred);
    }
    if (t.text == "bytes" || t.text == "packets" || t.text == "bps" ||
        t.text == "pps") {
      RatePred pred;
      pred.field = t.text == "bytes"     ? RateField::kBytes
                   : t.text == "packets" ? RateField::kPackets
                   : t.text == "bps"     ? RateField::kBps
                                         : RateField::kPps;
      take();
      const Token& op = take();
      if (op.kind != TokKind::kCmp) {
        fail(op, "expected a comparison operator after '" + std::string(t.text) +
                     "', got " + quoted(op));
      }
      pred.op = op.text == "<"    ? CmpOp::kLt
                : op.text == "<=" ? CmpOp::kLe
                : op.text == ">"  ? CmpOp::kGt
                : op.text == ">=" ? CmpOp::kGe
                : op.text == "!=" ? CmpOp::kNe
                                  : CmpOp::kEq;  // "=" and "=="
      const Token& num = take();
      if (num.kind != TokKind::kAtom) {
        fail(num, "expected a number, got " + quoted(num));
      }
      pred.value = parse_number(num);
      return make_expr(loc, pred);
    }
    fail(t, "expected a filter term, got " + quoted(t));
  }

  // ---- expression structure ----------------------------------------------

  [[nodiscard]] ExprPtr parse_unary() {
    const Token& t = peek();
    if (at_keyword("not")) {
      const SourceLoc loc = take().loc;
      return make_expr(loc, NotExpr{parse_unary()});
    }
    if (t.kind == TokKind::kLParen) {
      take();
      ExprPtr inner = parse_or();
      const Token& close = take();
      if (close.kind != TokKind::kRParen) {
        fail(close, "expected ')' to close '(' at " + t.loc.to_string() +
                        ", got " + quoted(close));
      }
      return inner;
    }
    return parse_term();
  }

  [[nodiscard]] ExprPtr parse_and() {
    ExprPtr lhs = parse_unary();
    while (at_keyword("and")) {
      const SourceLoc loc = take().loc;
      ExprPtr rhs = parse_unary();
      lhs = make_expr(loc, AndExpr{std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  [[nodiscard]] ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at_keyword("or")) {
      const SourceLoc loc = take().loc;
      ExprPtr rhs = parse_and();
      lhs = make_expr(loc, OrExpr{std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }
};

}  // namespace

ExprPtr parse_filter(std::string_view source) {
  Parser p{lex(source)};
  if (p.peek().kind == TokKind::kEnd) {
    throw FilterError(p.peek().loc, "empty filter expression");
  }
  ExprPtr root = p.parse_or();
  const Token& rest = p.peek();
  if (rest.kind != TokKind::kEnd) {
    throw FilterError(rest.loc, "expected 'and', 'or' or end of expression, got " +
                                    quoted(rest));
  }
  return root;
}

}  // namespace lockdown::filter
