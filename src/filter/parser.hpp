// Recursive-descent parser for the filter DSL (grammar in DESIGN.md §12):
//
//   expr    := or
//   or      := and ("or" and)*
//   and     := unary ("and" unary)*
//   unary   := "not" unary | "(" expr ")" | term
//   term    := ["src"|"dst"] "port" port-list
//            | ["src"|"dst"] "net" cidr-list
//            | ["src"|"dst"] "asn" asn-list
//            | "proto" proto-list
//            | "tcp-flags" ["any"] flag-list
//            | ("bytes"|"packets"|"bps"|"pps") cmp-op number
//
// Lists are comma-separated; port items may be inclusive ranges
// ("27000-27031"); numbers accept k/m/g suffixes. All diagnostics are
// FilterErrors carrying the exact 1-based source position.
#pragma once

#include <string_view>

#include "filter/ast.hpp"

namespace lockdown::filter {

/// Parse a complete filter expression. Throws FilterError on syntax errors,
/// out-of-range values, malformed addresses, and empty input.
[[nodiscard]] ExprPtr parse_filter(std::string_view source);

}  // namespace lockdown::filter
