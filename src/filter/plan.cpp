#include "filter/plan.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "filter/parser.hpp"
#include "obs/trace.hpp"

namespace lockdown::filter {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

constexpr std::uint8_t kTcpProto = 6;

using Iv4 = std::pair<std::uint32_t, std::uint32_t>;

[[nodiscard]] Iv4 v4_interval(const net::Ipv4Prefix& p) noexcept {
  const std::uint32_t lo = p.network().value();
  const std::uint32_t host =
      p.length() == 32 ? 0 : (~std::uint32_t{0} >> p.length());
  return {lo, lo | host};
}

[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> v6_key(
    const net::Ipv6Address& a) noexcept {
  return {a.high(), a.low()};
}

[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> v6_end(
    const net::Ipv6Prefix& p) noexcept {
  std::uint64_t hi = p.network().high();
  std::uint64_t lo = p.network().low();
  const unsigned host = 128u - p.length();
  if (host >= 64) {
    lo = ~std::uint64_t{0};
    const unsigned hh = host - 64;
    hi |= hh >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << hh) - 1);
  } else if (host > 0) {
    lo |= (std::uint64_t{1} << host) - 1;
  }
  return {hi, lo};
}

/// Sort by start and merge overlapping intervals; the result is sorted and
/// disjoint, so membership is one binary search.
template <typename K>
void merge_intervals(std::vector<std::pair<K, K>>& iv) {
  std::sort(iv.begin(), iv.end());
  std::size_t w = 0;
  for (std::size_t i = 0; i < iv.size(); ++i) {
    if (w > 0 && iv[i].first <= iv[w - 1].second) {
      iv[w - 1].second = std::max(iv[w - 1].second, iv[i].second);
    } else {
      iv[w++] = iv[i];
    }
  }
  iv.resize(w);
}

template <typename K>
[[nodiscard]] bool in_intervals(const std::vector<std::pair<K, K>>& iv,
                                const K& key) noexcept {
  auto it = std::upper_bound(
      iv.begin(), iv.end(), key,
      [](const K& v, const std::pair<K, K>& e) { return v < e.first; });
  if (it == iv.begin()) return false;
  return key <= (it - 1)->second;
}

[[nodiscard]] std::int64_t active_seconds(const flow::FlowRecord& r) noexcept {
  return std::max<std::int64_t>(1, r.last.seconds() - r.first.seconds());
}

[[nodiscard]] bool eval_rate(const RatePred& p, const flow::FlowRecord& r) noexcept {
  double v = 0.0;
  switch (p.field) {
    case RateField::kBytes: v = static_cast<double>(r.bytes); break;
    case RateField::kPackets: v = static_cast<double>(r.packets); break;
    case RateField::kBps:
      v = 8.0 * static_cast<double>(r.bytes) /
          static_cast<double>(active_seconds(r));
      break;
    case RateField::kPps:
      v = static_cast<double>(r.packets) /
          static_cast<double>(active_seconds(r));
      break;
  }
  switch (p.op) {
    case CmpOp::kLt: return v < p.value;
    case CmpOp::kLe: return v <= p.value;
    case CmpOp::kGt: return v > p.value;
    case CmpOp::kGe: return v >= p.value;
    case CmpOp::kEq: return v == p.value;
    case CmpOp::kNe: return v != p.value;
  }
  return false;
}

// ---- compile-time degeneracy diagnostics ----------------------------------

[[nodiscard]] std::string axis_name(std::string_view term, Direction dir) {
  const char* d = to_string(dir);
  return d[0] == '\0' ? std::string(term)
                      : std::string(d) + " " + std::string(term);
}

[[noreturn]] void always_false(const std::string& axis, const Expr& a,
                               const Expr& b, std::string_view what) {
  throw FilterError(b.loc, "always-false conjunction: '" + axis +
                               "' terms at " + a.loc.to_string() + " and " +
                               b.loc.to_string() + " share no " +
                               std::string(what));
}

[[nodiscard]] bool ranges_intersect(
    const std::vector<std::pair<std::uint16_t, std::uint16_t>>& a,
    const std::vector<std::pair<std::uint16_t, std::uint16_t>>& b) noexcept {
  for (const auto& [al, ah] : a) {
    for (const auto& [bl, bh] : b) {
      if (al <= bh && bl <= ah) return true;
    }
  }
  return false;
}

[[nodiscard]] bool nets_intersect(const NetPred& a, const NetPred& b) noexcept {
  for (const auto& pa : a.v4) {
    for (const auto& pb : b.v4) {
      if (pa.contains(pb) || pb.contains(pa)) return true;
    }
  }
  for (const auto& pa : a.v6) {
    for (const auto& pb : b.v6) {
      const auto& shorter = pa.length() <= pb.length() ? pa : pb;
      const auto& longer = pa.length() <= pb.length() ? pb : pa;
      if (shorter.contains(longer.network())) return true;
    }
  }
  return false;
}

/// Satisfiable real interval of a conjunction of rate thresholds.
struct RateInterval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;

  void apply(const RatePred& p) noexcept {
    switch (p.op) {
      case CmpOp::kLt: tighten_hi(p.value, true); break;
      case CmpOp::kLe: tighten_hi(p.value, false); break;
      case CmpOp::kGt: tighten_lo(p.value, true); break;
      case CmpOp::kGe: tighten_lo(p.value, false); break;
      case CmpOp::kEq:
        tighten_lo(p.value, false);
        tighten_hi(p.value, false);
        break;
      case CmpOp::kNe: break;  // removes one point, never empties an interval
    }
  }
  [[nodiscard]] bool empty() const noexcept {
    if (lo > hi) return true;
    return lo == hi && (lo_open || hi_open);
  }

 private:
  void tighten_lo(double v, bool open) noexcept {
    if (v > lo || (v == lo && open)) {
      lo = v;
      lo_open = open;
    }
  }
  void tighten_hi(double v, bool open) noexcept {
    if (v < hi || (v == hi && open)) {
      hi = v;
      hi_open = open;
    }
  }
};

void check_pair(const Expr& a, const Expr& b) {
  const auto* pa_proto = std::get_if<ProtoPred>(&a.node);
  const auto* pb_proto = std::get_if<ProtoPred>(&b.node);
  if (pa_proto != nullptr && pb_proto != nullptr) {
    for (std::uint8_t p : pa_proto->protos) {
      if (std::find(pb_proto->protos.begin(), pb_proto->protos.end(), p) !=
          pb_proto->protos.end()) {
        return;
      }
    }
    always_false("proto", a, b, "protocol");
  }
  // tcp-flags pins the protocol to TCP; a proto term excluding TCP in the
  // same conjunction can never co-match.
  if (pa_proto != nullptr && std::holds_alternative<TcpFlagsPred>(b.node)) {
    if (std::find(pa_proto->protos.begin(), pa_proto->protos.end(),
                  kTcpProto) == pa_proto->protos.end()) {
      throw FilterError(b.loc, "always-false conjunction: 'tcp-flags' at " +
                                   b.loc.to_string() +
                                   " requires tcp but 'proto' at " +
                                   a.loc.to_string() + " excludes it");
    }
    return;
  }
  const auto* pa_port = std::get_if<PortPred>(&a.node);
  const auto* pb_port = std::get_if<PortPred>(&b.node);
  if (pa_port != nullptr && pb_port != nullptr && pa_port->dir == pb_port->dir) {
    // Each direction reads a single port value per record (kEither is the
    // one service port), so disjoint sets can never co-match.
    if (!ranges_intersect(pa_port->ranges, pb_port->ranges)) {
      always_false(axis_name("port", pa_port->dir), a, b, "port");
    }
    return;
  }
  const auto* pa_asn = std::get_if<AsnPred>(&a.node);
  const auto* pb_asn = std::get_if<AsnPred>(&b.node);
  if (pa_asn != nullptr && pb_asn != nullptr && pa_asn->dir == pb_asn->dir &&
      pa_asn->dir != Direction::kEither) {
    // kEither asn terms are two-valued (src or dst) and excluded: disjoint
    // sets can still both hold on one record.
    for (std::uint32_t v : pa_asn->asns) {
      if (std::find(pb_asn->asns.begin(), pb_asn->asns.end(), v) !=
          pb_asn->asns.end()) {
        return;
      }
    }
    always_false(axis_name("asn", pa_asn->dir), a, b, "AS number");
  }
  const auto* pa_net = std::get_if<NetPred>(&a.node);
  const auto* pb_net = std::get_if<NetPred>(&b.node);
  if (pa_net != nullptr && pb_net != nullptr && pa_net->dir == pb_net->dir &&
      pa_net->dir != Direction::kEither) {
    if (!nets_intersect(*pa_net, *pb_net)) {
      always_false(axis_name("net", pa_net->dir), a, b, "address");
    }
  }
}

void check_conjunction(const std::vector<const Expr*>& conjuncts) {
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    for (std::size_t j = i + 1; j < conjuncts.size(); ++j) {
      check_pair(*conjuncts[i], *conjuncts[j]);
      check_pair(*conjuncts[j], *conjuncts[i]);
    }
  }
  // Rate thresholds: intersect all bounds per field.
  for (int f = 0; f < 4; ++f) {
    RateInterval iv;
    const Expr* first = nullptr;
    const Expr* emptied = nullptr;
    for (const Expr* c : conjuncts) {
      const auto* rp = std::get_if<RatePred>(&c->node);
      if (rp == nullptr || static_cast<int>(rp->field) != f) continue;
      if (first == nullptr) first = c;
      iv.apply(*rp);
      if (iv.empty() && emptied == nullptr) emptied = c;
    }
    if (emptied != nullptr) {
      throw FilterError(
          emptied->loc,
          "always-false conjunction: '" +
              std::string(to_string(static_cast<RateField>(f))) +
              "' thresholds at " + first->loc.to_string() + " and " +
              emptied->loc.to_string() + " cannot both hold");
    }
  }
}

// ---- service-rule fusion ---------------------------------------------------

void flatten_or(const Expr& e, std::vector<const Expr*>& out) {
  if (const auto* o = std::get_if<OrExpr>(&e.node)) {
    flatten_or(*o->lhs, out);
    flatten_or(*o->rhs, out);
  } else {
    out.push_back(&e);
  }
}

/// Relative evaluation cost of a subtree (its most expensive leaf):
/// proto/port/flags tests are register compares or one bitmap probe, rate
/// tests a couple of float ops, net/asn tests binary searches with a
/// possible trie walk behind them. `and` is commutative over pure
/// predicates, so emit() runs the cheaper operand first.
[[nodiscard]] int eval_cost(const Expr& e) {
  return std::visit(
      Overloaded{
          [](const NotExpr& n) { return eval_cost(*n.operand); },
          [](const AndExpr& a) {
            return std::max(eval_cost(*a.lhs), eval_cost(*a.rhs));
          },
          [](const OrExpr& o) {
            return std::max(eval_cost(*o.lhs), eval_cost(*o.rhs));
          },
          [](const RatePred&) { return 1; },
          [](const NetPred&) { return 2; },
          [](const AsnPred&) { return 3; },
          [](const auto&) { return 0; },  // proto / port / tcp-flags
      },
      e.node);
}

/// Recognizes the fusible service-rule shape `proto P[,Q...] and port L`
/// (either operand order; the port term must be undirected, i.e. match the
/// service port). Returns {nullptr, nullptr} for anything else.
[[nodiscard]] std::pair<const ProtoPred*, const PortPred*> service_rule(
    const Expr& e) noexcept {
  const auto* a = std::get_if<AndExpr>(&e.node);
  if (a == nullptr) return {nullptr, nullptr};
  const auto* proto = std::get_if<ProtoPred>(&a->lhs->node);
  const auto* port = std::get_if<PortPred>(&a->rhs->node);
  if (proto == nullptr || port == nullptr) {
    proto = std::get_if<ProtoPred>(&a->rhs->node);
    port = std::get_if<PortPred>(&a->lhs->node);
  }
  if (proto != nullptr && port != nullptr && port->dir == Direction::kEither) {
    return {proto, port};
  }
  return {nullptr, nullptr};
}

void collect_conjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (const auto* a = std::get_if<AndExpr>(&e.node)) {
    collect_conjuncts(*a->lhs, out);
    collect_conjuncts(*a->rhs, out);
  } else {
    out.push_back(&e);
  }
}

/// Walk the whole tree; every maximal `and` chain gets a conjunction check
/// (including chains nested under or/not/parentheses).
void diagnose(const Expr& e, bool under_and = false) {
  std::visit(
      Overloaded{
          [&](const AndExpr& a) {
            if (!under_and) {
              std::vector<const Expr*> cs;
              collect_conjuncts(e, cs);
              check_conjunction(cs);
            }
            diagnose(*a.lhs, true);
            diagnose(*a.rhs, true);
          },
          [&](const OrExpr& o) {
            diagnose(*o.lhs, false);
            diagnose(*o.rhs, false);
          },
          [&](const NotExpr& n) { diagnose(*n.operand, false); },
          [](const auto&) {},
      },
      e.node);
}

}  // namespace

// ---- compilation ----------------------------------------------------------

CompiledFilter CompiledFilter::compile(std::string_view source,
                                       const AsnTrie* trie) {
  CompiledFilter f;
  f.source_ = std::string(source);
  f.ast_ = parse_filter(source);
  f.trie_ = trie;
  diagnose(*f.ast_);
  f.entry_ = f.emit(*f.ast_, kAcceptTarget, kRejectTarget);
  if (!f.asn_sets_.empty() && f.asn_sets_.size() <= 64) {
    std::map<std::uint32_t, std::uint64_t> masks;
    for (std::size_t i = 0; i < f.asn_sets_.size(); ++i) {
      for (const std::uint32_t v : f.asn_sets_[i]) {
        masks[v] |= std::uint64_t{1} << i;
      }
    }
    std::size_t slots = 4;
    while (slots < masks.size() * 2) slots *= 2;
    f.asn_index_.assign(slots, {kEmptyKey, 0});
    f.asn_index_cap_ = static_cast<std::uint32_t>(slots - 1);
    for (const auto& [v, mask] : masks) {
      std::uint32_t h = (v * 2654435761u) & f.asn_index_cap_;
      while (f.asn_index_[h].first != kEmptyKey) h = (h + 1) & f.asn_index_cap_;
      f.asn_index_[h] = {v, mask};
    }
    f.use_asn_index_ = true;
  }
  for (const Step& s : f.steps_) {
    switch (s.op) {
      case Op::kServicePort:
        f.needs_service_ = true;
        break;
      case Op::kPortEq:
      case Op::kPortSet:
        if (static_cast<Direction>(s.payload >> 16) == Direction::kEither) {
          f.needs_service_ = true;
        }
        break;
      case Op::kAsnEq:
      case Op::kAsnSet:
        f.needs_as_ = true;
        break;
      default:
        break;
    }
  }
  return f;
}

std::uint16_t CompiledFilter::push_step(const Expr& e, Op op,
                                        std::uint32_t payload,
                                        std::uint16_t on_true,
                                        std::uint16_t on_false) {
  if (steps_.size() >= kRejectTarget) {
    throw FilterError(e.loc, "filter too large to compile (more than " +
                                 std::to_string(kRejectTarget) + " steps)");
  }
  steps_.push_back(Step{op, on_true, on_false, payload});
  return static_cast<std::uint16_t>(steps_.size() - 1);
}

std::uint32_t CompiledFilter::make_service_set(
    const std::vector<std::pair<const ProtoPred*, const PortPred*>>& rules) {
  ServicePortSet set;
  set.per_proto.fill(-1);
  for (const auto& [proto, port] : rules) {
    for (const std::uint8_t p : proto->protos) {
      std::int32_t& idx = set.per_proto[p];
      if (idx < 0) {
        auto bm = std::make_unique<PortBitmap>();
        bm->fill(0);
        port_sets_.push_back(std::move(bm));
        idx = static_cast<std::int32_t>(port_sets_.size() - 1);
      }
      PortBitmap& bm = *port_sets_[static_cast<std::size_t>(idx)];
      for (const auto& [lo, hi] : port->ranges) {
        for (std::uint32_t v = lo; v <= hi; ++v) {
          bm[v >> 6] |= 1ULL << (v & 63);
        }
      }
    }
  }
  service_sets_.push_back(set);
  return static_cast<std::uint32_t>(service_sets_.size() - 1);
}

std::uint16_t CompiledFilter::emit(const Expr& e, std::uint16_t on_true,
                                   std::uint16_t on_false) {
  return std::visit(
      Overloaded{
          [&](const NotExpr& n) {  // free: swap the continuation targets
            return emit(*n.operand, on_false, on_true);
          },
          [&](const AndExpr& a) {
            // Single fused service rule: one step instead of proto + port.
            if (const auto rule = service_rule(e); rule.first != nullptr) {
              return push_step(e, Op::kServicePort, make_service_set({rule}),
                               on_true, on_false);
            }
            // Cheapest operand first; `and` over pure predicates commutes.
            const Expr* first = a.lhs.get();
            const Expr* second = a.rhs.get();
            if (eval_cost(*first) > eval_cost(*second)) {
              std::swap(first, second);
            }
            const std::uint16_t rhs = emit(*second, on_true, on_false);
            return emit(*first, rhs, on_false);
          },
          [&](const OrExpr&) {
            // Fuse the or-chain: every service-rule disjunct goes into one
            // combined per-protocol bitmap step, every undirected asn
            // disjunct into one combined membership set (or of
            // memberships == membership in the union). The remaining
            // disjuncts keep their ordinary short-circuit chain behind
            // the two fused steps.
            std::vector<const Expr*> disjuncts;
            flatten_or(e, disjuncts);
            std::vector<std::pair<const ProtoPred*, const PortPred*>> rules;
            std::vector<std::uint32_t> asns;
            std::vector<const Expr*> rest;
            for (const Expr* d : disjuncts) {
              if (const auto rule = service_rule(*d); rule.first != nullptr) {
                rules.push_back(rule);
                continue;
              }
              const auto* ap = std::get_if<AsnPred>(&d->node);
              if (ap != nullptr && ap->dir == Direction::kEither) {
                asns.insert(asns.end(), ap->asns.begin(), ap->asns.end());
                continue;
              }
              rest.push_back(d);
            }
            std::uint16_t next = on_false;
            for (std::size_t i = rest.size(); i-- > 0;) {
              next = emit(*rest[i], on_true, next);
            }
            if (!asns.empty()) {
              std::sort(asns.begin(), asns.end());
              asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
              asn_sets_.push_back(std::move(asns));
              next = push_step(
                  e, Op::kAsnSet,
                  (static_cast<std::uint32_t>(Direction::kEither) << 16) |
                      static_cast<std::uint32_t>(asn_sets_.size() - 1),
                  on_true, next);
            }
            if (!rules.empty()) {
              next = push_step(e, Op::kServicePort, make_service_set(rules),
                               on_true, next);
            }
            return next;
          },
          [&](const ProtoPred& p) {
            if (p.protos.size() == 1) {
              return push_step(e, Op::kProtoEq, p.protos[0], on_true, on_false);
            }
            ProtoBitmap bm{};
            for (std::uint8_t v : p.protos) bm[v >> 6] |= 1ULL << (v & 63);
            proto_sets_.push_back(bm);
            return push_step(e, Op::kProtoSet,
                             static_cast<std::uint32_t>(proto_sets_.size() - 1),
                             on_true, on_false);
          },
          [&](const PortPred& p) {
            const auto dir = static_cast<std::uint32_t>(p.dir) << 16;
            if (p.ranges.size() == 1 && p.ranges[0].first == p.ranges[0].second) {
              return push_step(e, Op::kPortEq, dir | p.ranges[0].first, on_true,
                               on_false);
            }
            auto bm = std::make_unique<PortBitmap>();
            bm->fill(0);
            for (const auto& [lo, hi] : p.ranges) {
              for (std::uint32_t v = lo; v <= hi; ++v) {
                (*bm)[v >> 6] |= 1ULL << (v & 63);
              }
            }
            port_sets_.push_back(std::move(bm));
            return push_step(
                e, Op::kPortSet,
                dir | static_cast<std::uint32_t>(port_sets_.size() - 1),
                on_true, on_false);
          },
          [&](const NetPred& p) {
            NetSet set;
            for (const auto& pre : p.v4) set.v4.push_back(v4_interval(pre));
            for (const auto& pre : p.v6) {
              set.v6.emplace_back(v6_key(pre.network()), v6_end(pre));
            }
            merge_intervals(set.v4);
            merge_intervals(set.v6);
            net_sets_.push_back(std::move(set));
            return push_step(
                e, Op::kNet,
                (static_cast<std::uint32_t>(p.dir) << 16) |
                    static_cast<std::uint32_t>(net_sets_.size() - 1),
                on_true, on_false);
          },
          [&](const AsnPred& p) {
            if (p.asns.size() == 1) {
              asn_eq_.push_back(AsnEq{p.dir, p.asns[0]});
              return push_step(e, Op::kAsnEq,
                               static_cast<std::uint32_t>(asn_eq_.size() - 1),
                               on_true, on_false);
            }
            std::vector<std::uint32_t> sorted = p.asns;
            std::sort(sorted.begin(), sorted.end());
            sorted.erase(std::unique(sorted.begin(), sorted.end()),
                         sorted.end());
            asn_sets_.push_back(std::move(sorted));
            return push_step(
                e, Op::kAsnSet,
                (static_cast<std::uint32_t>(p.dir) << 16) |
                    static_cast<std::uint32_t>(asn_sets_.size() - 1),
                on_true, on_false);
          },
          [&](const TcpFlagsPred& p) {
            return push_step(e, p.any ? Op::kFlagsAny : Op::kFlagsAll, p.mask,
                             on_true, on_false);
          },
          [&](const RatePred& p) {
            rates_.push_back(p);
            return push_step(e, Op::kRate,
                             static_cast<std::uint32_t>(rates_.size() - 1),
                             on_true, on_false);
          },
      },
      e.node);
}

// ---- execution ------------------------------------------------------------

std::uint32_t CompiledFilter::resolve_as(net::Asn annotated,
                                         const net::IpAddress& addr) const {
  // Mirrors analysis::AsView: exporter annotation first, longest-prefix
  // match against the routing snapshot as fallback, 0 = unknown.
  if (annotated.value() != 0) return annotated.value();
  if (trie_ != nullptr && addr.is_v4()) {
    if (const auto as = trie_->lookup(addr.v4())) return as->value();
  }
  return 0;
}

std::uint64_t CompiledFilter::index_mask(std::uint32_t asn) const noexcept {
  std::uint32_t h = (asn * 2654435761u) & asn_index_cap_;
  while (true) {
    const auto& [key, mask] = asn_index_[h];
    if (key == asn) return mask;
    if (key == kEmptyKey) return 0;
    h = (h + 1) & asn_index_cap_;
  }
}

std::uint32_t CompiledFilter::src_as(const flow::FlowRecord& r,
                                     AsnCache& c) const {
  if (c.src == AsnCache::kUnset) c.src = resolve_as(r.src_as, r.src_addr);
  return static_cast<std::uint32_t>(c.src);
}

std::uint32_t CompiledFilter::dst_as(const flow::FlowRecord& r,
                                     AsnCache& c) const {
  if (c.dst == AsnCache::kUnset) c.dst = resolve_as(r.dst_as, r.dst_addr);
  return static_cast<std::uint32_t>(c.dst);
}

bool CompiledFilter::eval_step(const Step& s, const flow::FlowRecord& r,
                               AsnCache& cache) const {
  const auto dir = static_cast<Direction>(s.payload >> 16);
  const auto low = s.payload & 0xffffu;
  const auto service = [&r, &cache]() -> std::uint32_t {
    if (cache.service == ~std::uint32_t{0}) {
      const flow::PortKey key = r.service_port();
      cache.service =
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key.proto))
           << 16) |
          key.port;
    }
    return cache.service;
  };
  switch (s.op) {
    case Op::kProtoEq:
      return static_cast<std::uint8_t>(r.protocol) == s.payload;
    case Op::kProtoSet: {
      const std::uint8_t v = static_cast<std::uint8_t>(r.protocol);
      return (proto_sets_[s.payload][v >> 6] >> (v & 63)) & 1;
    }
    case Op::kPortEq:
    case Op::kPortSet: {
      const std::uint16_t p =
          dir == Direction::kSrc   ? r.src_port
          : dir == Direction::kDst ? r.dst_port
                                   : static_cast<std::uint16_t>(service());
      if (s.op == Op::kPortEq) return p == low;
      return ((*port_sets_[low])[p >> 6] >> (p & 63)) & 1;
    }
    case Op::kNet: {
      const NetSet& set = net_sets_[low];
      const auto test = [&set](const net::IpAddress& a) {
        if (a.is_v4()) return in_intervals(set.v4, a.v4().value());
        return in_intervals(set.v6, v6_key(a.v6()));
      };
      if (dir == Direction::kSrc) return test(r.src_addr);
      if (dir == Direction::kDst) return test(r.dst_addr);
      return test(r.src_addr) || test(r.dst_addr);
    }
    case Op::kAsnEq: {
      const AsnEq& eq = asn_eq_[s.payload];
      if (eq.dir == Direction::kSrc) return src_as(r, cache) == eq.asn;
      if (eq.dir == Direction::kDst) return dst_as(r, cache) == eq.asn;
      return src_as(r, cache) == eq.asn || dst_as(r, cache) == eq.asn;
    }
    case Op::kAsnSet: {
      if (use_asn_index_) {
        if (!cache.masks_set) {
          cache.src_mask = index_mask(src_as(r, cache));
          cache.dst_mask = index_mask(dst_as(r, cache));
          cache.masks_set = true;
        }
        const std::uint64_t bit = std::uint64_t{1} << low;
        if (dir == Direction::kSrc) return (cache.src_mask & bit) != 0;
        if (dir == Direction::kDst) return (cache.dst_mask & bit) != 0;
        return ((cache.src_mask | cache.dst_mask) & bit) != 0;
      }
      const auto& set = asn_sets_[low];
      const auto has = [&set](std::uint32_t v) {
        return std::binary_search(set.begin(), set.end(), v);
      };
      if (dir == Direction::kSrc) return has(src_as(r, cache));
      if (dir == Direction::kDst) return has(dst_as(r, cache));
      return has(src_as(r, cache)) || has(dst_as(r, cache));
    }
    case Op::kFlagsAll:
      return r.protocol == flow::IpProtocol::kTcp &&
             (r.tcp_flags & s.payload) == s.payload;
    case Op::kFlagsAny:
      return r.protocol == flow::IpProtocol::kTcp &&
             (r.tcp_flags & s.payload) != 0;
    case Op::kRate:
      return eval_rate(rates_[s.payload], r);
    case Op::kServicePort: {
      const ServicePortSet& set = service_sets_[s.payload];
      const std::uint32_t key = service();
      const std::int32_t idx = set.per_proto[key >> 16];
      if (idx < 0) return false;
      const std::uint16_t port = static_cast<std::uint16_t>(key);
      const PortBitmap& bm = *port_sets_[static_cast<std::size_t>(idx)];
      return (bm[port >> 6] >> (port & 63)) & 1;
    }
  }
  return false;
}

bool CompiledFilter::run(const flow::FlowRecord& r) const {
  AsnCache cache;
  std::uint16_t pc = entry_;
  for (;;) {
    if (pc >= kRejectTarget) return pc == kAcceptTarget;
    const Step& s = steps_[pc];
    pc = eval_step(s, r, cache) ? s.on_true : s.on_false;
  }
}

bool CompiledFilter::match(const flow::FlowRecord& r) const { return run(r); }

namespace {

/// Per-thread scratch for the columnar batch evaluator: one result row per
/// step plus the per-filter ASN membership masks, sized to one chunk, and
/// (for the column-building overloads) the derived per-record columns.
struct BatchScratch {
  std::vector<std::uint8_t> acc;
  std::vector<std::uint8_t> ones;
  std::vector<std::uint8_t> zeros;
  std::vector<std::uint64_t> src_mask;
  std::vector<std::uint64_t> dst_mask;
  FlowColumns cols;
};

constexpr std::size_t kBatchChunk = 512;

thread_local BatchScratch g_scratch;

}  // namespace

std::uint32_t resolve_endpoint_as(const AsnTrie* trie, net::Asn annotated,
                                  const net::IpAddress& addr) {
  if (annotated.value() != 0) return annotated.value();
  if (trie != nullptr && addr.is_v4()) {
    if (const auto as = trie->lookup(addr.v4())) return as->value();
  }
  return 0;
}

void FlowColumns::build(std::span<const flow::FlowRecord> records,
                        const AsnTrie* trie) {
  const std::size_t n = records.size();
  service.resize(n);
  src_as.resize(n);
  dst_as.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const flow::FlowRecord& r = records[i];
    const flow::PortKey key = r.service_port();
    service[i] =
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key.proto))
         << 16) |
        key.port;
    src_as[i] = resolve_endpoint_as(trie, r.src_as, r.src_addr);
    dst_as[i] = resolve_endpoint_as(trie, r.dst_as, r.dst_addr);
  }
}

void CompiledFilter::match_batch(std::span<const flow::FlowRecord> records,
                                 std::span<std::uint8_t> out) const {
  // Standalone form: derive only the columns this plan consults.
  FlowColumns& cols = g_scratch.cols;
  const std::size_t n = records.size();
  if (needs_service_) {
    cols.service.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const flow::PortKey key = records[i].service_port();
      cols.service[i] =
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key.proto))
           << 16) |
          key.port;
    }
  }
  if (needs_as_) {
    cols.src_as.resize(n);
    cols.dst_as.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.src_as[i] =
          resolve_endpoint_as(trie_, records[i].src_as, records[i].src_addr);
      cols.dst_as[i] =
          resolve_endpoint_as(trie_, records[i].dst_as, records[i].dst_addr);
    }
  }
  match_batch_impl(records, out,
                   needs_service_ ? cols.service.data() : nullptr,
                   needs_as_ ? cols.src_as.data() : nullptr,
                   needs_as_ ? cols.dst_as.data() : nullptr);
}

void CompiledFilter::match_batch(std::span<const flow::FlowRecord> records,
                                 std::span<std::uint8_t> out,
                                 const FlowColumns& cols) const {
  match_batch_impl(records, out, cols.service.data(), cols.src_as.data(),
                   cols.dst_as.data());
}

void CompiledFilter::match_batch_impl(
    std::span<const flow::FlowRecord> records, std::span<std::uint8_t> out,
    const std::uint32_t* service, const std::uint32_t* src_as,
    const std::uint32_t* dst_as) const {
  TRACE_SPAN_ARG("filter", "filter.match_batch", records.size());
  BatchScratch& scr = g_scratch;
  scr.acc.resize(steps_.size() * kBatchChunk);
  scr.ones.assign(kBatchChunk, 1);
  scr.zeros.assign(kBatchChunk, 0);
  if (use_asn_index_) {
    scr.src_mask.resize(kBatchChunk);
    scr.dst_mask.resize(kBatchChunk);
  }
  const auto row = [&](std::uint16_t target) -> const std::uint8_t* {
    if (target == kAcceptTarget) return scr.ones.data();
    if (target == kRejectTarget) return scr.zeros.data();
    return scr.acc.data() + target * kBatchChunk;
  };

  for (std::size_t base = 0; base < records.size(); base += kBatchChunk) {
    const std::size_t n = std::min(kBatchChunk, records.size() - base);
    const flow::FlowRecord* recs = records.data() + base;
    const std::uint32_t* svc = service == nullptr ? nullptr : service + base;
    const std::uint32_t* sas = src_as == nullptr ? nullptr : src_as + base;
    const std::uint32_t* das = dst_as == nullptr ? nullptr : dst_as + base;
    // Per-filter ASN membership masks over the interned index.
    if (use_asn_index_) {
      for (std::size_t i = 0; i < n; ++i) {
        scr.src_mask[i] = index_mask(src_as[base + i]);
        scr.dst_mask[i] = index_mask(dst_as[base + i]);
      }
    }

    // One forward pass over the steps: emission order guarantees every
    // jump target is a lower-index step (or a terminal), so its result
    // row is already final when a step selects from it.
    for (std::size_t si = 0; si < steps_.size(); ++si) {
      const Step& s = steps_[si];
      std::uint8_t* a = scr.acc.data() + si * kBatchChunk;
      const std::uint8_t* tv = row(s.on_true);
      const std::uint8_t* fv = row(s.on_false);
      const auto dir = static_cast<Direction>(s.payload >> 16);
      const auto low = s.payload & 0xffffu;
      switch (s.op) {
        case Op::kProtoEq:
          for (std::size_t i = 0; i < n; ++i) {
            const bool p =
                static_cast<std::uint8_t>(recs[i].protocol) == s.payload;
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        case Op::kProtoSet: {
          const ProtoBitmap& bm = proto_sets_[s.payload];
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t v = static_cast<std::uint8_t>(recs[i].protocol);
            a[i] = ((bm[v >> 6] >> (v & 63)) & 1) != 0 ? tv[i] : fv[i];
          }
          break;
        }
        case Op::kPortEq:
        case Op::kPortSet: {
          const auto port_of = [&](std::size_t i) -> std::uint16_t {
            if (dir == Direction::kSrc) return recs[i].src_port;
            if (dir == Direction::kDst) return recs[i].dst_port;
            return static_cast<std::uint16_t>(svc[i]);
          };
          if (s.op == Op::kPortEq) {
            for (std::size_t i = 0; i < n; ++i) {
              a[i] = port_of(i) == low ? tv[i] : fv[i];
            }
          } else {
            const PortBitmap& bm = *port_sets_[low];
            for (std::size_t i = 0; i < n; ++i) {
              const std::uint16_t p = port_of(i);
              a[i] = ((bm[p >> 6] >> (p & 63)) & 1) != 0 ? tv[i] : fv[i];
            }
          }
          break;
        }
        case Op::kNet: {
          const NetSet& set = net_sets_[low];
          const auto test = [&set](const net::IpAddress& addr) {
            if (addr.is_v4()) return in_intervals(set.v4, addr.v4().value());
            return in_intervals(set.v6, v6_key(addr.v6()));
          };
          for (std::size_t i = 0; i < n; ++i) {
            bool p = false;
            if (dir != Direction::kDst) p = test(recs[i].src_addr);
            if (!p && dir != Direction::kSrc) p = test(recs[i].dst_addr);
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        }
        case Op::kAsnEq: {
          const AsnEq& eq = asn_eq_[s.payload];
          for (std::size_t i = 0; i < n; ++i) {
            bool p = false;
            if (eq.dir != Direction::kDst) p = sas[i] == eq.asn;
            if (!p && eq.dir != Direction::kSrc) p = das[i] == eq.asn;
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        }
        case Op::kAsnSet: {
          if (use_asn_index_) {
            const std::uint64_t bit = std::uint64_t{1} << low;
            for (std::size_t i = 0; i < n; ++i) {
              std::uint64_t m = 0;
              if (dir != Direction::kDst) m = scr.src_mask[i];
              if (dir != Direction::kSrc) m |= scr.dst_mask[i];
              a[i] = (m & bit) != 0 ? tv[i] : fv[i];
            }
            break;
          }
          const auto& set = asn_sets_[low];
          const auto has = [&set](std::uint32_t v) {
            return std::binary_search(set.begin(), set.end(), v);
          };
          for (std::size_t i = 0; i < n; ++i) {
            bool p = false;
            if (dir != Direction::kDst) p = has(sas[i]);
            if (!p && dir != Direction::kSrc) p = has(das[i]);
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        }
        case Op::kFlagsAll:
          for (std::size_t i = 0; i < n; ++i) {
            const bool p = recs[i].protocol == flow::IpProtocol::kTcp &&
                           (recs[i].tcp_flags & s.payload) == s.payload;
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        case Op::kFlagsAny:
          for (std::size_t i = 0; i < n; ++i) {
            const bool p = recs[i].protocol == flow::IpProtocol::kTcp &&
                           (recs[i].tcp_flags & s.payload) != 0;
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        case Op::kRate: {
          const RatePred& rp = rates_[s.payload];
          for (std::size_t i = 0; i < n; ++i) {
            a[i] = eval_rate(rp, recs[i]) ? tv[i] : fv[i];
          }
          break;
        }
        case Op::kServicePort: {
          const ServicePortSet& set = service_sets_[s.payload];
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t key = svc[i];
            const std::int32_t idx = set.per_proto[key >> 16];
            bool p = false;
            if (idx >= 0) {
              const std::uint16_t port = static_cast<std::uint16_t>(key);
              const PortBitmap& bm =
                  *port_sets_[static_cast<std::size_t>(idx)];
              p = ((bm[port >> 6] >> (port & 63)) & 1) != 0;
            }
            a[i] = p ? tv[i] : fv[i];
          }
          break;
        }
      }
    }

    const std::uint8_t* result = row(entry_);
    std::copy(result, result + n, out.begin() + static_cast<std::ptrdiff_t>(base));
  }
}

// ---- reference interpreter ------------------------------------------------

bool CompiledFilter::eval_ref(const Expr& e, const flow::FlowRecord& r,
                              AsnCache& cache) const {
  return std::visit(
      Overloaded{
          [&](const NotExpr& n) { return !eval_ref(*n.operand, r, cache); },
          [&](const AndExpr& a) {
            return eval_ref(*a.lhs, r, cache) && eval_ref(*a.rhs, r, cache);
          },
          [&](const OrExpr& o) {
            return eval_ref(*o.lhs, r, cache) || eval_ref(*o.rhs, r, cache);
          },
          [&](const ProtoPred& p) {
            const auto v = static_cast<std::uint8_t>(r.protocol);
            return std::find(p.protos.begin(), p.protos.end(), v) !=
                   p.protos.end();
          },
          [&](const PortPred& p) {
            const std::uint16_t v = p.dir == Direction::kSrc   ? r.src_port
                                    : p.dir == Direction::kDst ? r.dst_port
                                    : r.service_port().port;
            for (const auto& [lo, hi] : p.ranges) {
              if (lo <= v && v <= hi) return true;
            }
            return false;
          },
          [&](const NetPred& p) {
            const auto test = [&p](const net::IpAddress& a) {
              if (a.is_v4()) {
                for (const auto& pre : p.v4) {
                  if (pre.contains(a.v4())) return true;
                }
              } else {
                for (const auto& pre : p.v6) {
                  if (pre.contains(a.v6())) return true;
                }
              }
              return false;
            };
            if (p.dir == Direction::kSrc) return test(r.src_addr);
            if (p.dir == Direction::kDst) return test(r.dst_addr);
            return test(r.src_addr) || test(r.dst_addr);
          },
          [&](const AsnPred& p) {
            const auto has = [&p](std::uint32_t v) {
              return std::find(p.asns.begin(), p.asns.end(), v) !=
                     p.asns.end();
            };
            if (p.dir == Direction::kSrc) return has(src_as(r, cache));
            if (p.dir == Direction::kDst) return has(dst_as(r, cache));
            return has(src_as(r, cache)) || has(dst_as(r, cache));
          },
          [&](const TcpFlagsPred& p) {
            if (r.protocol != flow::IpProtocol::kTcp) return false;
            return p.any ? (r.tcp_flags & p.mask) != 0
                         : (r.tcp_flags & p.mask) == p.mask;
          },
          [&](const RatePred& p) { return eval_rate(p, r); },
      },
      e.node);
}

bool CompiledFilter::match_reference(const flow::FlowRecord& r) const {
  AsnCache cache;
  return eval_ref(*ast_, r, cache);
}

}  // namespace lockdown::filter
