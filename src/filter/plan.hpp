// Compiled filters: CompiledFilter::compile() parses an expression and
// lowers the AST to a FilterPlan -- a flat decision-DAG step array in the
// DecodePlan/EncodePlan/flat-AppClassifier style (DESIGN.md §12). Each
// step evaluates one predicate against precompiled operand pools (65536-bit
// port bitmaps, merged sorted address intervals for CIDR lists, sorted ASN
// vectors) and jumps to its on_true/on_false successor; `not` costs
// nothing (target swap at compile time) and `and`/`or` short-circuit
// exactly like the tree. A fusion pass collapses disjunctions of
// `proto P and port L` service rules -- the shape every Table-1 class
// union takes -- into a single per-protocol-bitmap step, so a whole class
// union costs one service_port() call and one bitmap probe.
//
// The AST is retained and match_reference() walks it directly; a 1M-flow
// differential fuzz pins the two against each other, mirroring the
// classify()/classify_reference() pairing of the AppClassifier.
//
// compile() also rejects degenerate filters with source-located errors:
// conjunctions that pin the same single-valued axis to disjoint sets
// ("src port 80 and src port 443"), tcp-flags terms under a proto term
// that excludes TCP, and unsatisfiable rate-threshold combinations.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "filter/ast.hpp"
#include "flow/flow_record.hpp"
#include "net/asn.hpp"
#include "net/prefix_trie.hpp"

namespace lockdown::filter {

using AsnTrie = net::Ipv4PrefixTrie<net::Asn>;

/// AsView-style endpoint AS resolution: exporter annotation if present,
/// longest-prefix match against `trie` as fallback (v4 only), 0 = unknown.
[[nodiscard]] std::uint32_t resolve_endpoint_as(const AsnTrie* trie,
                                                net::Asn annotated,
                                                const net::IpAddress& addr);

/// Filter-independent per-record derived columns: the service key and the
/// resolved endpoint ASes. Matching many filters against the same batch
/// (the monitoring-object routing case) builds these ONCE and passes them
/// to every filter's match_batch instead of re-deriving them per filter.
struct FlowColumns {
  std::vector<std::uint32_t> service;  // (proto << 16) | service port
  std::vector<std::uint32_t> src_as;
  std::vector<std::uint32_t> dst_as;

  /// Populates all columns for `records`. `trie` must be the same routing
  /// snapshot the consuming filters were compiled against.
  void build(std::span<const flow::FlowRecord> records, const AsnTrie* trie);
};

class CompiledFilter {
 public:
  /// Parse + diagnose + lower. `trie` is the routing snapshot used to
  /// resolve endpoint ASes when the exporter annotation is absent (same
  /// fallback as analysis::AsView); it may be null when no asn terms are
  /// used -- asn terms then only see exporter annotations. The trie must
  /// outlive the filter. Throws FilterError.
  [[nodiscard]] static CompiledFilter compile(std::string_view source,
                                              const AsnTrie* trie = nullptr);

  CompiledFilter(CompiledFilter&&) noexcept = default;
  CompiledFilter& operator=(CompiledFilter&&) noexcept = default;

  /// Compiled single-record match.
  [[nodiscard]] bool match(const flow::FlowRecord& r) const;

  /// Compiled batch match mirroring AppClassifier::classify_batch: writes
  /// records.size() 0/1 results into `out` (which must be at least that
  /// large). Evaluated column-wise: every step becomes one result row per
  /// 512-record chunk (targets always point at lower-index steps, so one
  /// forward pass resolves the DAG), keeping the op dispatch outside the
  /// record loop and the inner loops branch-predictable. Emits a
  /// filter.match_batch trace span. Safe to call concurrently (the plan
  /// is immutable after compile(); scratch is thread_local).
  void match_batch(std::span<const flow::FlowRecord> records,
                   std::span<std::uint8_t> out) const;

  /// Batch match with shared derived columns (see FlowColumns): the
  /// routing layer's form, which skips this filter's own column pass.
  /// `cols` must have been built over exactly `records` with the trie
  /// this filter was compiled against.
  void match_batch(std::span<const flow::FlowRecord> records,
                   std::span<std::uint8_t> out, const FlowColumns& cols) const;

  [[nodiscard]] std::vector<std::uint8_t> match_batch(
      std::span<const flow::FlowRecord> records) const {
    std::vector<std::uint8_t> out(records.size());
    match_batch(records, out);
    return out;
  }

  /// Tree-walking interpreter over the retained AST -- the semantic
  /// reference the plan is fuzz-pinned against.
  [[nodiscard]] bool match_reference(const flow::FlowRecord& r) const;

  [[nodiscard]] const Expr& ast() const noexcept { return *ast_; }
  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  [[nodiscard]] std::size_t step_count() const noexcept { return steps_.size(); }

 private:
  CompiledFilter() = default;

  enum class Op : std::uint8_t {
    kProtoEq,      // payload = protocol number
    kProtoSet,     // payload = proto_sets_ index (256-bit mask)
    kPortEq,       // payload = (dir << 16) | port
    kPortSet,      // payload = (dir << 16) | port_sets_ index
    kNet,          // payload = (dir << 16) | net_sets_ index
    kAsnEq,        // payload = asn_eq_ index (holds dir + value)
    kAsnSet,       // payload = (dir << 16) | asn_sets_ index
    kFlagsAll,     // payload = mask; implies proto == TCP
    kFlagsAny,     // payload = mask; implies proto == TCP
    kRate,         // payload = rates_ index
    kServicePort,  // payload = service_sets_ index (fused proto+port rules)
  };

  struct Step {
    Op op = Op::kProtoEq;
    std::uint16_t on_true = 0;
    std::uint16_t on_false = 0;
    std::uint32_t payload = 0;
  };

  /// Terminal jump targets. Real step indices stay below kRejectTarget.
  static constexpr std::uint16_t kAcceptTarget = 0xffff;
  static constexpr std::uint16_t kRejectTarget = 0xfffe;

  using PortBitmap = std::array<std::uint64_t, 1024>;  // 65536 bits
  using ProtoBitmap = std::array<std::uint64_t, 4>;    // 256 bits
  using U128 = std::pair<std::uint64_t, std::uint64_t>;  // (high, low)

  /// Merged, sorted, disjoint inclusive address intervals.
  struct NetSet {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> v4;
    std::vector<std::pair<U128, U128>> v6;
  };

  struct AsnEq {
    Direction dir = Direction::kEither;
    std::uint32_t asn = 0;
  };

  /// Fused `(proto P and port L) or (proto Q and port M) or ...` service
  /// rules: per-protocol service-port bitmaps, indexed by r.service_port().
  /// An entire class union (the Table-1 shape) evaluates as one step --
  /// one service_port() call and one bitmap probe -- instead of a walk
  /// through every rule's proto/port pair.
  struct ServicePortSet {
    std::array<std::int32_t, 256> per_proto;  // port_sets_ index or -1
  };

  /// Lazily resolved per-record values; one per match() call so the trie
  /// is walked at most once per endpoint and the service port is computed
  /// at most once however many steps consult them.
  struct AsnCache {
    static constexpr std::uint64_t kUnset = ~std::uint64_t{0};
    std::uint64_t src = kUnset;
    std::uint64_t dst = kUnset;
    std::uint32_t service = ~std::uint32_t{0};  // (proto << 16) | port
    // Membership masks over asn_sets_ (bit i = resolved AS is in set i),
    // valid when masks_set; computed at most once per record.
    std::uint64_t src_mask = 0;
    std::uint64_t dst_mask = 0;
    bool masks_set = false;
  };

  [[nodiscard]] std::uint32_t resolve_as(net::Asn annotated,
                                         const net::IpAddress& addr) const;
  [[nodiscard]] std::uint64_t index_mask(std::uint32_t asn) const noexcept;
  [[nodiscard]] std::uint32_t src_as(const flow::FlowRecord& r, AsnCache& c) const;
  [[nodiscard]] std::uint32_t dst_as(const flow::FlowRecord& r, AsnCache& c) const;

  void match_batch_impl(std::span<const flow::FlowRecord> records,
                        std::span<std::uint8_t> out,
                        const std::uint32_t* service,
                        const std::uint32_t* src_as,
                        const std::uint32_t* dst_as) const;
  [[nodiscard]] bool eval_step(const Step& s, const flow::FlowRecord& r,
                               AsnCache& cache) const;
  [[nodiscard]] bool run(const flow::FlowRecord& r) const;
  [[nodiscard]] bool eval_ref(const Expr& e, const flow::FlowRecord& r,
                              AsnCache& cache) const;

  /// Emit steps for `e` (right to left) so that control continues at
  /// `on_true`/`on_false`; returns the entry step index.
  [[nodiscard]] std::uint16_t emit(const Expr& e, std::uint16_t on_true,
                                   std::uint16_t on_false);
  [[nodiscard]] std::uint16_t push_step(const Expr& e, Op op,
                                        std::uint32_t payload,
                                        std::uint16_t on_true,
                                        std::uint16_t on_false);
  [[nodiscard]] std::uint32_t make_service_set(
      const std::vector<std::pair<const ProtoPred*, const PortPred*>>& rules);

  std::string source_;
  ExprPtr ast_;
  const AsnTrie* trie_ = nullptr;

  std::vector<Step> steps_;
  std::uint16_t entry_ = kRejectTarget;

  // Operand pools, indexed by step payloads.
  std::vector<ProtoBitmap> proto_sets_;
  std::vector<std::unique_ptr<PortBitmap>> port_sets_;
  std::vector<NetSet> net_sets_;
  std::vector<std::vector<std::uint32_t>> asn_sets_;  // sorted
  std::vector<AsnEq> asn_eq_;
  std::vector<RatePred> rates_;
  std::vector<ServicePortSet> service_sets_;

  /// Interned ASN membership index, built after emit() when the plan has
  /// at most 64 asn sets: an open-addressed hash from every distinct AS
  /// number appearing in any set to a bitmask of the sets containing it.
  /// An endpoint's AS then resolves to a set-membership mask with one
  /// probe per record, and each kAsnSet step is a single bit test instead
  /// of its own search -- the win that matters for guard chains which
  /// re-test the same endpoints against many hypergiant AS lists.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> asn_index_;  // key,mask
  std::uint32_t asn_index_cap_ = 0;  // slots - 1 (power-of-two table)
  bool use_asn_index_ = false;

  // Which per-record derived values the batch evaluator must materialize.
  bool needs_service_ = false;
  bool needs_as_ = false;
};

}  // namespace lockdown::filter
