#include "flow/anonymizer.hpp"

#include <array>

namespace lockdown::flow {

using net::Ipv4Address;
using net::Ipv6Address;

Ipv4Address Anonymizer::anonymize(Ipv4Address addr) const noexcept {
  if (mode_ == AnonymizationMode::kPrefixPreserving) {
    return prefix_preserving_v4(addr);
  }
  // Four-round Feistel network on 16-bit halves with a SipHash round
  // function: a keyed *bijection* on the 32-bit address space, so distinct
  // addresses never collide (unique-IP counts on anonymized traces are
  // exact, which Fig 8 relies on).
  std::uint32_t left = addr.value() >> 16;
  std::uint32_t right = addr.value() & 0xffff;
  for (std::uint32_t round = 0; round < 4; ++round) {
    const std::uint64_t f = util::siphash24_value(
        key_, (static_cast<std::uint64_t>(round) << 32) | right);
    const std::uint32_t next = left ^ (static_cast<std::uint32_t>(f) & 0xffff);
    left = right;
    right = next;
  }
  return Ipv4Address((left << 16) | right);
}

Ipv6Address Anonymizer::anonymize(const Ipv6Address& addr) const noexcept {
  if (mode_ == AnonymizationMode::kPrefixPreserving) {
    // Bitwise scheme over the full 128 bits, same construction as v4.
    const auto& in = addr.bytes();
    Ipv6Address::Bytes out{};
    std::uint64_t prefix_hi = 0;
    std::uint64_t prefix_lo = 0;
    for (int bit = 0; bit < 128; ++bit) {
      const int byte = bit / 8;
      const int shift = 7 - bit % 8;
      const int b = (in[byte] >> shift) & 1;
      // One pseudorandom bit per prefix value seen so far.
      const std::uint64_t h = util::siphash24_value(
          key_, std::array<std::uint64_t, 2>{
                    prefix_hi, (prefix_lo << 8) | static_cast<unsigned>(bit)});
      const int flip = static_cast<int>(h & 1);
      out[byte] = static_cast<std::uint8_t>(out[byte] | ((b ^ flip) << shift));
      // Extend the prefix with the *original* bit.
      prefix_hi = (prefix_hi << 1) | (prefix_lo >> 63);
      prefix_lo = (prefix_lo << 1) | static_cast<unsigned>(b);
    }
    return Ipv6Address(out);
  }
  const std::uint64_t h1 = util::siphash24_value(key_, addr.high());
  const std::uint64_t h2 = util::siphash24_value(
      key_, std::array<std::uint64_t, 2>{addr.low(), 0x6c6f636bULL});
  return Ipv6Address::from_halves(h1, h2);
}

net::IpAddress Anonymizer::anonymize(const net::IpAddress& addr) const noexcept {
  return addr.is_v4() ? net::IpAddress(anonymize(addr.v4()))
                      : net::IpAddress(anonymize(addr.v6()));
}

void Anonymizer::anonymize(FlowRecord& record) const noexcept {
  record.src_addr = anonymize(record.src_addr);
  record.dst_addr = anonymize(record.dst_addr);
}

Ipv4Address Anonymizer::prefix_preserving_v4(Ipv4Address addr) const noexcept {
  // Crypto-PAn construction: output bit i = input bit i XOR f(prefix_i),
  // where prefix_i is the first i input bits. Two addresses agreeing on k
  // bits produce identical f-streams for the first k bits, so the outputs
  // agree on exactly those k bits (and differ at the first disagreeing bit
  // because XOR preserves the difference).
  const std::uint32_t in = addr.value();
  std::uint32_t out = 0;
  std::uint32_t prefix = 0;  // first i bits, right-aligned
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t h = util::siphash24_value(
        key_, (static_cast<std::uint64_t>(prefix) << 8) | static_cast<unsigned>(i));
    const std::uint32_t in_bit = (in >> (31 - i)) & 1;
    const std::uint32_t out_bit = in_bit ^ static_cast<std::uint32_t>(h & 1);
    out |= out_bit << (31 - i);
    prefix = (prefix << 1) | in_bit;
  }
  return Ipv4Address(out);
}

}  // namespace lockdown::flow
