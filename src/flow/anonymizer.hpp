// IP address anonymization, modelling the paper's ethics setup (§2.1): all
// analyses ran on-premise and IP addresses were hashed before any result
// left the vantage point. Two modes:
//
//  * kFullHash: each address maps to a pseudorandom address under a keyed
//    SipHash-2-4; no structure survives. Sufficient for every analysis that
//    groups by AS/port only (AS annotations are taken before hashing, as at
//    the real vantage points).
//  * kPrefixPreserving: a Crypto-PAn-style bitwise scheme where two inputs
//    sharing a k-bit prefix map to outputs sharing exactly a k-bit prefix.
//    This keeps prefix-trie lookups meaningful on anonymized data.
//
// Both are deterministic per key, so unique-IP counting (Fig 8) still works
// on anonymized traces.
#pragma once

#include <cstdint>

#include "flow/flow_record.hpp"
#include "net/ip.hpp"
#include "util/siphash.hpp"

namespace lockdown::flow {

enum class AnonymizationMode : std::uint8_t {
  kFullHash,
  kPrefixPreserving,
};

class Anonymizer {
 public:
  Anonymizer(util::SipHashKey key, AnonymizationMode mode) noexcept
      : key_(key), mode_(mode) {}

  [[nodiscard]] net::Ipv4Address anonymize(net::Ipv4Address addr) const noexcept;
  [[nodiscard]] net::Ipv6Address anonymize(const net::Ipv6Address& addr) const noexcept;
  [[nodiscard]] net::IpAddress anonymize(const net::IpAddress& addr) const noexcept;

  /// Anonymize both endpoints of a record in place.
  void anonymize(FlowRecord& record) const noexcept;

  [[nodiscard]] AnonymizationMode mode() const noexcept { return mode_; }

 private:
  [[nodiscard]] net::Ipv4Address prefix_preserving_v4(net::Ipv4Address addr) const noexcept;

  util::SipHashKey key_;
  AnonymizationMode mode_;
};

}  // namespace lockdown::flow
