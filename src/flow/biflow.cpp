#include "flow/biflow.hpp"

#include <cmath>

namespace lockdown::flow {

namespace {

/// Initiator heuristic: the endpoint using the higher (ephemeral) port is
/// the client; ties fall back to "src initiated" (the exporter saw the
/// first packet in that direction).
bool src_is_client(const FlowRecord& r) noexcept {
  if (r.protocol == IpProtocol::kGre || r.protocol == IpProtocol::kEsp ||
      r.protocol == IpProtocol::kIcmp) {
    return true;
  }
  return r.src_port >= r.dst_port;
}

}  // namespace

Biflow BiflowStitcher::orient(const FlowRecord& fwd, const FlowRecord* rev) {
  // `fwd` is the record whose src is the client.
  Biflow b;
  b.client_addr = fwd.src_addr;
  b.server_addr = fwd.dst_addr;
  b.client_port = fwd.src_port;
  b.server_port = fwd.dst_port;
  b.protocol = fwd.protocol;
  b.client_as = fwd.src_as;
  b.server_as = fwd.dst_as;
  b.forward_bytes = fwd.bytes;
  b.forward_packets = fwd.packets;
  b.first = fwd.first;
  b.last = fwd.last;
  if (rev != nullptr) {
    b.reverse_bytes = rev->bytes;
    b.reverse_packets = rev->packets;
    if (rev->first < b.first) b.first = rev->first;
    if (b.last < rev->last) b.last = rev->last;
  } else {
    b.one_sided = true;
  }
  return b;
}

void BiflowStitcher::add(const FlowRecord& record) {
  // Look for the reverse 5-tuple among pending records.
  const TupleKey reverse_key{record.dst_addr, record.src_addr, record.dst_port,
                             record.src_port, record.protocol};
  auto [it, end] = pending_.equal_range(reverse_key);
  for (; it != end; ++it) {
    const FlowRecord& partner = it->second;
    if (std::llabs(partner.first.seconds() - record.first.seconds()) > window_) {
      continue;
    }
    // Found the pair: orient by the client heuristic.
    const FlowRecord& fwd = src_is_client(record) ? record : partner;
    const FlowRecord& rev = src_is_client(record) ? partner : record;
    sink_(orient(fwd, &rev));
    ++paired_;
    pending_.erase(it);
    return;
  }

  // No partner yet: remember this record, periodically expiring stale
  // state so memory stays bounded on long streams without paying a full
  // scan per insertion.
  if (++adds_since_expiry_ >= 4096) {
    adds_since_expiry_ = 0;
    expire_older_than(net::Timestamp(record.first.seconds() - 2 * window_));
  }
  pending_.emplace(TupleKey{record.src_addr, record.dst_addr, record.src_port,
                            record.dst_port, record.protocol},
                   record);
}

void BiflowStitcher::emit_one_sided(const FlowRecord& r) {
  // Orient one-sided records too: a lone response flow still identifies
  // the server on its source side.
  if (src_is_client(r)) {
    sink_(orient(r, nullptr));
  } else {
    FlowRecord flipped = r;
    std::swap(flipped.src_addr, flipped.dst_addr);
    std::swap(flipped.src_port, flipped.dst_port);
    std::swap(flipped.src_as, flipped.dst_as);
    flipped.bytes = 0;
    flipped.packets = 0;
    Biflow b = orient(flipped, nullptr);
    b.reverse_bytes = r.bytes;
    b.reverse_packets = r.packets;
    sink_(b);
  }
  ++unpaired_;
}

void BiflowStitcher::expire_older_than(net::Timestamp cutoff) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.first < cutoff) {
      emit_one_sided(it->second);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void BiflowStitcher::flush() {
  for (const auto& [key, record] : pending_) emit_one_sided(record);
  pending_.clear();
}

}  // namespace lockdown::flow
