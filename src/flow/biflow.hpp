// Bidirectional flow stitching (RFC 5103 "Bidirectional Flow Export").
//
// NetFlow/IPFIX exporters emit two unidirectional records per TCP/UDP
// exchange; analyses that reason about *connections* (the paper's §7) are
// cleaner on biflows. The stitcher pairs records whose 5-tuples are exact
// reverses within a time window and labels the initiator by the
// ephemeral-port convention, producing one Biflow per connection; records
// that never find a reverse partner are flushed as one-sided.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/flow_record.hpp"
#include "net/ip.hpp"

namespace lockdown::flow {

struct Biflow {
  // Oriented so that src is the initiator (client).
  net::IpAddress client_addr;
  net::IpAddress server_addr;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  IpProtocol protocol = IpProtocol::kTcp;
  net::Asn client_as;
  net::Asn server_as;

  std::uint64_t forward_bytes = 0;   ///< client -> server
  std::uint64_t reverse_bytes = 0;   ///< server -> client
  std::uint64_t forward_packets = 0;
  std::uint64_t reverse_packets = 0;
  net::Timestamp first;
  net::Timestamp last;
  bool one_sided = false;  ///< no reverse record was observed
};

class BiflowStitcher {
 public:
  using Sink = std::function<void(const Biflow&)>;

  /// `pairing_window_seconds`: maximum distance between the two records'
  /// start timestamps for them to belong to the same connection.
  explicit BiflowStitcher(Sink sink, std::int64_t pairing_window_seconds = 300)
      : sink_(std::move(sink)), window_(pairing_window_seconds) {}

  /// Offer one unidirectional record. Emits a Biflow as soon as its
  /// reverse partner is found; unpaired records are emitted one-sided by
  /// flush() or when they age out of the pairing window.
  void add(const FlowRecord& record);

  /// Emit all still-unpaired records as one-sided biflows.
  void flush();

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t paired() const noexcept { return paired_; }
  [[nodiscard]] std::uint64_t unpaired() const noexcept { return unpaired_; }

 private:
  struct TupleKey {
    net::IpAddress a;
    net::IpAddress b;
    std::uint16_t pa;
    std::uint16_t pb;
    IpProtocol proto;
    bool operator==(const TupleKey&) const = default;
  };
  struct TupleKeyHash {
    std::size_t operator()(const TupleKey& k) const noexcept {
      const net::IpAddressHash h;
      std::size_t v = h(k.a) * 31 + h(k.b);
      v = v * 31 + ((static_cast<std::size_t>(k.pa) << 16) | k.pb);
      return v * 31 + static_cast<std::size_t>(k.proto);
    }
  };

  [[nodiscard]] static Biflow orient(const FlowRecord& fwd, const FlowRecord* rev);
  void emit_one_sided(const FlowRecord& r);
  void expire_older_than(net::Timestamp cutoff);

  Sink sink_;
  std::int64_t window_;
  std::unordered_multimap<TupleKey, FlowRecord, TupleKeyHash> pending_;
  std::uint64_t paired_ = 0;
  std::uint64_t unpaired_ = 0;
  std::uint32_t adds_since_expiry_ = 0;
};

}  // namespace lockdown::flow
