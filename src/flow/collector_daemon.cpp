#include "flow/collector_daemon.hpp"

#include <stdexcept>

namespace lockdown::flow {

CollectorDaemon::CollectorDaemon(CollectorDaemonConfig config, SliceSink sink)
    : config_(config), sink_(std::move(sink)),
      collector_(config.protocol,
                 [this](const FlowRecord& r) { on_record(r); },
                 config.anonymizer) {
  if (config_.rotation_seconds <= 0) {
    throw std::invalid_argument("CollectorDaemon: non-positive rotation window");
  }
}

void CollectorDaemon::ingest(std::span<const std::uint8_t> datagram) {
  collector_.ingest(datagram);
}

void CollectorDaemon::on_record(const FlowRecord& record) {
  // Window anchored on aligned flow time, like nfcapd's file naming.
  const std::int64_t window = config_.rotation_seconds;
  const net::Timestamp aligned(record.first.seconds() -
                               (((record.first.seconds() % window) + window) %
                                window));
  if (!window_begin_) {
    window_begin_ = aligned;
  } else if (aligned.seconds() >= window_begin_->seconds() + window) {
    rotate(aligned);
  }
  // Late records (older than the current window) are kept in the current
  // slice rather than reopening a shipped one -- same policy as nfcapd.
  writer_.append(record);
  ++spooled_;
}

void CollectorDaemon::rotate(net::Timestamp new_window_begin) {
  if (writer_.records_written() > 0) {
    TraceSlice slice;
    slice.begin = *window_begin_;
    slice.records = writer_.records_written();
    slice.image = writer_.finish();
    ++slices_;
    sink_(std::move(slice));
  }
  window_begin_ = new_window_begin;
}

void CollectorDaemon::flush() {
  if (writer_.records_written() > 0 && window_begin_) {
    TraceSlice slice;
    slice.begin = *window_begin_;
    slice.records = writer_.records_written();
    slice.image = writer_.finish();
    ++slices_;
    sink_(std::move(slice));
  }
  window_begin_.reset();
}

}  // namespace lockdown::flow
