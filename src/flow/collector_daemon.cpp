#include "flow/collector_daemon.hpp"

#include <stdexcept>
#include <string>

namespace lockdown::flow {

SliceSpooler::SliceSpooler(std::int64_t rotation_seconds, SliceSink sink)
    : rotation_seconds_(rotation_seconds), sink_(std::move(sink)) {
  if (rotation_seconds_ <= 0) {
    throw std::invalid_argument("SliceSpooler: non-positive rotation window");
  }
}

void SliceSpooler::append(const FlowRecord& record) {
  // Window anchored on aligned flow time, like nfcapd's file naming.
  const std::int64_t window = rotation_seconds_;
  const net::Timestamp aligned(record.first.seconds() -
                               (((record.first.seconds() % window) + window) %
                                window));
  if (!window_begin_) {
    window_begin_ = aligned;
  } else if (aligned.seconds() >= window_begin_->seconds() + window) {
    rotate(aligned);
  }
  // Late records (older than the current window) are kept in the current
  // slice rather than reopening a shipped one -- same policy as nfcapd.
  writer_.append(record);
  ++spooled_;
}

void SliceSpooler::rotate(net::Timestamp new_window_begin) {
  if (writer_.records_written() > 0) {
    TraceSlice slice;
    slice.begin = *window_begin_;
    slice.records = writer_.records_written();
    slice.image = writer_.finish();
    ++slices_;
    sink_(std::move(slice));
  }
  window_begin_ = new_window_begin;
}

void SliceSpooler::flush() {
  if (writer_.records_written() > 0 && window_begin_) {
    TraceSlice slice;
    slice.begin = *window_begin_;
    slice.records = writer_.records_written();
    slice.image = writer_.finish();
    ++slices_;
    sink_(std::move(slice));
  }
  window_begin_.reset();
}

CollectorDaemon::CollectorDaemon(CollectorDaemonConfig config, SliceSink sink)
    : spooler_(config.rotation_seconds, std::move(sink)),
      metrics_(config.metrics != nullptr
                   ? CollectorMetrics::bind(
                         *config.metrics,
                         std::string("protocol=\"") +
                             protocol_label(config.protocol) + "\"")
                   : CollectorMetrics{}),
      stage_latency_(config.metrics != nullptr
                         ? obs::StageLatency::bind(*config.metrics)
                         : obs::StageLatency{}),
      observer_(std::move(config.batch_observer)),
      collector_(config.protocol,
                 Collector::BatchSink([this](std::span<const FlowRecord> batch) {
                   // Same watermark stages as the sharded runtime (decode
                   // done at sink entry, route after the observer, spool
                   // after the spooler took the batch), measured from the
                   // ingest() stamp -- the single-threaded path has no
                   // ticket reorder, so all three close back to back.
                   const std::uint64_t arrival = obs::arrival_ns();
                   obs::StageLatency::observe_since(stage_latency_.decode,
                                                    arrival);
                   if (observer_) observer_(batch);
                   obs::StageLatency::observe_since(stage_latency_.route,
                                                    arrival);
                   for (const FlowRecord& r : batch) spooler_.append(r);
                   obs::StageLatency::observe_since(stage_latency_.spool,
                                                    arrival);
                 }),
                 config.anonymizer, config.rescale_sampled,
                 config.metrics != nullptr ? &metrics_ : nullptr) {}

void CollectorDaemon::ingest(std::span<const std::uint8_t> datagram,
                             std::uint64_t arrival_ns) {
  obs::set_arrival_ns(arrival_ns != 0 ? arrival_ns : obs::trace_now_ns());
  collector_.ingest(datagram);
  obs::set_arrival_ns(0);
}

void CollectorDaemon::flush() { spooler_.flush(); }

}  // namespace lockdown::flow
