// Rotating flow collector: the long-running service a vantage point
// actually deploys (nfcapd-style). Combines a wire decoder, optional
// on-premise anonymization (the §2.1 ethics requirement), and time-based
// trace-file rotation so analysis jobs can pick up completed slices.
//
// The daemon is transport-agnostic: feed it datagrams from
// UdpCollectorTransport::drain, from a pcap replay, or from the in-memory
// pipeline -- it only cares about bytes in, rotated trace images out.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flow/anonymizer.hpp"
#include "flow/collector_metrics.hpp"
#include "flow/pipeline.hpp"
#include "flow/trace_file.hpp"
#include "obs/watermark.hpp"

namespace lockdown::flow {

struct CollectorDaemonConfig {
  ExportProtocol protocol = ExportProtocol::kIpfix;
  /// Rotate when the current slice covers this many seconds of flow time
  /// (nfcapd's default is 300s). Rotation is driven by record timestamps,
  /// not the wall clock, so replays rotate identically to live capture.
  std::int64_t rotation_seconds = 300;
  /// Anonymize before spooling (nullptr = store raw).
  const Anonymizer* anonymizer = nullptr;
  /// Multiply per-record bytes/packets by the exporter-announced sampling
  /// interval (v5 header / v9 options templates) on decode. Flow *counts*
  /// stay unscaled -- rescale those with MonitorSet::set_flow_scale (the
  /// sampler-rescaling contract in filter/monitor.hpp).
  bool rescale_sampled = false;
  /// When set, the daemon binds collector counters (labeled by protocol)
  /// into this registry. Must outlive the daemon.
  obs::Registry* metrics = nullptr;
  /// Observes every decoded (and, when configured, anonymized) record
  /// batch before it is spooled -- the monitoring-object routing hook
  /// (filter::MonitorSet::batch_sink). Called on the ingest thread.
  Collector::BatchSink batch_observer;
};

/// A completed trace slice.
struct TraceSlice {
  net::Timestamp begin;  ///< start of the slice window (aligned)
  std::vector<std::uint8_t> image;
  std::size_t records = 0;
};

using SliceSink = std::function<void(TraceSlice&&)>;

/// The rotation engine on its own: decoded records in, completed trace
/// slices out. Extracted from CollectorDaemon so other front-ends (the
/// sharded runtime's daemon, replay tools) can reuse the exact nfcapd
/// window policy without owning a wire decoder. Single-threaded: callers
/// that decode on worker threads must serialize their appends.
class SliceSpooler {
 public:
  /// Throws std::invalid_argument on a non-positive rotation window.
  SliceSpooler(std::int64_t rotation_seconds, SliceSink sink);

  /// Spool one decoded record, rotating when its aligned window advances.
  void append(const FlowRecord& record);

  /// Flush the current partial slice (end of capture / shutdown).
  void flush();

  [[nodiscard]] std::size_t slices_emitted() const noexcept { return slices_; }
  [[nodiscard]] std::size_t records_spooled() const noexcept { return spooled_; }

 private:
  void rotate(net::Timestamp new_window_begin);

  std::int64_t rotation_seconds_;
  SliceSink sink_;
  TraceWriter writer_;
  std::optional<net::Timestamp> window_begin_;
  std::size_t slices_ = 0;
  std::size_t spooled_ = 0;
};

class CollectorDaemon {
 public:
  using SliceSink = flow::SliceSink;

  CollectorDaemon(CollectorDaemonConfig config, SliceSink sink);

  /// Ingest one datagram from the wire. `arrival_ns` is the monotonic
  /// (trace_now_ns) wire-arrival stamp for the pipeline latency
  /// watermarks; 0 (the default) stamps "now".
  void ingest(std::span<const std::uint8_t> datagram,
              std::uint64_t arrival_ns = 0);

  /// Flush the current partial slice (end of capture / shutdown).
  void flush();

  [[nodiscard]] const CollectorStats& wire_stats() const noexcept {
    return collector_.stats();
  }
  [[nodiscard]] std::size_t slices_emitted() const noexcept {
    return spooler_.slices_emitted();
  }
  [[nodiscard]] std::size_t records_spooled() const noexcept {
    return spooler_.records_spooled();
  }

 private:
  SliceSpooler spooler_;
  /// Bound against config.metrics (empty handles otherwise). Must precede
  /// collector_, which keeps a pointer to it.
  CollectorMetrics metrics_;
  /// Per-stage latency histograms (null handles unless config.metrics is
  /// set); observed from the batch sink, so must precede collector_.
  obs::StageLatency stage_latency_;
  Collector::BatchSink observer_;
  Collector collector_;
};

}  // namespace lockdown::flow
