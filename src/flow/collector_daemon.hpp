// Rotating flow collector: the long-running service a vantage point
// actually deploys (nfcapd-style). Combines a wire decoder, optional
// on-premise anonymization (the §2.1 ethics requirement), and time-based
// trace-file rotation so analysis jobs can pick up completed slices.
//
// The daemon is transport-agnostic: feed it datagrams from
// UdpCollectorTransport::drain, from a pcap replay, or from the in-memory
// pipeline -- it only cares about bytes in, rotated trace images out.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flow/anonymizer.hpp"
#include "flow/pipeline.hpp"
#include "flow/trace_file.hpp"

namespace lockdown::flow {

struct CollectorDaemonConfig {
  ExportProtocol protocol = ExportProtocol::kIpfix;
  /// Rotate when the current slice covers this many seconds of flow time
  /// (nfcapd's default is 300s). Rotation is driven by record timestamps,
  /// not the wall clock, so replays rotate identically to live capture.
  std::int64_t rotation_seconds = 300;
  /// Anonymize before spooling (nullptr = store raw).
  const Anonymizer* anonymizer = nullptr;
};

/// A completed trace slice.
struct TraceSlice {
  net::Timestamp begin;  ///< start of the slice window (aligned)
  std::vector<std::uint8_t> image;
  std::size_t records = 0;
};

class CollectorDaemon {
 public:
  using SliceSink = std::function<void(TraceSlice&&)>;

  CollectorDaemon(CollectorDaemonConfig config, SliceSink sink);

  /// Ingest one datagram from the wire.
  void ingest(std::span<const std::uint8_t> datagram);

  /// Flush the current partial slice (end of capture / shutdown).
  void flush();

  [[nodiscard]] const CollectorStats& wire_stats() const noexcept {
    return collector_.stats();
  }
  [[nodiscard]] std::size_t slices_emitted() const noexcept { return slices_; }
  [[nodiscard]] std::size_t records_spooled() const noexcept { return spooled_; }

 private:
  void on_record(const FlowRecord& record);
  void rotate(net::Timestamp new_window_begin);

  CollectorDaemonConfig config_;
  SliceSink sink_;
  Collector collector_;
  TraceWriter writer_;
  std::optional<net::Timestamp> window_begin_;
  std::size_t slices_ = 0;
  std::size_t spooled_ = 0;
};

}  // namespace lockdown::flow
