#include "flow/collector_metrics.hpp"

#include "obs/metrics.hpp"

namespace lockdown::flow {

namespace {

std::string join_labels(std::string_view base, std::string_view extra) {
  if (base.empty()) return std::string(extra);
  if (extra.empty()) return std::string(base);
  std::string out(base);
  out += ',';
  out += extra;
  return out;
}

}  // namespace

CollectorMetrics CollectorMetrics::bind(obs::Registry& registry,
                                        std::string_view extra_labels) {
  CollectorMetrics m;
  m.packets = &registry.counter("collector_packets_total", extra_labels,
                                "Export datagrams received");
  m.records = &registry.counter("collector_records_total", extra_labels,
                                "Flow records delivered to the sink");
  m.templates = &registry.counter("collector_templates_total", extra_labels,
                                  "Template records parsed");
  m.template_withdrawals =
      &registry.counter("collector_template_withdrawals_total", extra_labels,
                        "RFC 7011 template withdrawals applied");
  m.oversize_fields =
      &registry.counter("collector_oversize_fields_total", extra_labels,
                        "Option fields longer than 8 bytes (clamped)");
  m.sequence_lost =
      &registry.counter("collector_sequence_lost_total", extra_labels,
                        "Export units lost per sequence gaps (packets for "
                        "NetFlow v9, records for v5/IPFIX)");
  m.sequence_gaps =
      &registry.counter("collector_sequence_gaps_total", extra_labels,
                        "Forward sequence-gap events");
  m.sequence_reordered =
      &registry.counter("collector_sequence_reordered_total", extra_labels,
                        "Exports that arrived late within the reorder window");
  m.sequence_resets =
      &registry.counter("collector_sequence_resets_total", extra_labels,
                        "Apparent exporter restarts (sequence far behind)");
  for (std::size_t i = 0; i < kDecodeErrorCauses; ++i) {
    std::string labels = join_labels(
        std::string("error=\"") + to_string(kAllDecodeErrors[i]) + "\"",
        extra_labels);
    m.errors[i] = &registry.counter("collector_decode_errors_total", labels,
                                    "Rejected datagrams by cause");
  }
  return m;
}

}  // namespace lockdown::flow
