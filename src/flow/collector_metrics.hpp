// Binding between the collector stack and the obs metrics registry: a
// bundle of pre-resolved counter handles so the Collector hot path pays
// one relaxed fetch_add per event instead of a registry lookup. All
// handles are atomic, so one CollectorMetrics instance can be shared by
// every shard of a sharded collector.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "flow/decode_error.hpp"

namespace lockdown::obs {
class Registry;
class Counter;
}  // namespace lockdown::obs

namespace lockdown::flow {

struct CollectorMetrics {
  obs::Counter* packets = nullptr;
  obs::Counter* records = nullptr;
  obs::Counter* templates = nullptr;
  obs::Counter* template_withdrawals = nullptr;
  obs::Counter* oversize_fields = nullptr;
  obs::Counter* sequence_lost = nullptr;
  obs::Counter* sequence_gaps = nullptr;
  obs::Counter* sequence_reordered = nullptr;
  obs::Counter* sequence_resets = nullptr;
  /// One counter per DecodeError cause (index = enum value - 1; kNone has
  /// no counter). `collector_decode_errors_total{error="..."}`.
  std::array<obs::Counter*, kDecodeErrorCauses> errors{};

  /// Counter for a specific decode error; nullptr for kNone or unbound.
  [[nodiscard]] obs::Counter* error_counter(DecodeError e) const noexcept {
    const auto i = static_cast<std::size_t>(e);
    return i == 0 || i > errors.size() ? nullptr : errors[i - 1];
  }

  /// Resolve every handle against `registry`. `extra_labels` (e.g.
  /// `protocol="ipfix"` or `shard="3"`) is appended to each series' label
  /// set; pass "" for unlabeled series.
  static CollectorMetrics bind(obs::Registry& registry,
                               std::string_view extra_labels = {});
};

}  // namespace lockdown::flow
