// Decode-error taxonomy for the wire decoders. A single "malformed"
// counter hides *why* a vantage point's feed is degrading -- a mis-sized
// flowset (an exporter bug) needs a different response than truncated
// datagrams (an MTU/path problem) or unknown-template churn (a collector
// restart). Each decoder classifies every rejected datagram; the Collector
// folds the classification into its stats and the metrics registry.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lockdown::flow {

enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncatedHeader,   ///< datagram shorter than the fixed header
  kBadVersion,        ///< version field does not match the protocol
  kBadLength,         ///< message/set/flowset length field lies about size
  kBadTemplate,       ///< template record malformed (huge field count, id < 256, zero-length records)
  kTruncatedRecord,   ///< data ran out mid-record
  kOther,             ///< consistency checks (e.g. advisory count disagreement)
};

/// Number of distinct error causes (every enumerator except kNone).
inline constexpr std::size_t kDecodeErrorCauses = 6;

/// Every non-kNone cause, for iteration (metrics binding, tests).
inline constexpr DecodeError kAllDecodeErrors[kDecodeErrorCauses] = {
    DecodeError::kTruncatedHeader, DecodeError::kBadVersion,
    DecodeError::kBadLength,       DecodeError::kBadTemplate,
    DecodeError::kTruncatedRecord, DecodeError::kOther,
};

[[nodiscard]] constexpr const char* to_string(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTruncatedHeader: return "truncated_header";
    case DecodeError::kBadVersion: return "bad_version";
    case DecodeError::kBadLength: return "bad_length";
    case DecodeError::kBadTemplate: return "bad_template";
    case DecodeError::kTruncatedRecord: return "truncated_record";
    case DecodeError::kOther: return "other";
  }
  return "?";
}

/// Per-kind rejection counters (one per DecodeError value except kNone).
struct DecodeErrorCounts {
  std::uint64_t truncated_header = 0;
  std::uint64_t bad_version = 0;
  std::uint64_t bad_length = 0;
  std::uint64_t bad_template = 0;
  std::uint64_t truncated_record = 0;
  std::uint64_t other = 0;

  constexpr void count(DecodeError e) noexcept {
    switch (e) {
      case DecodeError::kNone: break;
      case DecodeError::kTruncatedHeader: ++truncated_header; break;
      case DecodeError::kBadVersion: ++bad_version; break;
      case DecodeError::kBadLength: ++bad_length; break;
      case DecodeError::kBadTemplate: ++bad_template; break;
      case DecodeError::kTruncatedRecord: ++truncated_record; break;
      case DecodeError::kOther: ++other; break;
    }
  }

  [[nodiscard]] constexpr std::uint64_t total() const noexcept {
    return truncated_header + bad_version + bad_length + bad_template +
           truncated_record + other;
  }

  constexpr DecodeErrorCounts& operator+=(const DecodeErrorCounts& o) noexcept {
    truncated_header += o.truncated_header;
    bad_version += o.bad_version;
    bad_length += o.bad_length;
    bad_template += o.bad_template;
    truncated_record += o.truncated_record;
    other += o.other;
    return *this;
  }

  friend bool operator==(const DecodeErrorCounts&,
                         const DecodeErrorCounts&) = default;
};

}  // namespace lockdown::flow
