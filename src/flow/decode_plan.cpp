#include "flow/decode_plan.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <type_traits>

namespace lockdown::flow {

namespace {

/// Big-endian load of the widths decode_field() accepts for numeric
/// fields; every other width (including 0) yields 0, matching the
/// interpreted path's "skip and assign zero" behavior.
[[nodiscard]] inline std::uint64_t load_be(const std::uint8_t* p,
                                           std::uint16_t width) noexcept {
  switch (width) {
    case 1:
      return p[0];
    case 2:
      return static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    case 4:
      return static_cast<std::uint64_t>(p[0]) << 24 |
             static_cast<std::uint64_t>(p[1]) << 16 |
             static_cast<std::uint64_t>(p[2]) << 8 | p[3];
    case 8:
      return static_cast<std::uint64_t>(p[0]) << 56 |
             static_cast<std::uint64_t>(p[1]) << 48 |
             static_cast<std::uint64_t>(p[2]) << 40 |
             static_cast<std::uint64_t>(p[3]) << 32 |
             static_cast<std::uint64_t>(p[4]) << 24 |
             static_cast<std::uint64_t>(p[5]) << 16 |
             static_cast<std::uint64_t>(p[6]) << 8 | p[7];
    default:
      return 0;
  }
}

[[nodiscard]] constexpr bool numeric_width(std::uint16_t w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

/// Columnar inner loop for one numeric step: the width switch is hoisted
/// out of the record loop, so each case body is a run of fixed-width
/// big-endian loads at a constant stride -- the form the optimizer turns
/// into single loads plus a byte swap.
template <typename Assign>
inline void numeric_column(const std::uint8_t* p, std::size_t stride,
                           std::size_t n, std::uint16_t width, FlowRecord* out,
                           Assign assign) noexcept {
  switch (width) {
    case 1:
      for (std::size_t i = 0; i < n; ++i, p += stride) assign(out[i], p[0]);
      break;
    case 2:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        assign(out[i], static_cast<std::uint64_t>(p[0]) << 8 | p[1]);
      }
      break;
    case 4:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        assign(out[i], static_cast<std::uint64_t>(p[0]) << 24 |
                           static_cast<std::uint64_t>(p[1]) << 16 |
                           static_cast<std::uint64_t>(p[2]) << 8 | p[3]);
      }
      break;
    case 8:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        assign(out[i], static_cast<std::uint64_t>(p[0]) << 56 |
                           static_cast<std::uint64_t>(p[1]) << 48 |
                           static_cast<std::uint64_t>(p[2]) << 40 |
                           static_cast<std::uint64_t>(p[3]) << 32 |
                           static_cast<std::uint64_t>(p[4]) << 24 |
                           static_cast<std::uint64_t>(p[5]) << 16 |
                           static_cast<std::uint64_t>(p[6]) << 8 | p[7]);
      }
      break;
    default:  // non-loadable width: assign zero, like the scalar path
      for (std::size_t i = 0; i < n; ++i) assign(out[i], 0);
      break;
  }
}

}  // namespace

DecodePlan DecodePlan::compile(const TemplateRecord& tmpl) {
  DecodePlan plan;
  plan.steps_.reserve(tmpl.fields.size());
  std::size_t offset = 0;

  for (const FieldSpec& f : tmpl.fields) {
    const auto emit_numeric = [&](Op op) {
      // Non-loadable widths still assign (zero) in decode_field's
      // read_uint default case; width 0 encodes that in the step.
      plan.steps_.push_back(Step{static_cast<std::uint32_t>(offset),
                                 numeric_width(f.length) ? f.length
                                                         : std::uint16_t{0},
                                 op});
    };
    switch (f.id) {
      case FieldId::kOctetDeltaCount: emit_numeric(Op::kBytes); break;
      case FieldId::kPacketDeltaCount: emit_numeric(Op::kPackets); break;
      case FieldId::kProtocolIdentifier: emit_numeric(Op::kProtocol); break;
      case FieldId::kTcpControlBits: emit_numeric(Op::kTcpFlags); break;
      case FieldId::kSourceTransportPort: emit_numeric(Op::kSrcPort); break;
      case FieldId::kDestinationTransportPort: emit_numeric(Op::kDstPort); break;
      case FieldId::kIngressInterface: emit_numeric(Op::kInputIf); break;
      case FieldId::kEgressInterface: emit_numeric(Op::kOutputIf); break;
      case FieldId::kBgpSourceAsNumber: emit_numeric(Op::kSrcAs); break;
      case FieldId::kBgpDestinationAsNumber: emit_numeric(Op::kDstAs); break;
      case FieldId::kSourceIpv4Address: emit_numeric(Op::kSrcV4); break;
      case FieldId::kDestinationIpv4Address: emit_numeric(Op::kDstV4); break;
      case FieldId::kSourceIpv6Address:
        // A 16-byte copy, or -- any other width -- a pure skip with no
        // assignment (no step at all; the offset advance covers it).
        if (f.length == 16) {
          plan.steps_.push_back(
              Step{static_cast<std::uint32_t>(offset), 16, Op::kSrcV6});
        }
        break;
      case FieldId::kDestinationIpv6Address:
        if (f.length == 16) {
          plan.steps_.push_back(
              Step{static_cast<std::uint32_t>(offset), 16, Op::kDstV6});
        }
        break;
      case FieldId::kFirstSwitched: emit_numeric(Op::kFirstUptime); break;
      case FieldId::kLastSwitched: emit_numeric(Op::kLastUptime); break;
      case FieldId::kFlowStartSeconds: emit_numeric(Op::kFirstAbsolute); break;
      case FieldId::kFlowEndSeconds: emit_numeric(Op::kLastAbsolute); break;
      default:
        break;  // unknown IE: skip-listed, covered by the offset advance
    }
    offset += f.length;
  }
  plan.stride_ = offset;
  return plan;
}

void DecodePlan::decode(const std::uint8_t* rec, FlowRecord& out,
                        const TimeContext& tc) const noexcept {
  for (const Step& s : steps_) {
    const std::uint8_t* p = rec + s.src_offset;
    switch (s.op) {
      case Op::kBytes: out.bytes = load_be(p, s.width); break;
      case Op::kPackets: out.packets = load_be(p, s.width); break;
      case Op::kProtocol:
        out.protocol = static_cast<IpProtocol>(load_be(p, s.width));
        break;
      case Op::kTcpFlags:
        out.tcp_flags = static_cast<std::uint8_t>(load_be(p, s.width));
        break;
      case Op::kSrcPort:
        out.src_port = static_cast<std::uint16_t>(load_be(p, s.width));
        break;
      case Op::kDstPort:
        out.dst_port = static_cast<std::uint16_t>(load_be(p, s.width));
        break;
      case Op::kInputIf:
        out.input_if = static_cast<std::uint16_t>(load_be(p, s.width));
        break;
      case Op::kOutputIf:
        out.output_if = static_cast<std::uint16_t>(load_be(p, s.width));
        break;
      case Op::kSrcAs:
        out.src_as = net::Asn(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kDstAs:
        out.dst_as = net::Asn(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kSrcV4:
        out.src_addr =
            net::Ipv4Address(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kDstV4:
        out.dst_addr =
            net::Ipv4Address(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kSrcV6: {
        net::Ipv6Address::Bytes b;
        std::memcpy(b.data(), p, b.size());
        out.src_addr = net::Ipv6Address(b);
        break;
      }
      case Op::kDstV6: {
        net::Ipv6Address::Bytes b;
        std::memcpy(b.data(), p, b.size());
        out.dst_addr = net::Ipv6Address(b);
        break;
      }
      case Op::kFirstUptime:
        out.first =
            tc.from_uptime(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kLastUptime:
        out.last =
            tc.from_uptime(static_cast<std::uint32_t>(load_be(p, s.width)));
        break;
      case Op::kFirstAbsolute:
        out.first =
            net::Timestamp(static_cast<std::int64_t>(load_be(p, s.width)));
        break;
      case Op::kLastAbsolute:
        out.last =
            net::Timestamp(static_cast<std::int64_t>(load_be(p, s.width)));
        break;
    }
  }
}

void DecodePlan::decode_batch(const std::uint8_t* base, std::size_t n,
                              FlowRecord* out,
                              const TimeContext& tc) const noexcept {
  for (std::size_t done = 0; done < n; done += kTileRecords) {
    const std::size_t m = std::min(kTileRecords, n - done);
    decode_tile(base + done * stride_, m, out + done, tc);
  }
}

void DecodePlan::decode_batch(const std::uint8_t* base, std::size_t n,
                              std::vector<FlowRecord>& out,
                              const TimeContext& tc) const {
  // Appending a tile by range-inserting from a prototype array is a
  // memcpy (FlowRecord is trivially copyable); resize()'s per-member
  // default construction was costing as much as the decode itself.
  static_assert(std::is_trivially_copyable_v<FlowRecord>);
  static const std::array<FlowRecord, kTileRecords> kDefaults{};
  out.reserve(out.size() + n);
  for (std::size_t done = 0; done < n; done += kTileRecords) {
    const std::size_t m = std::min(kTileRecords, n - done);
    const std::size_t first = out.size();
    out.insert(out.end(), kDefaults.begin(), kDefaults.begin() + m);
    decode_tile(base + done * stride_, m, out.data() + first, tc);
  }
}

void DecodePlan::decode_tile(const std::uint8_t* base, std::size_t n,
                             FlowRecord* out,
                             const TimeContext& tc) const noexcept {
  const std::size_t stride = stride_;
  for (const Step& s : steps_) {
    const std::uint8_t* p = base + s.src_offset;
    // Steps run in template order across the whole batch; because every
    // step writes the same field of each record, the per-record final
    // values (including duplicate-field overwrites) match decode().
    switch (s.op) {
      case Op::kBytes:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept { r.bytes = v; });
        break;
      case Op::kPackets:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept { r.packets = v; });
        break;
      case Op::kProtocol:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.protocol = static_cast<IpProtocol>(v);
                       });
        break;
      case Op::kTcpFlags:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.tcp_flags = static_cast<std::uint8_t>(v);
                       });
        break;
      case Op::kSrcPort:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.src_port = static_cast<std::uint16_t>(v);
                       });
        break;
      case Op::kDstPort:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.dst_port = static_cast<std::uint16_t>(v);
                       });
        break;
      case Op::kInputIf:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.input_if = static_cast<std::uint16_t>(v);
                       });
        break;
      case Op::kOutputIf:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.output_if = static_cast<std::uint16_t>(v);
                       });
        break;
      case Op::kSrcAs:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.src_as = net::Asn(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kDstAs:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.dst_as = net::Asn(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kSrcV4:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.src_addr = net::Ipv4Address(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kDstV4:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.dst_addr = net::Ipv4Address(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kSrcV6:
        for (std::size_t i = 0; i < n; ++i, p += stride) {
          net::Ipv6Address::Bytes b;
          std::memcpy(b.data(), p, b.size());
          out[i].src_addr = net::Ipv6Address(b);
        }
        break;
      case Op::kDstV6:
        for (std::size_t i = 0; i < n; ++i, p += stride) {
          net::Ipv6Address::Bytes b;
          std::memcpy(b.data(), p, b.size());
          out[i].dst_addr = net::Ipv6Address(b);
        }
        break;
      case Op::kFirstUptime:
        numeric_column(p, stride, n, s.width, out,
                       [&tc](FlowRecord& r, std::uint64_t v) noexcept {
                         r.first = tc.from_uptime(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kLastUptime:
        numeric_column(p, stride, n, s.width, out,
                       [&tc](FlowRecord& r, std::uint64_t v) noexcept {
                         r.last = tc.from_uptime(static_cast<std::uint32_t>(v));
                       });
        break;
      case Op::kFirstAbsolute:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.first = net::Timestamp(static_cast<std::int64_t>(v));
                       });
        break;
      case Op::kLastAbsolute:
        numeric_column(p, stride, n, s.width, out,
                       [](FlowRecord& r, std::uint64_t v) noexcept {
                         r.last = net::Timestamp(static_cast<std::int64_t>(v));
                       });
        break;
    }
  }
}

}  // namespace lockdown::flow
