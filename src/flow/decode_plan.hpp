// Compiled per-template decode plans. The interpreted decode path walks
// `tmpl.fields` for every data record and re-dispatches decode_field()'s
// double switch (field id, then width) per field; at collector rates that
// dispatch is the dominant per-record cost. A DecodePlan is compiled once
// when a template enters the cache: a flat array of {src_offset, width,
// op} steps with the record stride precomputed, so per-record decoding is
// a single bounds check followed by a tight op loop of big-endian loads at
// fixed offsets. Unknown information elements and skip-only widths never
// make it into the step list -- their bytes are covered by the precomputed
// offsets.
//
// Semantics are byte-identical to running decode_field() over the template
// (the differential tests in test_flow_decode_plan.cpp pin this down),
// including the hostile corners: duplicate fields overwrite in template
// order, numeric fields with widths outside {1,2,4,8} assign zero, IPv6
// fields with a width other than 16 are skipped without assignment.
//
// Lifecycle: plans live next to their TemplateRecord in the decoders'
// per-(source, template-id) caches -- and therefore in the sharded
// runtime's per-shard caches. A template refresh overwrites the cache
// entry and recompiles the plan; an RFC 7011 §8.1 withdrawal erases entry
// and plan together. A plan never outlives its template.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/field_codec.hpp"
#include "flow/flow_record.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

class DecodePlan {
 public:
  DecodePlan() = default;

  /// Compile `tmpl` into a plan. Always succeeds; a template that yields
  /// no decodable records (stride 0) compiles to an empty plan with
  /// stride() == 0, which callers must treat as undecodable exactly like
  /// TemplateRecord::record_length() == 0.
  [[nodiscard]] static DecodePlan compile(const TemplateRecord& tmpl);

  /// Total wire bytes of one data record (== record_length() of the
  /// template, including skipped fields).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Number of compiled steps (skip-only fields compile to none).
  [[nodiscard]] std::size_t steps() const noexcept { return steps_.size(); }

  /// Decode one record. `rec` must point at stride() readable bytes; the
  /// caller performs that single bounds check (the decoders' record loops
  /// already guarantee it via `remaining() >= stride()`).
  void decode(const std::uint8_t* rec, FlowRecord& out,
              const TimeContext& tc) const noexcept;

  /// Decode `n` back-to-back records starting at `base` (n * stride()
  /// readable bytes) into out[0..n). Result-identical to calling decode()
  /// n times, but columnar: each step dispatches once and then runs a
  /// tight fixed-width load loop across every record, so the op and width
  /// dispatch amortizes over the whole data set instead of recurring per
  /// record. This is the loop the decoders run per data set.
  void decode_batch(const std::uint8_t* base, std::size_t n, FlowRecord* out,
                    const TimeContext& tc) const noexcept;

  /// Append-decode `n` back-to-back records onto `out` (one reservation up
  /// front). Equivalent to resize-then-decode_batch, but each tile of
  /// records is default-constructed and immediately decoded while still
  /// L1-resident, instead of streaming the whole appended range through
  /// the cache twice. This is the form the decoders call per data set.
  void decode_batch(const std::uint8_t* base, std::size_t n,
                    std::vector<FlowRecord>& out, const TimeContext& tc) const;

 private:
  /// Tile size for the columnar passes: ~128 records x (sizeof(FlowRecord)
  /// + a typical stride) stays well inside a 32 KiB L1D.
  static constexpr std::size_t kTileRecords = 128;

  /// One columnar pass over a tile of records small enough that the tile's
  /// input bytes and output records stay L1-resident across all steps;
  /// decode_batch() walks the full batch tile by tile so the repeated
  /// per-step passes never stream the whole batch through the cache.
  void decode_tile(const std::uint8_t* base, std::size_t n, FlowRecord* out,
                   const TimeContext& tc) const noexcept;
  /// Destination of one step. Mirrors the decode_field() switch cases.
  enum class Op : std::uint8_t {
    kBytes,
    kPackets,
    kProtocol,
    kTcpFlags,
    kSrcPort,
    kDstPort,
    kInputIf,
    kOutputIf,
    kSrcAs,
    kDstAs,
    kSrcV4,
    kDstV4,
    kSrcV6,
    kDstV6,
    kFirstUptime,
    kLastUptime,
    kFirstAbsolute,
    kLastAbsolute,
  };

  struct Step {
    // Max template is 65535 fields x 65535 bytes < 2^32, so offsets fit.
    std::uint32_t src_offset = 0;
    // 1/2/4/8 (numeric load), 16 (IPv6 copy), or 0: a numeric field with a
    // width decode_field() cannot load, which assigns zero.
    std::uint16_t width = 0;
    Op op = Op::kBytes;
  };

  std::vector<Step> steps_;
  std::size_t stride_ = 0;
};

/// A cached template plus its compiled plan; the value type of the
/// decoders' template caches so refresh/withdrawal invalidate both
/// together.
struct CachedTemplate {
  TemplateRecord record;
  DecodePlan plan;

  [[nodiscard]] static CachedTemplate make(TemplateRecord tmpl) {
    DecodePlan plan = DecodePlan::compile(tmpl);
    return CachedTemplate{std::move(tmpl), std::move(plan)};
  }
};

}  // namespace lockdown::flow
