#include "flow/encode_plan.hpp"

#include <algorithm>
#include <cstring>

namespace lockdown::flow {

namespace {

/// Big-endian store of the widths encode_field() accepts for numeric
/// fields. Storing the low `width` bytes of `v` replicates write_uint's
/// cast-to-sized-type truncation exactly.
inline void store_be(std::uint8_t* p, std::uint16_t width,
                     std::uint64_t v) noexcept {
  switch (width) {
    case 1:
      p[0] = static_cast<std::uint8_t>(v);
      break;
    case 2:
      p[0] = static_cast<std::uint8_t>(v >> 8);
      p[1] = static_cast<std::uint8_t>(v);
      break;
    case 4:
      p[0] = static_cast<std::uint8_t>(v >> 24);
      p[1] = static_cast<std::uint8_t>(v >> 16);
      p[2] = static_cast<std::uint8_t>(v >> 8);
      p[3] = static_cast<std::uint8_t>(v);
      break;
    case 8:
      p[0] = static_cast<std::uint8_t>(v >> 56);
      p[1] = static_cast<std::uint8_t>(v >> 48);
      p[2] = static_cast<std::uint8_t>(v >> 40);
      p[3] = static_cast<std::uint8_t>(v >> 32);
      p[4] = static_cast<std::uint8_t>(v >> 24);
      p[5] = static_cast<std::uint8_t>(v >> 16);
      p[6] = static_cast<std::uint8_t>(v >> 8);
      p[7] = static_cast<std::uint8_t>(v);
      break;
    default:
      break;  // never compiled into a step
  }
}

[[nodiscard]] constexpr bool numeric_width(std::uint16_t w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

/// Columnar inner loop for one numeric step: the width switch is hoisted
/// out of the record loop, so each case body is a run of fixed-width
/// big-endian stores at a constant stride -- the form the optimizer turns
/// into a byte swap plus a single store.
template <typename Load>
inline void numeric_column(std::uint8_t* p, std::size_t stride, std::size_t n,
                           std::uint16_t width, const FlowRecord* recs,
                           Load load) noexcept {
  switch (width) {
    case 1:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        p[0] = static_cast<std::uint8_t>(load(recs[i]));
      }
      break;
    case 2:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        const std::uint64_t v = load(recs[i]);
        p[0] = static_cast<std::uint8_t>(v >> 8);
        p[1] = static_cast<std::uint8_t>(v);
      }
      break;
    case 4:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        const std::uint64_t v = load(recs[i]);
        p[0] = static_cast<std::uint8_t>(v >> 24);
        p[1] = static_cast<std::uint8_t>(v >> 16);
        p[2] = static_cast<std::uint8_t>(v >> 8);
        p[3] = static_cast<std::uint8_t>(v);
      }
      break;
    case 8:
      for (std::size_t i = 0; i < n; ++i, p += stride) {
        const std::uint64_t v = load(recs[i]);
        p[0] = static_cast<std::uint8_t>(v >> 56);
        p[1] = static_cast<std::uint8_t>(v >> 48);
        p[2] = static_cast<std::uint8_t>(v >> 40);
        p[3] = static_cast<std::uint8_t>(v >> 32);
        p[4] = static_cast<std::uint8_t>(v >> 24);
        p[5] = static_cast<std::uint8_t>(v >> 16);
        p[6] = static_cast<std::uint8_t>(v >> 8);
        p[7] = static_cast<std::uint8_t>(v);
      }
      break;
    default:
      break;
  }
}

}  // namespace

EncodePlan EncodePlan::compile(const TemplateRecord& tmpl) {
  EncodePlan plan;
  plan.steps_.reserve(tmpl.fields.size());
  std::size_t offset = 0;

  for (const FieldSpec& f : tmpl.fields) {
    const auto emit_numeric = [&](Op op) {
      // Non-loadable widths encode as zeros in write_uint's default case;
      // the pre-zeroed region covers them, so no step is compiled.
      if (numeric_width(f.length)) {
        plan.steps_.push_back(
            Step{static_cast<std::uint32_t>(offset), f.length, op});
      }
    };
    switch (f.id) {
      case FieldId::kOctetDeltaCount: emit_numeric(Op::kBytes); break;
      case FieldId::kPacketDeltaCount: emit_numeric(Op::kPackets); break;
      case FieldId::kProtocolIdentifier: emit_numeric(Op::kProtocol); break;
      case FieldId::kTcpControlBits: emit_numeric(Op::kTcpFlags); break;
      case FieldId::kSourceTransportPort: emit_numeric(Op::kSrcPort); break;
      case FieldId::kDestinationTransportPort: emit_numeric(Op::kDstPort); break;
      case FieldId::kIngressInterface: emit_numeric(Op::kInputIf); break;
      case FieldId::kEgressInterface: emit_numeric(Op::kOutputIf); break;
      case FieldId::kBgpSourceAsNumber: emit_numeric(Op::kSrcAs); break;
      case FieldId::kBgpDestinationAsNumber: emit_numeric(Op::kDstAs); break;
      case FieldId::kSourceIpv4Address: emit_numeric(Op::kSrcV4); break;
      case FieldId::kDestinationIpv4Address: emit_numeric(Op::kDstV4); break;
      case FieldId::kSourceIpv6Address:
        // A 16-byte copy, or -- any other width -- zeros with no step.
        if (f.length == 16) {
          plan.steps_.push_back(
              Step{static_cast<std::uint32_t>(offset), 16, Op::kSrcV6});
        }
        break;
      case FieldId::kDestinationIpv6Address:
        if (f.length == 16) {
          plan.steps_.push_back(
              Step{static_cast<std::uint32_t>(offset), 16, Op::kDstV6});
        }
        break;
      case FieldId::kFirstSwitched: emit_numeric(Op::kFirstUptime); break;
      case FieldId::kLastSwitched: emit_numeric(Op::kLastUptime); break;
      case FieldId::kFlowStartSeconds: emit_numeric(Op::kFirstAbsolute); break;
      case FieldId::kFlowEndSeconds: emit_numeric(Op::kLastAbsolute); break;
      default:
        break;  // unknown IE: zeros, covered by the zeroed region
    }
    offset += f.length;
  }
  plan.stride_ = offset;
  return plan;
}

void EncodePlan::encode(const FlowRecord& r, std::uint8_t* dst,
                        const TimeContext& tc) const noexcept {
  std::memset(dst, 0, stride_);
  for (const Step& s : steps_) {
    std::uint8_t* p = dst + s.dst_offset;
    switch (s.op) {
      case Op::kBytes: store_be(p, s.width, r.bytes); break;
      case Op::kPackets: store_be(p, s.width, r.packets); break;
      case Op::kProtocol:
        store_be(p, s.width, static_cast<std::uint8_t>(r.protocol));
        break;
      case Op::kTcpFlags: store_be(p, s.width, r.tcp_flags); break;
      case Op::kSrcPort: store_be(p, s.width, r.src_port); break;
      case Op::kDstPort: store_be(p, s.width, r.dst_port); break;
      case Op::kInputIf: store_be(p, s.width, r.input_if); break;
      case Op::kOutputIf: store_be(p, s.width, r.output_if); break;
      case Op::kSrcAs: store_be(p, s.width, r.src_as.value()); break;
      case Op::kDstAs: store_be(p, s.width, r.dst_as.value()); break;
      case Op::kSrcV4:
        store_be(p, s.width,
                 r.src_addr.is_v4() ? r.src_addr.v4().value() : 0);
        break;
      case Op::kDstV4:
        store_be(p, s.width,
                 r.dst_addr.is_v4() ? r.dst_addr.v4().value() : 0);
        break;
      case Op::kSrcV6:
        if (r.src_addr.is_v6()) {
          std::memcpy(p, r.src_addr.v6().bytes().data(), 16);
        }
        break;
      case Op::kDstV6:
        if (r.dst_addr.is_v6()) {
          std::memcpy(p, r.dst_addr.v6().bytes().data(), 16);
        }
        break;
      case Op::kFirstUptime:
        store_be(p, s.width, tc.to_uptime(r.first));
        break;
      case Op::kLastUptime:
        store_be(p, s.width, tc.to_uptime(r.last));
        break;
      case Op::kFirstAbsolute:
        store_be(p, s.width, static_cast<std::uint32_t>(r.first.seconds()));
        break;
      case Op::kLastAbsolute:
        store_be(p, s.width, static_cast<std::uint32_t>(r.last.seconds()));
        break;
    }
  }
}

void EncodePlan::encode_batch(const FlowRecord* records, std::size_t n,
                              std::uint8_t* dst,
                              const TimeContext& tc) const noexcept {
  for (std::size_t done = 0; done < n; done += kTileRecords) {
    const std::size_t m = std::min(kTileRecords, n - done);
    encode_tile(records + done, m, dst + done * stride_, tc);
  }
}

void EncodePlan::encode_tile(const FlowRecord* records, std::size_t n,
                             std::uint8_t* dst,
                             const TimeContext& tc) const noexcept {
  const std::size_t stride = stride_;
  // One memset covers every zero-encoded byte (unknown IEs, odd-width
  // numerics, the empty family of an address pair) while the tile is
  // L1-resident; the steps then overwrite only the live fields.
  std::memset(dst, 0, n * stride);
  for (const Step& s : steps_) {
    std::uint8_t* p = dst + s.dst_offset;
    switch (s.op) {
      case Op::kBytes:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept { return r.bytes; });
        break;
      case Op::kPackets:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept { return r.packets; });
        break;
      case Op::kProtocol:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(
                             static_cast<std::uint8_t>(r.protocol));
                       });
        break;
      case Op::kTcpFlags:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.tcp_flags);
                       });
        break;
      case Op::kSrcPort:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.src_port);
                       });
        break;
      case Op::kDstPort:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.dst_port);
                       });
        break;
      case Op::kInputIf:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.input_if);
                       });
        break;
      case Op::kOutputIf:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.output_if);
                       });
        break;
      case Op::kSrcAs:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.src_as.value());
                       });
        break;
      case Op::kDstAs:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(r.dst_as.value());
                       });
        break;
      case Op::kSrcV4:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(
                             r.src_addr.is_v4() ? r.src_addr.v4().value() : 0);
                       });
        break;
      case Op::kDstV4:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(
                             r.dst_addr.is_v4() ? r.dst_addr.v4().value() : 0);
                       });
        break;
      case Op::kSrcV6:
        for (std::size_t i = 0; i < n; ++i, p += stride) {
          if (records[i].src_addr.is_v6()) {
            std::memcpy(p, records[i].src_addr.v6().bytes().data(), 16);
          }
        }
        break;
      case Op::kDstV6:
        for (std::size_t i = 0; i < n; ++i, p += stride) {
          if (records[i].dst_addr.is_v6()) {
            std::memcpy(p, records[i].dst_addr.v6().bytes().data(), 16);
          }
        }
        break;
      case Op::kFirstUptime:
        numeric_column(p, stride, n, s.width, records,
                       [&tc](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(tc.to_uptime(r.first));
                       });
        break;
      case Op::kLastUptime:
        numeric_column(p, stride, n, s.width, records,
                       [&tc](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(tc.to_uptime(r.last));
                       });
        break;
      case Op::kFirstAbsolute:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(r.first.seconds()));
                       });
        break;
      case Op::kLastAbsolute:
        numeric_column(p, stride, n, s.width, records,
                       [](const FlowRecord& r) noexcept {
                         return static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(r.last.seconds()));
                       });
        break;
    }
  }
}

}  // namespace lockdown::flow
