// Compiled per-template encode plans: the encode-side mirror of
// DecodePlan. The interpreted export path walks `tmpl.fields` for every
// record and re-dispatches encode_field()'s double switch (field id, then
// width) per field, pushing bytes one at a time through a WireWriter. An
// EncodePlan is compiled once per template: a flat array of {dst_offset,
// width, op} steps with the record stride precomputed, so a whole data set
// is packed by zeroing the destination region and running each step as a
// tight loop of big-endian stores at fixed offsets across all records.
//
// Semantics are byte-identical to running encode_field() over the template
// (pinned by the differential tests in test_flow_encode_plan.cpp),
// including the corners: numeric fields with widths outside {1,2,4,8} and
// unknown information elements encode as zeros (covered by the pre-zeroed
// region -- they compile to no step at all), IPv6 address fields with a
// width other than 16 encode as zeros, IPv4 address fields carry 0 for v6
// records, and IPv6 address fields stay zero for v4 records. Duplicate
// fields are no hazard on the encode side: each field owns its own wire
// offset, so steps never alias.
//
// Lifecycle: our exporters use fixed templates, so a plan is compiled per
// encode_batch() call (compile cost is one small vector; data sets are
// thousands of records) and lives on the stack.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/field_codec.hpp"
#include "flow/flow_record.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

class EncodePlan {
 public:
  EncodePlan() = default;

  /// Compile `tmpl` into a plan. Always succeeds; a template that carries
  /// no bytes compiles to stride() == 0 and encodes nothing.
  [[nodiscard]] static EncodePlan compile(const TemplateRecord& tmpl);

  /// Wire bytes of one data record (== the template's record_length(),
  /// including zero-encoded fields).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Compiled steps (zero-encoded fields compile to none).
  [[nodiscard]] std::size_t steps() const noexcept { return steps_.size(); }

  /// Encode one record into `dst` (stride() writable bytes). Writes every
  /// byte of the record: the region is zeroed first, then the steps store
  /// the live fields.
  void encode(const FlowRecord& r, std::uint8_t* dst,
              const TimeContext& tc) const noexcept;

  /// Encode `n` records back-to-back into `dst` (n * stride() writable
  /// bytes). Byte-identical to calling encode() n times, but columnar:
  /// each step dispatches once and runs a tight fixed-width store loop
  /// across every record of an L1-resident tile, so the op and width
  /// dispatch amortizes over the whole data set.
  void encode_batch(const FlowRecord* records, std::size_t n, std::uint8_t* dst,
                    const TimeContext& tc) const noexcept;

 private:
  /// Tile size for the columnar passes (matches DecodePlan: ~128 records x
  /// (sizeof(FlowRecord) + stride) stays well inside a 32 KiB L1D).
  static constexpr std::size_t kTileRecords = 128;

  void encode_tile(const FlowRecord* records, std::size_t n, std::uint8_t* dst,
                   const TimeContext& tc) const noexcept;

  /// Source of one step's value. Mirrors the encode_field() switch cases
  /// that store anything other than zeros.
  enum class Op : std::uint8_t {
    kBytes,
    kPackets,
    kProtocol,
    kTcpFlags,
    kSrcPort,
    kDstPort,
    kInputIf,
    kOutputIf,
    kSrcAs,
    kDstAs,
    kSrcV4,
    kDstV4,
    kSrcV6,
    kDstV6,
    kFirstUptime,
    kLastUptime,
    kFirstAbsolute,
    kLastAbsolute,
  };

  struct Step {
    // Max template is 65535 fields x 65535 bytes < 2^32, so offsets fit.
    std::uint32_t dst_offset = 0;
    // 1/2/4/8 (numeric store) or 16 (IPv6 copy). Widths encode_field()
    // writes as zeros never become steps -- the zeroed region covers them.
    std::uint16_t width = 0;
    Op op = Op::kBytes;
  };

  std::vector<Step> steps_;
  std::size_t stride_ = 0;
};

}  // namespace lockdown::flow
