// Per-field encode/decode between FlowRecord and template-described wire
// records. Shared by the NetFlow v9 and IPFIX codecs. Unknown fields are
// zero-filled on encode and skipped on decode, which is what RFC 7011
// requires of collectors.
#pragma once

#include <cstdint>

#include "flow/flow_record.hpp"
#include "flow/template_fields.hpp"
#include "flow/wire.hpp"

namespace lockdown::flow {

/// Timestamp context: v9 stamps flows relative to exporter sysUptime; IPFIX
/// uses absolute seconds. `sys_uptime_ms`/`unix_secs` are only consulted
/// for the *Switched fields.
struct TimeContext {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t unix_secs = 0;

  [[nodiscard]] std::uint32_t to_uptime(net::Timestamp t) const noexcept {
    const std::int64_t delta_ms =
        (static_cast<std::int64_t>(unix_secs) - t.seconds()) * 1000;
    // Clamp like a real exporter: sysUptime cannot exceed "now" nor run
    // before boot.
    if (delta_ms < 0) return sys_uptime_ms;
    if (delta_ms > sys_uptime_ms) return 0;
    return sys_uptime_ms - static_cast<std::uint32_t>(delta_ms);
  }
  [[nodiscard]] net::Timestamp from_uptime(std::uint32_t up_ms) const noexcept {
    const std::int64_t delta_s =
        (static_cast<std::int64_t>(sys_uptime_ms) - up_ms) / 1000;
    return net::Timestamp(static_cast<std::int64_t>(unix_secs) - delta_s);
  }
};

inline void encode_field(WireWriter& w, const FieldSpec& spec,
                         const FlowRecord& r, const TimeContext& tc) {
  auto write_uint = [&](std::uint64_t v) {
    switch (spec.length) {
      case 1: w.u8(static_cast<std::uint8_t>(v)); break;
      case 2: w.u16(static_cast<std::uint16_t>(v)); break;
      case 4: w.u32(static_cast<std::uint32_t>(v)); break;
      case 8: w.u64(v); break;
      default: w.zeros(spec.length); break;
    }
  };

  switch (spec.id) {
    case FieldId::kOctetDeltaCount: write_uint(r.bytes); break;
    case FieldId::kPacketDeltaCount: write_uint(r.packets); break;
    case FieldId::kProtocolIdentifier:
      write_uint(static_cast<std::uint8_t>(r.protocol));
      break;
    case FieldId::kTcpControlBits: write_uint(r.tcp_flags); break;
    case FieldId::kSourceTransportPort: write_uint(r.src_port); break;
    case FieldId::kDestinationTransportPort: write_uint(r.dst_port); break;
    case FieldId::kIngressInterface: write_uint(r.input_if); break;
    case FieldId::kEgressInterface: write_uint(r.output_if); break;
    case FieldId::kBgpSourceAsNumber: write_uint(r.src_as.value()); break;
    case FieldId::kBgpDestinationAsNumber: write_uint(r.dst_as.value()); break;
    case FieldId::kSourceIpv4Address:
      write_uint(r.src_addr.is_v4() ? r.src_addr.v4().value() : 0);
      break;
    case FieldId::kDestinationIpv4Address:
      write_uint(r.dst_addr.is_v4() ? r.dst_addr.v4().value() : 0);
      break;
    case FieldId::kSourceIpv6Address:
      if (r.src_addr.is_v6() && spec.length == 16) {
        w.bytes(r.src_addr.v6().bytes());
      } else {
        w.zeros(spec.length);
      }
      break;
    case FieldId::kDestinationIpv6Address:
      if (r.dst_addr.is_v6() && spec.length == 16) {
        w.bytes(r.dst_addr.v6().bytes());
      } else {
        w.zeros(spec.length);
      }
      break;
    case FieldId::kFirstSwitched: write_uint(tc.to_uptime(r.first)); break;
    case FieldId::kLastSwitched: write_uint(tc.to_uptime(r.last)); break;
    case FieldId::kFlowStartSeconds:
      write_uint(static_cast<std::uint32_t>(r.first.seconds()));
      break;
    case FieldId::kFlowEndSeconds:
      write_uint(static_cast<std::uint32_t>(r.last.seconds()));
      break;
    default: w.zeros(spec.length); break;
  }
}

inline void decode_field(WireReader& rd, const FieldSpec& spec, FlowRecord& r,
                         const TimeContext& tc) {
  auto read_uint = [&]() -> std::uint64_t {
    switch (spec.length) {
      case 1: return rd.u8();
      case 2: return rd.u16();
      case 4: return rd.u32();
      case 8: return rd.u64();
      default: (void)rd.skip(spec.length); return 0;
    }
  };

  switch (spec.id) {
    case FieldId::kOctetDeltaCount: r.bytes = read_uint(); break;
    case FieldId::kPacketDeltaCount: r.packets = read_uint(); break;
    case FieldId::kProtocolIdentifier:
      r.protocol = static_cast<IpProtocol>(read_uint());
      break;
    case FieldId::kTcpControlBits:
      r.tcp_flags = static_cast<std::uint8_t>(read_uint());
      break;
    case FieldId::kSourceTransportPort:
      r.src_port = static_cast<std::uint16_t>(read_uint());
      break;
    case FieldId::kDestinationTransportPort:
      r.dst_port = static_cast<std::uint16_t>(read_uint());
      break;
    case FieldId::kIngressInterface:
      r.input_if = static_cast<std::uint16_t>(read_uint());
      break;
    case FieldId::kEgressInterface:
      r.output_if = static_cast<std::uint16_t>(read_uint());
      break;
    case FieldId::kBgpSourceAsNumber:
      r.src_as = net::Asn(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kBgpDestinationAsNumber:
      r.dst_as = net::Asn(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kSourceIpv4Address:
      r.src_addr = net::Ipv4Address(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kDestinationIpv4Address:
      r.dst_addr = net::Ipv4Address(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kSourceIpv6Address:
      if (spec.length == 16) {
        net::Ipv6Address::Bytes b{};
        (void)rd.read_bytes(b);
        r.src_addr = net::Ipv6Address(b);
      } else {
        (void)rd.skip(spec.length);
      }
      break;
    case FieldId::kDestinationIpv6Address:
      if (spec.length == 16) {
        net::Ipv6Address::Bytes b{};
        (void)rd.read_bytes(b);
        r.dst_addr = net::Ipv6Address(b);
      } else {
        (void)rd.skip(spec.length);
      }
      break;
    case FieldId::kFirstSwitched:
      r.first = tc.from_uptime(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kLastSwitched:
      r.last = tc.from_uptime(static_cast<std::uint32_t>(read_uint()));
      break;
    case FieldId::kFlowStartSeconds:
      r.first = net::Timestamp(static_cast<std::int64_t>(read_uint()));
      break;
    case FieldId::kFlowEndSeconds:
      r.last = net::Timestamp(static_cast<std::int64_t>(read_uint()));
      break;
    default: (void)rd.skip(spec.length); break;
  }
}

}  // namespace lockdown::flow
