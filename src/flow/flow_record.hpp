// The canonical flow record: what NetFlow v5/v9 and IPFIX records decode
// into and what every analysis consumes. Field set mirrors the subset of
// NetFlow/IPFIX information elements the paper's analyses need: 5-tuple,
// byte/packet counters, timestamps, interfaces (for the EDU directionality
// analysis) and optionally exporter-annotated src/dst AS numbers.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/asn.hpp"
#include "net/civil_time.hpp"
#include "net/ip.hpp"

namespace lockdown::flow {

/// IANA protocol numbers for the protocols the paper reasons about.
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kGre = 47,
  kEsp = 50,
};

[[nodiscard]] constexpr const char* to_string(IpProtocol p) noexcept {
  switch (p) {
    case IpProtocol::kIcmp: return "ICMP";
    case IpProtocol::kTcp: return "TCP";
    case IpProtocol::kUdp: return "UDP";
    case IpProtocol::kGre: return "GRE";
    case IpProtocol::kEsp: return "ESP";
  }
  return "?";
}

/// (protocol, destination port) pair -- the unit of the §4 port analysis.
/// GRE and ESP have no ports; they are represented with port 0.
struct PortKey {
  IpProtocol proto = IpProtocol::kTcp;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const PortKey&, const PortKey&) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    using lockdown::flow::to_string;
    if (proto == IpProtocol::kGre || proto == IpProtocol::kEsp) {
      return to_string(proto);
    }
    return std::string(to_string(proto)) + "/" + std::to_string(port);
  }
};

struct PortKeyHash {
  [[nodiscard]] constexpr std::size_t operator()(const PortKey& k) const noexcept {
    return (static_cast<std::size_t>(k.proto) << 16) | k.port;
  }
};

/// One unidirectional flow.
struct FlowRecord {
  net::IpAddress src_addr;
  net::IpAddress dst_addr;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProtocol protocol = IpProtocol::kTcp;
  std::uint8_t tcp_flags = 0;

  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;

  net::Timestamp first;  ///< flow start
  net::Timestamp last;   ///< flow end

  /// SNMP ifIndex of ingress/egress interface at the exporter. The EDU
  /// analysis uses these for directionality; 0 = unknown.
  std::uint16_t input_if = 0;
  std::uint16_t output_if = 0;

  /// Exporter-annotated origin AS of each endpoint (as real NetFlow
  /// deployments configure with `ip flow-export ... origin-as`).
  /// Asn(0) = unknown; analyses then fall back to prefix-trie lookup.
  net::Asn src_as;
  net::Asn dst_as;

  [[nodiscard]] PortKey service_port() const noexcept {
    // The service-identifying port of a flow is the lower of the two port
    // numbers in practice; our synthesizer always places the service port
    // in dst_port for request-direction flows and src_port for responses.
    // For analysis we use the numerically smaller non-zero port, matching
    // how the paper's per-port aggregations treat bidirectional traffic.
    if (protocol == IpProtocol::kGre || protocol == IpProtocol::kEsp ||
        protocol == IpProtocol::kIcmp) {
      return PortKey{protocol, 0};
    }
    const std::uint16_t a = src_port;
    const std::uint16_t b = dst_port;
    if (a == 0) return PortKey{protocol, b};
    if (b == 0) return PortKey{protocol, a};
    return PortKey{protocol, std::min(a, b)};
  }

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

}  // namespace lockdown::flow
