#include "flow/ipfix.hpp"

#include <algorithm>
#include <array>

#include "flow/encode_plan.hpp"
#include "flow/field_codec.hpp"
#include "flow/wire.hpp"
#include "obs/trace.hpp"

namespace lockdown::flow {

namespace {

void write_template_set(WireWriter& w, std::span<const TemplateRecord> templates) {
  const std::size_t set_start = w.size();
  w.u16(kIpfixTemplateSetId);
  w.u16(0);  // length placeholder
  for (const TemplateRecord& t : templates) {
    w.u16(t.template_id);
    w.u16(static_cast<std::uint16_t>(t.fields.size()));
    for (const FieldSpec& f : t.fields) {
      w.u16(static_cast<std::uint16_t>(f.id));
      w.u16(f.length);
    }
  }
  w.patch_u16(set_start + 2, static_cast<std::uint16_t>(w.size() - set_start));
}

}  // namespace

std::vector<std::vector<std::uint8_t>> IpfixEncoder::encode(
    std::span<const FlowRecord> records, net::Timestamp export_time,
    std::size_t max_records_per_message) {
  const TemplateRecord t4 = ipfix_v4_template();
  const TemplateRecord t6 = ipfix_v6_template();
  const TimeContext tc{};  // IPFIX uses absolute timestamps

  std::vector<std::vector<std::uint8_t>> messages;
  if (max_records_per_message == 0) max_records_per_message = 1;

  for (std::size_t off = 0; off < records.size() || messages.empty();) {
    const std::size_t n =
        std::min(max_records_per_message, records.size() - off);
    WireWriter w;
    w.u16(kIpfixVersion);
    w.u16(0);  // total length placeholder
    w.u32(static_cast<std::uint32_t>(export_time.seconds()));
    w.u32(sequence_);
    w.u32(domain_);

    const std::array<TemplateRecord, 2> both = {t4, t6};
    write_template_set(w, both);

    // Partition this chunk's records into one v4 data set and one v6 data
    // set (sets are homogeneous per template).
    for (const bool v6_pass : {false, true}) {
      const TemplateRecord& tmpl = v6_pass ? t6 : t4;
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (records[off + i].src_addr.is_v6() == v6_pass) ++count;
      }
      if (count == 0) continue;
      const std::size_t set_start = w.size();
      w.u16(tmpl.template_id);
      w.u16(0);  // length placeholder
      for (std::size_t i = 0; i < n; ++i) {
        const FlowRecord& r = records[off + i];
        if (r.src_addr.is_v6() != v6_pass) continue;
        for (const FieldSpec& f : tmpl.fields) encode_field(w, f, r, tc);
      }
      w.patch_u16(set_start + 2, static_cast<std::uint16_t>(w.size() - set_start));
      sequence_ += static_cast<std::uint32_t>(count);
    }

    w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
    messages.push_back(w.take());
    off += n;
    if (records.empty()) break;
  }
  return messages;
}

std::size_t IpfixEncoder::encode_batch(std::span<const FlowRecord> records,
                                       net::Timestamp export_time,
                                       PacketBatch& out,
                                       const EncodeLimits& limits) {
  TRACE_SPAN_ARG("encode", "ipfix.encode_batch", records.size());
  const TemplateRecord t4 = ipfix_v4_template();
  const TemplateRecord t6 = ipfix_v6_template();
  const EncodePlan p4 = EncodePlan::compile(t4);
  const EncodePlan p6 = EncodePlan::compile(t6);
  const TimeContext tc{};  // IPFIX uses absolute timestamps

  // Fixed per-message overhead: header + the template set carrying both
  // templates (written by every message, like encode()).
  const std::size_t template_set =
      4 + (4 + 4 * t4.fields.size()) + (4 + 4 * t6.fields.size());
  const std::size_t fixed = kIpfixHeaderSize + template_set;

  // The message's total length is a u16, so even "unlimited" is bounded.
  const std::size_t budget =
      limits.max_packet_bytes == 0
          ? 65535
          : std::min<std::size_t>(limits.max_packet_bytes, 65535);
  const std::size_t cap =
      limits.max_records_per_packet == 0 ? 24 : limits.max_records_per_packet;

  const auto export_secs = static_cast<std::uint32_t>(export_time.seconds());
  std::size_t made = 0;
  for (std::size_t off = 0; off < records.size() || made == 0;) {
    // Greedy chunk: admit records in order while the exact message size
    // (data-set headers materialize with their family's first record)
    // stays within budget. At least one record guarantees progress.
    std::size_t n = 0;
    std::size_t c4 = 0;
    std::size_t c6 = 0;
    std::size_t size = fixed;
    while (off + n < records.size() && n < cap) {
      const bool v6 = records[off + n].src_addr.is_v6();
      const std::size_t grow =
          (v6 ? p6.stride() : p4.stride()) + ((v6 ? c6 : c4) == 0 ? 4 : 0);
      if (n > 0 && size + grow > budget) break;
      size += grow;
      (v6 ? c6 : c4) += 1;
      ++n;
    }

    out.begin_packet();
    out.put_u16(kIpfixVersion);
    out.put_u16(static_cast<std::uint16_t>(size));  // exact, no patching
    out.put_u32(export_secs);
    out.put_u32(sequence_);
    out.put_u32(domain_);

    out.put_u16(kIpfixTemplateSetId);
    out.put_u16(static_cast<std::uint16_t>(template_set));
    for (const TemplateRecord* t : {&t4, &t6}) {
      out.put_u16(t->template_id);
      out.put_u16(static_cast<std::uint16_t>(t->fields.size()));
      for (const FieldSpec& f : t->fields) {
        out.put_u16(static_cast<std::uint16_t>(f.id));
        out.put_u16(f.length);
      }
    }

    // One v4 data set, then one v6 data set (homogeneous per template,
    // order preserved within each family -- encode()'s partitioning).
    for (const bool v6_pass : {false, true}) {
      const std::size_t count = v6_pass ? c6 : c4;
      if (count == 0) continue;
      const EncodePlan& plan = v6_pass ? p6 : p4;
      const TemplateRecord& tmpl = v6_pass ? t6 : t4;
      out.put_u16(tmpl.template_id);
      out.put_u16(static_cast<std::uint16_t>(4 + count * plan.stride()));
      std::uint8_t* dst = out.extend(count * plan.stride());
      if (count == n) {
        // Homogeneous chunk: pack straight from the input span.
        plan.encode_batch(records.data() + off, n, dst, tc);
      } else {
        scratch_.clear();
        for (std::size_t i = 0; i < n; ++i) {
          const FlowRecord& r = records[off + i];
          if (r.src_addr.is_v6() == v6_pass) scratch_.push_back(r);
        }
        plan.encode_batch(scratch_.data(), scratch_.size(), dst, tc);
      }
      sequence_ += static_cast<std::uint32_t>(count);
    }
    out.end_packet();
    ++made;
    off += n;
    if (records.empty()) break;
  }
  return made;
}

std::vector<std::uint8_t> IpfixEncoder::encode_template_withdrawal(
    net::Timestamp export_time, std::uint16_t template_id) {
  WireWriter w;
  w.u16(kIpfixVersion);
  w.u16(0);  // total length placeholder
  w.u32(static_cast<std::uint32_t>(export_time.seconds()));
  w.u32(sequence_);  // withdrawals carry no data records
  w.u32(domain_);
  w.u16(kIpfixTemplateSetId);
  w.u16(8);  // set header + one withdrawal record
  w.u16(template_id);
  w.u16(0);  // field count 0 == withdrawal (RFC 7011 section 8.1)
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

std::optional<IpfixMessage> IpfixDecoder::decode(
    std::span<const std::uint8_t> message) {
  TRACE_SPAN_ARG("decode", "ipfix.decode", message.size());
  const auto fail = [this](DecodeError e) {
    last_error_ = e;
    return std::nullopt;
  };
  last_error_ = DecodeError::kNone;

  if (message.size() < kIpfixHeaderSize) return fail(DecodeError::kTruncatedHeader);
  WireReader r(message);
  if (r.u16() != kIpfixVersion) return fail(DecodeError::kBadVersion);
  const std::uint16_t total_len = r.u16();
  if (total_len != message.size() || total_len < kIpfixHeaderSize) {
    return fail(DecodeError::kBadLength);
  }

  IpfixMessage out;
  out.export_time = r.u32();
  out.sequence = r.u32();
  out.observation_domain = r.u32();
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);

  while (r.remaining() >= 4) {
    const std::uint16_t set_id = r.u16();
    const std::uint16_t set_len = r.u16();
    if (set_len < 4 || static_cast<std::size_t>(set_len - 4) > r.remaining()) {
      return fail(DecodeError::kBadLength);
    }
    WireReader set = r.sub(set_len - 4);

    if (set_id == kIpfixTemplateSetId) {
      // Template set: sequence of (template id, field count, fields...).
      while (set.remaining() >= 4) {
        TemplateRecord tmpl;
        tmpl.template_id = set.u16();
        const std::uint16_t field_count = set.u16();
        if (field_count == 0) {
          // RFC 7011 section 8.1: a template record with a field count of
          // zero withdraws the template; template id == the set id (2)
          // withdraws every template of the domain. Never store it -- a
          // zero-field template would make every referencing data set
          // unparseable.
          if (tmpl.template_id == kIpfixTemplateSetId) {
            for (auto it = templates_.begin(); it != templates_.end();) {
              if (it->first.first == out.observation_domain) {
                it = templates_.erase(it);
              } else {
                ++it;
              }
            }
          } else if (tmpl.template_id >= 256) {
            templates_.erase({out.observation_domain, tmpl.template_id});
          } else {
            return fail(DecodeError::kBadTemplate);
          }
          ++out.template_withdrawals;
          continue;
        }
        if (tmpl.template_id < 256) return fail(DecodeError::kBadTemplate);
        for (std::uint16_t i = 0; i < field_count; ++i) {
          FieldSpec f{static_cast<FieldId>(set.u16()), set.u16()};
          tmpl.fields.push_back(f);
        }
        if (set.failed()) return fail(DecodeError::kBadTemplate);
        // Refresh recompiles the plan; a changed field layout can never be
        // decoded by a stale plan.
        templates_[{out.observation_domain, tmpl.template_id}] =
            CachedTemplate::make(std::move(tmpl));
        ++out.templates_seen;
      }
    } else if (set_id >= 256) {
      const auto it = templates_.find({out.observation_domain, set_id});
      if (it == templates_.end()) {
        ++out.skipped_data_sets;
        continue;  // RFC 7011: a collector MUST skip unknown data sets
      }
      const DecodePlan& plan = it->second.plan;
      const std::size_t rec_len = plan.stride();
      if (rec_len == 0) return fail(DecodeError::kBadTemplate);
      const TimeContext tc{};
      // One bounds check per set: every whole record left in the set is
      // decoded in one columnar pass over the contiguous wire bytes.
      const std::size_t n = set.remaining() / rec_len;
      if (n > 0) {
        const auto raw = set.take(n * rec_len);
        plan.decode_batch(raw.data(), n, out.records, tc);
      }
      // Anything left is padding (< one record); RFC 7011 allows it.
    } else {
      // Options templates (id 3) and reserved sets: skip.
      continue;
    }
  }
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);

  // IPFIX sequence numbers count data records; the header stamps the
  // sequence of this message's first record. Records we skipped for want
  // of a template surface as loss at the next message -- they never made
  // it into the record stream, which is what the metric measures.
  auto [seq_it, inserted] = sequences_.try_emplace(
      out.observation_domain, SequenceTracker(reorder_window_));
  out.sequence_event = seq_it->second.observe(
      out.sequence, static_cast<std::uint32_t>(out.records.size()));
  accounting_.apply(out.sequence_event,
                    static_cast<std::uint32_t>(out.records.size()));
  return out;
}

}  // namespace lockdown::flow
