#include "flow/ipfix.hpp"

#include <algorithm>
#include <array>

#include "flow/field_codec.hpp"
#include "flow/wire.hpp"

namespace lockdown::flow {

namespace {

void write_template_set(WireWriter& w, std::span<const TemplateRecord> templates) {
  const std::size_t set_start = w.size();
  w.u16(kIpfixTemplateSetId);
  w.u16(0);  // length placeholder
  for (const TemplateRecord& t : templates) {
    w.u16(t.template_id);
    w.u16(static_cast<std::uint16_t>(t.fields.size()));
    for (const FieldSpec& f : t.fields) {
      w.u16(static_cast<std::uint16_t>(f.id));
      w.u16(f.length);
    }
  }
  w.patch_u16(set_start + 2, static_cast<std::uint16_t>(w.size() - set_start));
}

}  // namespace

std::vector<std::vector<std::uint8_t>> IpfixEncoder::encode(
    std::span<const FlowRecord> records, net::Timestamp export_time,
    std::size_t max_records_per_message) {
  const TemplateRecord t4 = ipfix_v4_template();
  const TemplateRecord t6 = ipfix_v6_template();
  const TimeContext tc{};  // IPFIX uses absolute timestamps

  std::vector<std::vector<std::uint8_t>> messages;
  if (max_records_per_message == 0) max_records_per_message = 1;

  for (std::size_t off = 0; off < records.size() || messages.empty();) {
    const std::size_t n =
        std::min(max_records_per_message, records.size() - off);
    WireWriter w;
    w.u16(kIpfixVersion);
    w.u16(0);  // total length placeholder
    w.u32(static_cast<std::uint32_t>(export_time.seconds()));
    w.u32(sequence_);
    w.u32(domain_);

    const std::array<TemplateRecord, 2> both = {t4, t6};
    write_template_set(w, both);

    // Partition this chunk's records into one v4 data set and one v6 data
    // set (sets are homogeneous per template).
    for (const bool v6_pass : {false, true}) {
      const TemplateRecord& tmpl = v6_pass ? t6 : t4;
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (records[off + i].src_addr.is_v6() == v6_pass) ++count;
      }
      if (count == 0) continue;
      const std::size_t set_start = w.size();
      w.u16(tmpl.template_id);
      w.u16(0);  // length placeholder
      for (std::size_t i = 0; i < n; ++i) {
        const FlowRecord& r = records[off + i];
        if (r.src_addr.is_v6() != v6_pass) continue;
        for (const FieldSpec& f : tmpl.fields) encode_field(w, f, r, tc);
      }
      w.patch_u16(set_start + 2, static_cast<std::uint16_t>(w.size() - set_start));
      sequence_ += static_cast<std::uint32_t>(count);
    }

    w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
    messages.push_back(w.take());
    off += n;
    if (records.empty()) break;
  }
  return messages;
}

std::vector<std::uint8_t> IpfixEncoder::encode_template_withdrawal(
    net::Timestamp export_time, std::uint16_t template_id) {
  WireWriter w;
  w.u16(kIpfixVersion);
  w.u16(0);  // total length placeholder
  w.u32(static_cast<std::uint32_t>(export_time.seconds()));
  w.u32(sequence_);  // withdrawals carry no data records
  w.u32(domain_);
  w.u16(kIpfixTemplateSetId);
  w.u16(8);  // set header + one withdrawal record
  w.u16(template_id);
  w.u16(0);  // field count 0 == withdrawal (RFC 7011 section 8.1)
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

std::optional<IpfixMessage> IpfixDecoder::decode(
    std::span<const std::uint8_t> message) {
  const auto fail = [this](DecodeError e) {
    last_error_ = e;
    return std::nullopt;
  };
  last_error_ = DecodeError::kNone;

  if (message.size() < kIpfixHeaderSize) return fail(DecodeError::kTruncatedHeader);
  WireReader r(message);
  if (r.u16() != kIpfixVersion) return fail(DecodeError::kBadVersion);
  const std::uint16_t total_len = r.u16();
  if (total_len != message.size() || total_len < kIpfixHeaderSize) {
    return fail(DecodeError::kBadLength);
  }

  IpfixMessage out;
  out.export_time = r.u32();
  out.sequence = r.u32();
  out.observation_domain = r.u32();
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);

  while (r.remaining() >= 4) {
    const std::uint16_t set_id = r.u16();
    const std::uint16_t set_len = r.u16();
    if (set_len < 4 || static_cast<std::size_t>(set_len - 4) > r.remaining()) {
      return fail(DecodeError::kBadLength);
    }
    WireReader set = r.sub(set_len - 4);

    if (set_id == kIpfixTemplateSetId) {
      // Template set: sequence of (template id, field count, fields...).
      while (set.remaining() >= 4) {
        TemplateRecord tmpl;
        tmpl.template_id = set.u16();
        const std::uint16_t field_count = set.u16();
        if (field_count == 0) {
          // RFC 7011 section 8.1: a template record with a field count of
          // zero withdraws the template; template id == the set id (2)
          // withdraws every template of the domain. Never store it -- a
          // zero-field template would make every referencing data set
          // unparseable.
          if (tmpl.template_id == kIpfixTemplateSetId) {
            for (auto it = templates_.begin(); it != templates_.end();) {
              if (it->first.first == out.observation_domain) {
                it = templates_.erase(it);
              } else {
                ++it;
              }
            }
          } else if (tmpl.template_id >= 256) {
            templates_.erase({out.observation_domain, tmpl.template_id});
          } else {
            return fail(DecodeError::kBadTemplate);
          }
          ++out.template_withdrawals;
          continue;
        }
        if (tmpl.template_id < 256) return fail(DecodeError::kBadTemplate);
        for (std::uint16_t i = 0; i < field_count; ++i) {
          FieldSpec f{static_cast<FieldId>(set.u16()), set.u16()};
          tmpl.fields.push_back(f);
        }
        if (set.failed()) return fail(DecodeError::kBadTemplate);
        // Refresh recompiles the plan; a changed field layout can never be
        // decoded by a stale plan.
        templates_[{out.observation_domain, tmpl.template_id}] =
            CachedTemplate::make(std::move(tmpl));
        ++out.templates_seen;
      }
    } else if (set_id >= 256) {
      const auto it = templates_.find({out.observation_domain, set_id});
      if (it == templates_.end()) {
        ++out.skipped_data_sets;
        continue;  // RFC 7011: a collector MUST skip unknown data sets
      }
      const DecodePlan& plan = it->second.plan;
      const std::size_t rec_len = plan.stride();
      if (rec_len == 0) return fail(DecodeError::kBadTemplate);
      const TimeContext tc{};
      // One bounds check per set: every whole record left in the set is
      // decoded in one columnar pass over the contiguous wire bytes.
      const std::size_t n = set.remaining() / rec_len;
      if (n > 0) {
        const auto raw = set.take(n * rec_len);
        plan.decode_batch(raw.data(), n, out.records, tc);
      }
      // Anything left is padding (< one record); RFC 7011 allows it.
    } else {
      // Options templates (id 3) and reserved sets: skip.
      continue;
    }
  }
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);

  // IPFIX sequence numbers count data records; the header stamps the
  // sequence of this message's first record. Records we skipped for want
  // of a template surface as loss at the next message -- they never made
  // it into the record stream, which is what the metric measures.
  auto [seq_it, inserted] = sequences_.try_emplace(
      out.observation_domain, SequenceTracker(reorder_window_));
  out.sequence_event = seq_it->second.observe(
      out.sequence, static_cast<std::uint32_t>(out.records.size()));
  accounting_.apply(out.sequence_event,
                    static_cast<std::uint32_t>(out.records.size()));
  return out;
}

}  // namespace lockdown::flow
