// IPFIX message codec (RFC 7011). Used by the IXP vantage points (the
// paper's IXPs export IPFIX, §2). Messages are self-contained: every
// message carries its template set followed by data sets, which models the
// periodic template refresh real exporters perform and lets the decoder be
// stateless per message while still exercising the template-cache path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/decode_error.hpp"
#include "flow/decode_plan.hpp"
#include "flow/flow_record.hpp"
#include "flow/packet_arena.hpp"
#include "flow/sequence_tracker.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

inline constexpr std::size_t kIpfixHeaderSize = 16;
inline constexpr std::uint16_t kIpfixVersion = 10;
inline constexpr std::uint16_t kIpfixTemplateSetId = 2;

/// Encodes FlowRecords into IPFIX messages with v4/v6 templates.
class IpfixEncoder {
 public:
  explicit IpfixEncoder(std::uint32_t observation_domain) noexcept
      : domain_(observation_domain) {}

  /// Encode into one or more messages, each <= `max_records_per_message`
  /// data records, each beginning with a template set describing both
  /// templates. Records may mix v4 and v6.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, net::Timestamp export_time,
      std::size_t max_records_per_message = 24);

  /// Batch form of encode(): appends messages to `out` (caller clears
  /// between flushes) and returns how many were appended. Both templates
  /// compile into EncodePlans once; homogeneous chunks pack straight from
  /// the input span by tiled columnar stores, mixed chunks gather each
  /// family into a reused scratch buffer first. Byte-identical to encode()
  /// under EncodeLimits::unbudgeted(). With a byte budget, messages split
  /// exactly at the boundary -- this is the fix for the historical
  /// overshoot, where a 24-record IPv6 chunk produced a 1920-byte message
  /// over the 1500-byte MTU. Record order is preserved per family, like
  /// encode()'s v4-then-v6 set partitioning.
  std::size_t encode_batch(std::span<const FlowRecord> records,
                           net::Timestamp export_time, PacketBatch& out,
                           const EncodeLimits& limits = {});

  [[nodiscard]] std::uint32_t sequence() const noexcept { return sequence_; }

  /// Reposition the data-record sequence counter (exporter restarts; tests
  /// use it to exercise uint32 wraparound accounting).
  void set_sequence(std::uint32_t sequence) noexcept { sequence_ = sequence; }

  /// A message withdrawing a template (RFC 7011 §8.1): a template record
  /// with a field count of zero. `template_id` 2 (the template-set id)
  /// withdraws *all* templates of the domain.
  [[nodiscard]] std::vector<std::uint8_t> encode_template_withdrawal(
      net::Timestamp export_time, std::uint16_t template_id);

 private:
  std::uint32_t domain_;
  std::uint32_t sequence_ = 0;  // data records sent (per RFC 7011 §3.1)
  /// encode_batch gather buffer for mixed-family chunks; member so a
  /// long-lived encoder reuses its allocation across flushes.
  std::vector<FlowRecord> scratch_;
};

/// Decoded IPFIX message.
struct IpfixMessage {
  std::uint32_t export_time = 0;
  std::uint32_t sequence = 0;
  std::uint32_t observation_domain = 0;
  std::vector<FlowRecord> records;
  std::size_t templates_seen = 0;
  std::size_t template_withdrawals = 0;  ///< RFC 7011 §8.1 withdrawals applied
  std::size_t skipped_data_sets = 0;  ///< data sets with unknown template
  /// Sequence accounting of this message. IPFIX sequences count data
  /// records, so `lost` is the exact number of records that never reached
  /// the record stream -- dropped in transit or skipped for want of a
  /// template.
  SequenceTracker::Event sequence_event;
};

/// Stateful IPFIX decoder: caches templates per observation domain so data
/// sets arriving in later messages (or after the template in the same
/// message) can be decoded. Malformed messages yield nullopt; a malformed
/// set aborts only that message. Never throws, never reads out of bounds.
class IpfixDecoder {
 public:
  explicit IpfixDecoder(
      std::uint32_t reorder_window = SequenceTracker::kDefaultReorderWindow) noexcept
      : reorder_window_(reorder_window) {}

  [[nodiscard]] std::optional<IpfixMessage> decode(
      std::span<const std::uint8_t> message);

  [[nodiscard]] std::size_t cached_templates() const noexcept {
    return templates_.size();
  }

  /// The compiled plan of a cached template, or nullptr if the template is
  /// unknown (never announced, or withdrawn). Exposed for tests and
  /// diagnostics; decode() uses it internally.
  [[nodiscard]] const DecodePlan* decode_plan(
      std::uint32_t observation_domain, std::uint16_t template_id) const {
    const auto it = templates_.find({observation_domain, template_id});
    return it == templates_.end() ? nullptr : &it->second.plan;
  }

  /// Why the most recent decode() returned nullopt (kNone after a success).
  [[nodiscard]] DecodeError last_error() const noexcept { return last_error_; }

  /// Aggregate over all observation domains; `lost` counts data records
  /// (the RFC 7011 §3.1 sequence unit).
  [[nodiscard]] const SequenceAccounting& sequence_accounting() const noexcept {
    return accounting_;
  }

 private:
  std::uint32_t reorder_window_;
  // key: (observation domain, template id); value carries the compiled
  // decode plan so refresh/withdrawal invalidate template and plan as one.
  std::map<std::pair<std::uint32_t, std::uint16_t>, CachedTemplate> templates_;
  std::map<std::uint32_t, SequenceTracker> sequences_;
  SequenceAccounting accounting_;
  DecodeError last_error_ = DecodeError::kNone;
};

}  // namespace lockdown::flow
