// IPFIX message codec (RFC 7011). Used by the IXP vantage points (the
// paper's IXPs export IPFIX, §2). Messages are self-contained: every
// message carries its template set followed by data sets, which models the
// periodic template refresh real exporters perform and lets the decoder be
// stateless per message while still exercising the template-cache path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_record.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

inline constexpr std::size_t kIpfixHeaderSize = 16;
inline constexpr std::uint16_t kIpfixVersion = 10;
inline constexpr std::uint16_t kIpfixTemplateSetId = 2;

/// Encodes FlowRecords into IPFIX messages with v4/v6 templates.
class IpfixEncoder {
 public:
  explicit IpfixEncoder(std::uint32_t observation_domain) noexcept
      : domain_(observation_domain) {}

  /// Encode into one or more messages, each <= `max_records_per_message`
  /// data records, each beginning with a template set describing both
  /// templates. Records may mix v4 and v6.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, net::Timestamp export_time,
      std::size_t max_records_per_message = 24);

  [[nodiscard]] std::uint32_t sequence() const noexcept { return sequence_; }

 private:
  std::uint32_t domain_;
  std::uint32_t sequence_ = 0;  // data records sent (per RFC 7011 §3.1)
};

/// Decoded IPFIX message.
struct IpfixMessage {
  std::uint32_t export_time = 0;
  std::uint32_t sequence = 0;
  std::uint32_t observation_domain = 0;
  std::vector<FlowRecord> records;
  std::size_t templates_seen = 0;
  std::size_t skipped_data_sets = 0;  ///< data sets with unknown template
};

/// Stateful IPFIX decoder: caches templates per observation domain so data
/// sets arriving in later messages (or after the template in the same
/// message) can be decoded. Malformed messages yield nullopt; a malformed
/// set aborts only that message. Never throws, never reads out of bounds.
class IpfixDecoder {
 public:
  [[nodiscard]] std::optional<IpfixMessage> decode(
      std::span<const std::uint8_t> message);

  [[nodiscard]] std::size_t cached_templates() const noexcept {
    return templates_.size();
  }

 private:
  // key: (observation domain, template id)
  std::map<std::pair<std::uint32_t, std::uint16_t>, TemplateRecord> templates_;
};

}  // namespace lockdown::flow
