#include "flow/ipfix_stream.hpp"

#include "flow/ipfix.hpp"

namespace lockdown::flow {

std::size_t IpfixStreamReassembler::feed(std::span<const std::uint8_t> chunk) {
  if (poisoned_) return 0;
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());

  std::size_t emitted_now = 0;
  std::size_t offset = 0;
  while (buffer_.size() - offset >= 4) {
    const std::uint16_t version = static_cast<std::uint16_t>(
        (buffer_[offset] << 8) | buffer_[offset + 1]);
    const std::uint16_t length = static_cast<std::uint16_t>(
        (buffer_[offset + 2] << 8) | buffer_[offset + 3]);

    if (version != kIpfixVersion || length < kIpfixHeaderSize ||
        length > max_message_) {
      // Desynchronized or hostile: there is no in-band resync marker in
      // IPFIX/TCP, so poison the stream.
      poisoned_ = true;
      buffer_.clear();
      return emitted_now;
    }
    if (buffer_.size() - offset < length) break;  // message incomplete

    handler_(std::span<const std::uint8_t>(buffer_.data() + offset, length));
    ++emitted_;
    ++emitted_now;
    offset += length;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  return emitted_now;
}

}  // namespace lockdown::flow
