// IPFIX over stream transports (RFC 7011 section 10.4: TCP/TLS): messages
// arrive as a byte stream with no datagram boundaries, so the receiver must
// reassemble them from the 16-byte header's length field.
//
// IpfixStreamReassembler consumes arbitrary byte chunks (whatever recv()
// returned) and emits each complete IPFIX message exactly once -- the
// fundamental framing problem of every length-prefixed stream protocol.
// Invariant (property-tested): for ANY chunking of a valid message stream,
// the emitted messages are byte-identical to the originals.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lockdown::flow {

class IpfixStreamReassembler {
 public:
  using MessageHandler = std::function<void(std::span<const std::uint8_t>)>;

  /// `max_message_bytes` guards against desync/hostile length fields: a
  /// claimed length beyond it poisons the stream (see poisoned()).
  explicit IpfixStreamReassembler(MessageHandler handler,
                                  std::size_t max_message_bytes = 65535)
      : handler_(std::move(handler)), max_message_(max_message_bytes) {}

  /// Feed the next chunk from the stream. Returns the number of complete
  /// messages emitted. Once the stream is poisoned (bad version or absurd
  /// length -- resynchronizing a corrupted stream is not possible in
  /// IPFIX/TCP; RFC 7011 says close the connection), feed() ignores input.
  std::size_t feed(std::span<const std::uint8_t> chunk);

  /// True if a protocol violation was detected; the connection should be
  /// dropped and re-established, per the RFC.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

  /// Bytes buffered waiting for the rest of a message.
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return buffer_.size(); }

  [[nodiscard]] std::uint64_t messages_emitted() const noexcept { return emitted_; }

 private:
  MessageHandler handler_;
  std::size_t max_message_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t emitted_ = 0;
  bool poisoned_ = false;
};

}  // namespace lockdown::flow
