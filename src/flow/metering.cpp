#include "flow/metering.hpp"

#include <stdexcept>

namespace lockdown::flow {

MeteringCache::MeteringCache(MeteringConfig config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.idle_timeout_seconds <= 0 || config_.active_timeout_seconds <= 0 ||
      config_.cache_entries == 0) {
    throw std::invalid_argument("MeteringCache: invalid configuration");
  }
}

void MeteringCache::observe(const PacketObservation& packet) {
  if (packet.timestamp < clock_) {
    throw std::invalid_argument("MeteringCache: packets must be time-ordered");
  }
  clock_ = packet.timestamp;
  ++stats_.packets;
  expire_timeouts(clock_);

  const FlowKey key{packet.src_addr, packet.dst_addr, packet.src_port,
                    packet.dst_port, packet.protocol};
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    FlowRecord& r = it->second.record;
    r.bytes += packet.bytes;
    r.packets += 1;
    r.tcp_flags |= packet.tcp_flags;
    r.last = packet.timestamp;
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);  // touch
    return;
  }

  // New flow: make room first, the way a fixed-size hardware table would.
  if (cache_.size() >= config_.cache_entries) {
    export_entry(lru_.front(), /*count_as_eviction=*/true);
  }

  FlowRecord r;
  r.src_addr = packet.src_addr;
  r.dst_addr = packet.dst_addr;
  r.src_port = packet.src_port;
  r.dst_port = packet.dst_port;
  r.protocol = packet.protocol;
  r.tcp_flags = packet.tcp_flags;
  r.bytes = packet.bytes;
  r.packets = 1;
  r.first = packet.timestamp;
  r.last = packet.timestamp;

  lru_.push_back(key);
  cache_.emplace(key, Entry{r, std::prev(lru_.end())});
}

void MeteringCache::expire_timeouts(net::Timestamp now) {
  // Scan from the LRU front: every entry idle-expired is by construction
  // at the front, so the scan stops at the first live entry. Active
  // timeouts can apply to recently-touched entries too, so a second pass
  // over the remainder handles them (bounded by table size; real routers
  // amortize this with timer wheels).
  while (!lru_.empty()) {
    const auto it = cache_.find(lru_.front());
    if (now.seconds() - it->second.record.last.seconds() >
        config_.idle_timeout_seconds) {
      ++stats_.idle_expirations;
      export_entry(lru_.front(), /*count_as_eviction=*/false);
    } else {
      break;
    }
  }
  for (auto it = lru_.begin(); it != lru_.end();) {
    const FlowKey key = *it;
    ++it;  // export_entry invalidates the current iterator
    const auto entry = cache_.find(key);
    if (now.seconds() - entry->second.record.first.seconds() >=
        config_.active_timeout_seconds) {
      ++stats_.active_expirations;
      export_entry(key, /*count_as_eviction=*/false);
    }
  }
}

void MeteringCache::export_entry(const FlowKey& key, bool count_as_eviction) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return;
  if (count_as_eviction) ++stats_.cache_evictions;
  ++stats_.records_exported;
  sink_(it->second.record);
  lru_.erase(it->second.lru_pos);
  cache_.erase(it);
}

void MeteringCache::flush() {
  while (!lru_.empty()) export_entry(lru_.front(), /*count_as_eviction=*/false);
}

}  // namespace lockdown::flow
