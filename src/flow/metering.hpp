// The metering process: where flow records come from in the first place.
//
// A router observes packets, aggregates them into per-5-tuple cache
// entries, and expires entries into flow records on three conditions
// (RFC 7011 section 5.1.1 / Cisco NetFlow semantics):
//
//   * idle timeout  -- no packet for `idle_timeout` seconds;
//   * active timeout -- the entry has been open `active_timeout` seconds
//     (long flows are split, which is why analyses must sum records);
//   * cache pressure -- the table is full and the oldest entry is evicted
//     (routers under attack famously thrash here).
//
// The rest of this repository synthesizes records directly for speed; this
// module exists because the exporter is part of the system under study --
// its tests pin down exactly the record-splitting semantics the codecs and
// analyses assume, and the metering ablations of flow-cache sizing run on
// it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "flow/flow_record.hpp"

namespace lockdown::flow {

/// One observed packet (the metering process's input).
struct PacketObservation {
  net::IpAddress src_addr;
  net::IpAddress dst_addr;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProtocol protocol = IpProtocol::kTcp;
  std::uint8_t tcp_flags = 0;
  std::uint32_t bytes = 0;
  net::Timestamp timestamp;
};

struct MeteringConfig {
  std::int64_t idle_timeout_seconds = 15;
  std::int64_t active_timeout_seconds = 120;
  std::size_t cache_entries = 4096;
};

struct MeteringStats {
  std::uint64_t packets = 0;
  std::uint64_t records_exported = 0;
  std::uint64_t idle_expirations = 0;
  std::uint64_t active_expirations = 0;
  std::uint64_t cache_evictions = 0;  ///< expired early under pressure
};

class MeteringCache {
 public:
  using Sink = std::function<void(const FlowRecord&)>;

  MeteringCache(MeteringConfig config, Sink sink);

  /// Observe one packet. Packets must arrive in non-decreasing timestamp
  /// order (a router's clock does not run backwards); out-of-order input
  /// throws std::invalid_argument.
  void observe(const PacketObservation& packet);

  /// Export everything still cached (shutdown / end of capture).
  void flush();

  [[nodiscard]] const MeteringStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cached_flows() const noexcept { return cache_.size(); }

 private:
  struct FlowKey {
    net::IpAddress src;
    net::IpAddress dst;
    std::uint16_t sport;
    std::uint16_t dport;
    IpProtocol proto;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      const net::IpAddressHash h;
      std::size_t v = h(k.src) * 131 + h(k.dst);
      v = v * 131 + ((static_cast<std::size_t>(k.sport) << 16) | k.dport);
      return v * 131 + static_cast<std::size_t>(k.proto);
    }
  };
  struct Entry {
    FlowRecord record;
    std::list<FlowKey>::iterator lru_pos;
  };

  void expire_timeouts(net::Timestamp now);
  void export_entry(const FlowKey& key, bool count_as_eviction);

  MeteringConfig config_;
  Sink sink_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> cache_;
  std::list<FlowKey> lru_;  // front = least recently touched
  net::Timestamp clock_;
  MeteringStats stats_;
};

}  // namespace lockdown::flow
