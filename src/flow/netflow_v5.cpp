#include "flow/netflow_v5.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/wire.hpp"
#include "obs/trace.hpp"

namespace lockdown::flow {

namespace {

// Fixed fictional uptime at export: long enough that First/Last of any flow
// in the preceding hours stays positive in sysUptime-relative terms.
constexpr std::uint32_t kSysUptimeAtExportMs = 48u * 3600u * 1000u;

std::uint32_t to_uptime_ms(net::Timestamp t, net::Timestamp export_time) noexcept {
  const std::int64_t delta_ms = (export_time.seconds() - t.seconds()) * 1000;
  // Flows stamped "in the future" relative to the export (clock skew, or a
  // batch exported mid-hour) are clamped to the export instant; flows older
  // than the fictional uptime clamp to boot time. Real exporters behave the
  // same way -- sysUptime cannot run backwards.
  if (delta_ms < 0) return kSysUptimeAtExportMs;
  if (delta_ms > kSysUptimeAtExportMs) return 0;
  return kSysUptimeAtExportMs - static_cast<std::uint32_t>(delta_ms);
}

net::Timestamp from_uptime_ms(std::uint32_t uptime_ms, std::uint32_t sys_uptime,
                              std::uint32_t unix_secs) noexcept {
  const std::int64_t delta_s =
      (static_cast<std::int64_t>(sys_uptime) - uptime_ms) / 1000;
  return net::Timestamp(static_cast<std::int64_t>(unix_secs) - delta_s);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// One fixed-layout v5 record by direct stores. `dst` arrives zeroed
/// (PacketBatch::extend), so the pad/reserved bytes (nexthop, tos, masks)
/// need no writes -- field order and values match encode() exactly.
inline void store_v5_record(std::uint8_t* dst, const FlowRecord& r,
                            net::Timestamp export_time) noexcept {
  store_be32(dst + 0, r.src_addr.v4().value());
  store_be32(dst + 4, r.dst_addr.v4().value());
  // dst + 8: nexthop, zero
  store_be16(dst + 12, r.input_if);
  store_be16(dst + 14, r.output_if);
  store_be32(dst + 16, static_cast<std::uint32_t>(r.packets));
  store_be32(dst + 20, static_cast<std::uint32_t>(r.bytes));
  store_be32(dst + 24, to_uptime_ms(r.first, export_time));
  store_be32(dst + 28, to_uptime_ms(r.last, export_time));
  store_be16(dst + 32, r.src_port);
  store_be16(dst + 34, r.dst_port);
  // dst + 36: pad1, zero
  dst[37] = r.tcp_flags;
  dst[38] = static_cast<std::uint8_t>(r.protocol);
  // dst + 39: tos, zero
  store_be16(dst + 40, static_cast<std::uint16_t>(r.src_as.value()));
  store_be16(dst + 42, static_cast<std::uint16_t>(r.dst_as.value()));
  // dst + 44..47: masks + pad2, zero
}

}  // namespace

std::vector<std::vector<std::uint8_t>> NetflowV5Encoder::encode(
    std::span<const FlowRecord> records, net::Timestamp export_time) {
  for (const FlowRecord& r : records) {
    if (!r.src_addr.is_v4() || !r.dst_addr.is_v4()) {
      throw std::invalid_argument("NetFlow v5 cannot carry IPv6 flows");
    }
  }

  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t off = 0; off < records.size(); off += kNetflowV5MaxRecords) {
    const std::size_t n = std::min(kNetflowV5MaxRecords, records.size() - off);
    WireWriter w;
    w.u16(5);  // version
    w.u16(static_cast<std::uint16_t>(n));
    w.u32(kSysUptimeAtExportMs);
    w.u32(static_cast<std::uint32_t>(export_time.seconds()));
    w.u32(0);  // unix_nsecs
    w.u32(sequence_);
    w.u8(0);  // engine_type
    w.u8(engine_id_);
    w.u16(sampling_);

    for (std::size_t i = 0; i < n; ++i) {
      const FlowRecord& r = records[off + i];
      w.u32(r.src_addr.v4().value());
      w.u32(r.dst_addr.v4().value());
      w.u32(0);  // nexthop
      w.u16(r.input_if);
      w.u16(r.output_if);
      w.u32(static_cast<std::uint32_t>(r.packets));
      w.u32(static_cast<std::uint32_t>(r.bytes));
      w.u32(to_uptime_ms(r.first, export_time));
      w.u32(to_uptime_ms(r.last, export_time));
      w.u16(r.src_port);
      w.u16(r.dst_port);
      w.u8(0);  // pad1
      w.u8(r.tcp_flags);
      w.u8(static_cast<std::uint8_t>(r.protocol));
      w.u8(0);  // tos
      w.u16(static_cast<std::uint16_t>(r.src_as.value()));
      w.u16(static_cast<std::uint16_t>(r.dst_as.value()));
      w.u8(0);  // src_mask
      w.u8(0);  // dst_mask
      w.u16(0);  // pad2
    }
    sequence_ += static_cast<std::uint32_t>(n);
    packets.push_back(w.take());
  }
  return packets;
}

std::size_t NetflowV5Encoder::encode_batch(std::span<const FlowRecord> records,
                                           net::Timestamp export_time,
                                           PacketBatch& out,
                                           const EncodeLimits& limits) {
  TRACE_SPAN_ARG("encode", "v5.encode_batch", records.size());
  for (const FlowRecord& r : records) {
    if (!r.src_addr.is_v4() || !r.dst_addr.is_v4()) {
      throw std::invalid_argument("NetFlow v5 cannot carry IPv6 flows");
    }
  }

  // The format's 30-record ceiling always applies; a byte budget can only
  // lower the chunk size, never raise it, and at least one record per
  // packet guarantees progress.
  std::size_t cap = limits.max_records_per_packet == 0
                        ? kNetflowV5MaxRecords
                        : std::min(limits.max_records_per_packet,
                                   kNetflowV5MaxRecords);
  if (limits.max_packet_bytes > 0 &&
      limits.max_packet_bytes <
          kNetflowV5HeaderSize + cap * kNetflowV5RecordSize) {
    const std::size_t fit =
        limits.max_packet_bytes > kNetflowV5HeaderSize + kNetflowV5RecordSize
            ? (limits.max_packet_bytes - kNetflowV5HeaderSize) /
                  kNetflowV5RecordSize
            : 1;
    cap = std::min(cap, fit);
  }

  const auto export_secs = static_cast<std::uint32_t>(export_time.seconds());
  std::size_t made = 0;
  for (std::size_t off = 0; off < records.size(); off += cap) {
    const std::size_t n = std::min(cap, records.size() - off);
    out.begin_packet();
    out.put_u16(5);  // version
    out.put_u16(static_cast<std::uint16_t>(n));
    out.put_u32(kSysUptimeAtExportMs);
    out.put_u32(export_secs);
    out.put_u32(0);  // unix_nsecs
    out.put_u32(sequence_);
    out.put_u8(0);  // engine_type
    out.put_u8(engine_id_);
    out.put_u16(sampling_);
    std::uint8_t* dst = out.extend(n * kNetflowV5RecordSize);
    for (std::size_t i = 0; i < n; ++i, dst += kNetflowV5RecordSize) {
      store_v5_record(dst, records[off + i], export_time);
    }
    sequence_ += static_cast<std::uint32_t>(n);
    out.end_packet();
    ++made;
  }
  return made;
}

std::optional<NetflowV5Packet> decode_netflow_v5(
    std::span<const std::uint8_t> packet, DecodeError* error) noexcept {
  const auto fail = [error](DecodeError e) {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };
  if (error != nullptr) *error = DecodeError::kNone;

  if (packet.size() < 2) return fail(DecodeError::kTruncatedHeader);
  WireReader r(packet);
  if (r.u16() != 5) return fail(DecodeError::kBadVersion);

  NetflowV5Packet out;
  out.header.count = r.u16();
  out.header.sys_uptime_ms = r.u32();
  out.header.unix_secs = r.u32();
  out.header.unix_nsecs = r.u32();
  out.header.flow_sequence = r.u32();
  out.header.engine_type = r.u8();
  out.header.engine_id = r.u8();
  out.header.sampling = r.u16();
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);
  if (out.header.count > kNetflowV5MaxRecords) return fail(DecodeError::kBadLength);
  if (r.remaining() != out.header.count * kNetflowV5RecordSize) {
    return fail(DecodeError::kBadLength);
  }

  out.records.reserve(out.header.count);
  for (unsigned i = 0; i < out.header.count; ++i) {
    FlowRecord rec;
    rec.src_addr = net::Ipv4Address(r.u32());
    rec.dst_addr = net::Ipv4Address(r.u32());
    (void)r.u32();  // nexthop
    rec.input_if = r.u16();
    rec.output_if = r.u16();
    rec.packets = r.u32();
    rec.bytes = r.u32();
    const std::uint32_t first_ms = r.u32();
    const std::uint32_t last_ms = r.u32();
    rec.first = from_uptime_ms(first_ms, out.header.sys_uptime_ms, out.header.unix_secs);
    rec.last = from_uptime_ms(last_ms, out.header.sys_uptime_ms, out.header.unix_secs);
    rec.src_port = r.u16();
    rec.dst_port = r.u16();
    (void)r.u8();  // pad1
    rec.tcp_flags = r.u8();
    rec.protocol = static_cast<IpProtocol>(r.u8());
    (void)r.u8();  // tos
    rec.src_as = net::Asn(r.u16());
    rec.dst_as = net::Asn(r.u16());
    (void)r.u8();   // src_mask
    (void)r.u8();   // dst_mask
    (void)r.u16();  // pad2
    if (r.failed()) return fail(DecodeError::kTruncatedRecord);
    out.records.push_back(rec);
  }
  return out;
}

std::optional<NetflowV5Packet> NetflowV5Decoder::decode(
    std::span<const std::uint8_t> packet) noexcept {
  TRACE_SPAN_ARG("decode", "v5.decode", packet.size());
  auto out = decode_netflow_v5(packet, &last_error_);
  if (!out) return out;
  const std::uint16_t engine =
      static_cast<std::uint16_t>((out->header.engine_type << 8) |
                                 out->header.engine_id);
  auto [it, inserted] =
      sequences_.try_emplace(engine, SequenceTracker(reorder_window_));
  // v5 stamps the sequence of the packet's first flow; the packet carries
  // `count` sequence units (flows).
  out->sequence_event = it->second.observe(out->header.flow_sequence,
                                           out->header.count);
  accounting_.apply(out->sequence_event, out->header.count);
  return out;
}

}  // namespace lockdown::flow
