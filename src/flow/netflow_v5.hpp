// NetFlow version 5 codec (the fixed 48-byte record format; Cisco white
// paper "Introduction to Cisco IOS NetFlow", paper ref [13]). v5 is
// IPv4-only and carries 16-bit AS numbers; the synthesizer uses it for the
// ISP-CE and EDU vantage points exactly because those deployments predate
// IPFIX.
//
// Timestamp convention: the v5 header carries the exporter's sysUptime and
// the export wall-clock (unix_secs); per-record First/Last are
// sysUptime-relative milliseconds. Encoder and decoder implement the
// standard reconstruction  abs = unix_secs - (sysUptime - First)/1000.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/decode_error.hpp"
#include "flow/flow_record.hpp"
#include "flow/packet_arena.hpp"
#include "flow/sequence_tracker.hpp"

namespace lockdown::flow {

struct NetflowV5Header {
  std::uint16_t count = 0;
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t unix_secs = 0;
  std::uint32_t unix_nsecs = 0;
  std::uint32_t flow_sequence = 0;
  std::uint8_t engine_type = 0;
  std::uint8_t engine_id = 0;
  std::uint16_t sampling = 0;  ///< 2-bit mode + 14-bit interval
};

inline constexpr std::size_t kNetflowV5HeaderSize = 24;
inline constexpr std::size_t kNetflowV5RecordSize = 48;
inline constexpr std::size_t kNetflowV5MaxRecords = 30;

/// Encodes batches of FlowRecords into NetFlow v5 packets.
class NetflowV5Encoder {
 public:
  /// `engine_id` distinguishes border routers of one vantage point.
  explicit NetflowV5Encoder(std::uint8_t engine_id = 0,
                            std::uint16_t sampling_interval = 0) noexcept
      : engine_id_(engine_id), sampling_(sampling_interval) {}

  /// Encode up to kNetflowV5MaxRecords per packet; returns one packet per
  /// chunk. `export_time` stamps the packet header. Throws
  /// std::invalid_argument on IPv6 records (not representable in v5).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, net::Timestamp export_time);

  /// Batch form of encode(): appends packets to `out` (which the caller
  /// clears between flushes, so a reused batch stops allocating) and
  /// returns how many were appended. Records are packed by direct
  /// big-endian stores into the batch's flat buffer instead of per-field
  /// WireWriter pushes. Byte-identical to encode() under
  /// EncodeLimits::unbudgeted(); with a byte budget, chunks split exactly
  /// at the boundary (a v5 packet of 30 records is 1464 bytes, so the
  /// default MTU budget never binds). Throws std::invalid_argument on IPv6
  /// records, like encode().
  std::size_t encode_batch(std::span<const FlowRecord> records,
                           net::Timestamp export_time, PacketBatch& out,
                           const EncodeLimits& limits = {});

  [[nodiscard]] std::uint32_t flow_sequence() const noexcept { return sequence_; }

  /// Reposition the flow-sequence counter (exporter restarts; tests use it
  /// to exercise the collector's uint32 wraparound accounting).
  void set_flow_sequence(std::uint32_t sequence) noexcept { sequence_ = sequence; }

 private:
  std::uint8_t engine_id_;
  std::uint16_t sampling_;
  std::uint32_t sequence_ = 0;
};

/// Result of decoding one v5 packet.
struct NetflowV5Packet {
  NetflowV5Header header;
  std::vector<FlowRecord> records;
  /// Sequence accounting of this packet (filled by NetflowV5Decoder; the
  /// stateless decode_netflow_v5 leaves it default).
  SequenceTracker::Event sequence_event;
};

/// Decode a v5 packet; nullopt on malformed/truncated input (never throws,
/// never reads out of bounds). When `error` is non-null it receives the
/// rejection classification (kNone on success).
[[nodiscard]] std::optional<NetflowV5Packet> decode_netflow_v5(
    std::span<const std::uint8_t> packet, DecodeError* error = nullptr) noexcept;

/// Stateful v5 decoder: tracks the per-engine flow-sequence counter (v5
/// sequence numbers count *flows*, stamped with the first flow of each
/// packet) so export loss between router and collector is measurable, and
/// classifies every rejected packet.
class NetflowV5Decoder {
 public:
  explicit NetflowV5Decoder(
      std::uint32_t reorder_window = SequenceTracker::kDefaultReorderWindow) noexcept
      : reorder_window_(reorder_window) {}

  [[nodiscard]] std::optional<NetflowV5Packet> decode(
      std::span<const std::uint8_t> packet) noexcept;

  /// Why the most recent decode() returned nullopt (kNone after a success).
  [[nodiscard]] DecodeError last_error() const noexcept { return last_error_; }

  /// Aggregate over all engines; `lost` counts flow records.
  [[nodiscard]] const SequenceAccounting& sequence_accounting() const noexcept {
    return accounting_;
  }

 private:
  std::uint32_t reorder_window_;
  // key: engine_type << 8 | engine_id
  std::map<std::uint16_t, SequenceTracker> sequences_;
  SequenceAccounting accounting_;
  DecodeError last_error_ = DecodeError::kNone;
};

}  // namespace lockdown::flow
