#include "flow/netflow_v9.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/encode_plan.hpp"
#include "flow/field_codec.hpp"
#include "flow/wire.hpp"
#include "obs/trace.hpp"

namespace lockdown::flow {

namespace {
constexpr std::uint32_t kSysUptimeAtExportMs = 48u * 3600u * 1000u;

/// Wire size of a v9 packet carrying the template flowset plus `n` data
/// records of `stride` bytes (spec-recommended 32-bit padding included).
/// Matches what encode() emits byte for byte.
[[nodiscard]] constexpr std::size_t v9_packet_size(std::size_t n,
                                                   std::size_t stride,
                                                   std::size_t fields) noexcept {
  const std::size_t template_flowset = 4 + 4 + 4 * fields;
  std::size_t size = kNetflowV9HeaderSize + template_flowset;
  if (n > 0) {
    std::size_t data = 4 + n * stride;
    while (data % 4 != 0) ++data;  // pad to 32 bits
    size += data;
  }
  return size;
}
}

std::vector<std::vector<std::uint8_t>> NetflowV9Encoder::encode(
    std::span<const FlowRecord> records, net::Timestamp export_time,
    std::size_t max_records_per_packet) {
  for (const FlowRecord& r : records) {
    if (r.src_addr.is_v6() || r.dst_addr.is_v6()) {
      throw std::invalid_argument("NetflowV9Encoder: IPv6 not supported by this exporter");
    }
  }
  if (max_records_per_packet == 0) max_records_per_packet = 1;

  const TemplateRecord tmpl = netflow_v9_v4_template();
  const TimeContext tc{kSysUptimeAtExportMs,
                       static_cast<std::uint32_t>(export_time.seconds())};

  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t off = 0; off < records.size() || packets.empty();) {
    const std::size_t n = std::min(max_records_per_packet, records.size() - off);
    WireWriter w;
    w.u16(kNetflowV9Version);
    w.u16(0);  // count placeholder (flowset records incl. templates)
    w.u32(kSysUptimeAtExportMs);
    w.u32(static_cast<std::uint32_t>(export_time.seconds()));
    w.u32(sequence_++);
    w.u32(source_id_);

    // Template flowset.
    {
      const std::size_t fs_start = w.size();
      w.u16(kNetflowV9TemplateFlowsetId);
      w.u16(0);
      w.u16(tmpl.template_id);
      w.u16(static_cast<std::uint16_t>(tmpl.fields.size()));
      for (const FieldSpec& f : tmpl.fields) {
        w.u16(static_cast<std::uint16_t>(f.id));
        w.u16(f.length);
      }
      w.patch_u16(fs_start + 2, static_cast<std::uint16_t>(w.size() - fs_start));
    }

    // Data flowset.
    if (n > 0) {
      const std::size_t fs_start = w.size();
      w.u16(tmpl.template_id);
      w.u16(0);
      for (std::size_t i = 0; i < n; ++i) {
        for (const FieldSpec& f : tmpl.fields) {
          encode_field(w, f, records[off + i], tc);
        }
      }
      // Pad to 32-bit boundary as the spec recommends.
      while ((w.size() - fs_start) % 4 != 0) w.u8(0);
      w.patch_u16(fs_start + 2, static_cast<std::uint16_t>(w.size() - fs_start));
    }

    w.patch_u16(2, static_cast<std::uint16_t>(n + 1));  // records + 1 template
    packets.push_back(w.take());
    off += n;
    if (records.empty()) break;
  }
  return packets;
}

std::size_t NetflowV9Encoder::encode_batch(std::span<const FlowRecord> records,
                                           net::Timestamp export_time,
                                           PacketBatch& out,
                                           const EncodeLimits& limits) {
  TRACE_SPAN_ARG("encode", "v9.encode_batch", records.size());
  for (const FlowRecord& r : records) {
    if (r.src_addr.is_v6() || r.dst_addr.is_v6()) {
      throw std::invalid_argument(
          "NetflowV9Encoder: IPv6 not supported by this exporter");
    }
  }

  const TemplateRecord tmpl = netflow_v9_v4_template();
  const EncodePlan plan = EncodePlan::compile(tmpl);
  const std::size_t stride = plan.stride();
  const std::size_t fields = tmpl.fields.size();
  const TimeContext tc{kSysUptimeAtExportMs,
                       static_cast<std::uint32_t>(export_time.seconds())};

  // Budget: the largest n whose exact packet size (header + template
  // flowset + padded data flowset) fits. A UDP datagram bounds even the
  // "unlimited" case; at least one record per packet guarantees progress.
  constexpr std::size_t kMaxDatagram = 65507;
  const std::size_t budget =
      limits.max_packet_bytes == 0 ? kMaxDatagram
                                   : std::min(limits.max_packet_bytes,
                                              kMaxDatagram);
  std::size_t cap =
      limits.max_records_per_packet == 0 ? 24 : limits.max_records_per_packet;
  while (cap > 1 && v9_packet_size(cap, stride, fields) > budget) --cap;

  const auto export_secs = static_cast<std::uint32_t>(export_time.seconds());
  std::size_t made = 0;
  for (std::size_t off = 0; off < records.size() || made == 0;) {
    const std::size_t n = std::min(cap, records.size() - off);
    out.begin_packet();
    out.put_u16(kNetflowV9Version);
    out.put_u16(static_cast<std::uint16_t>(n + 1));  // records + 1 template
    out.put_u32(kSysUptimeAtExportMs);
    out.put_u32(export_secs);
    out.put_u32(sequence_++);
    out.put_u32(source_id_);

    // Template flowset; the length is fixed by the field count, so no
    // patching is needed.
    out.put_u16(kNetflowV9TemplateFlowsetId);
    out.put_u16(static_cast<std::uint16_t>(4 + 4 + 4 * fields));
    out.put_u16(tmpl.template_id);
    out.put_u16(static_cast<std::uint16_t>(fields));
    for (const FieldSpec& f : tmpl.fields) {
      out.put_u16(static_cast<std::uint16_t>(f.id));
      out.put_u16(f.length);
    }

    // Data flowset, packed by the compiled plan in one columnar pass.
    if (n > 0) {
      std::size_t data_len = 4 + n * stride;
      std::size_t pad = 0;
      while ((data_len + pad) % 4 != 0) ++pad;
      out.put_u16(tmpl.template_id);
      out.put_u16(static_cast<std::uint16_t>(data_len + pad));
      plan.encode_batch(records.data() + off, n, out.extend(n * stride), tc);
      out.put_zeros(pad);
    }
    out.end_packet();
    ++made;
    off += n;
    if (records.empty()) break;
  }
  return made;
}

std::vector<std::uint8_t> NetflowV9Encoder::encode_sampling_options(
    net::Timestamp export_time, std::uint32_t sampling_interval,
    std::uint8_t sampling_algorithm) {
  WireWriter w;
  w.u16(kNetflowV9Version);
  w.u16(2);  // one options template + one options data record
  w.u32(kSysUptimeAtExportMs);
  w.u32(static_cast<std::uint32_t>(export_time.seconds()));
  w.u32(sequence_++);
  w.u32(source_id_);

  // Options template flowset (RFC 3954 Figure 8): id, scope length in
  // bytes, option length in bytes, then scope and option field specs.
  {
    const std::size_t fs = w.size();
    w.u16(kNetflowV9OptionsTemplateFlowsetId);
    w.u16(0);
    w.u16(kOptionsTemplateId);
    w.u16(4);   // scope section: one (type,len) pair = 4 bytes of specs
    w.u16(8);   // options section: two (type,len) pairs = 8 bytes of specs
    w.u16(kScopeSystem);
    w.u16(0);   // System scope carries no value bytes
    w.u16(kFieldSamplingInterval);
    w.u16(4);
    w.u16(kFieldSamplingAlgorithm);
    w.u16(1);
    w.u8(0);    // pad to 32 bits
    w.u8(0);
    w.patch_u16(fs + 2, static_cast<std::uint16_t>(w.size() - fs));
  }

  // Options data flowset.
  {
    const std::size_t fs = w.size();
    w.u16(kOptionsTemplateId);
    w.u16(0);
    w.u32(sampling_interval);
    w.u8(sampling_algorithm);
    while ((w.size() - fs) % 4 != 0) w.u8(0);
    w.patch_u16(fs + 2, static_cast<std::uint16_t>(w.size() - fs));
  }
  return w.take();
}

std::optional<NetflowV9Packet> NetflowV9Decoder::decode(
    std::span<const std::uint8_t> packet) {
  TRACE_SPAN_ARG("decode", "v9.decode", packet.size());
  const auto fail = [this](DecodeError e) {
    last_error_ = e;
    return std::nullopt;
  };
  last_error_ = DecodeError::kNone;

  if (packet.size() < 2) return fail(DecodeError::kTruncatedHeader);
  WireReader r(packet);
  if (r.u16() != kNetflowV9Version) return fail(DecodeError::kBadVersion);
  const std::uint16_t count = r.u16();

  NetflowV9Packet out;
  out.sys_uptime_ms = r.u32();
  out.unix_secs = r.u32();
  out.sequence = r.u32();
  out.source_id = r.u32();
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);

  const TimeContext tc{out.sys_uptime_ms, out.unix_secs};
  std::size_t parsed_records = 0;

  while (r.remaining() >= 4) {
    const std::uint16_t flowset_id = r.u16();
    const std::uint16_t flowset_len = r.u16();
    if (flowset_len < 4 || static_cast<std::size_t>(flowset_len - 4) > r.remaining()) {
      return fail(DecodeError::kBadLength);
    }
    WireReader fs = r.sub(flowset_len - 4);

    if (flowset_id == kNetflowV9TemplateFlowsetId) {
      while (fs.remaining() >= 4) {
        TemplateRecord tmpl;
        tmpl.template_id = fs.u16();
        const std::uint16_t field_count = fs.u16();
        if (tmpl.template_id < 256) return fail(DecodeError::kBadTemplate);
        for (std::uint16_t i = 0; i < field_count; ++i) {
          tmpl.fields.push_back(FieldSpec{static_cast<FieldId>(fs.u16()), fs.u16()});
        }
        if (fs.failed()) return fail(DecodeError::kBadTemplate);
        templates_[{out.source_id, tmpl.template_id}] =
            CachedTemplate::make(std::move(tmpl));
        ++out.templates_seen;
        ++parsed_records;
      }
    } else if (flowset_id == kNetflowV9OptionsTemplateFlowsetId) {
      // Options template(s): scope specs are skipped (we key everything by
      // the packet's source id), option field specs are retained.
      while (fs.remaining() >= 6) {
        const std::uint16_t template_id = fs.u16();
        const std::uint16_t scope_spec_bytes = fs.u16();
        const std::uint16_t option_spec_bytes = fs.u16();
        if (template_id < 256) return fail(DecodeError::kBadTemplate);
        OptionsTemplate tmpl;
        for (std::uint16_t consumed = 0; consumed + 4 <= scope_spec_bytes;
             consumed += 4) {
          (void)fs.u16();  // scope field type
          tmpl.scope_bytes += fs.u16();
        }
        for (std::uint16_t consumed = 0; consumed + 4 <= option_spec_bytes;
             consumed += 4) {
          tmpl.fields.push_back(FieldSpec{static_cast<FieldId>(fs.u16()), fs.u16()});
        }
        if (fs.failed()) return fail(DecodeError::kBadTemplate);
        options_[{out.source_id, template_id}] = tmpl;
        ++out.options_templates_seen;
        ++parsed_records;
        // Anything remaining < 6 bytes is padding.
        if (fs.remaining() < 6) break;
      }
    } else if (flowset_id >= 256) {
      if (const auto opt = options_.find({out.source_id, flowset_id});
          opt != options_.end()) {
        // Options data record: skip the scope values, read option fields.
        const OptionsTemplate& tmpl = opt->second;
        std::size_t rec_len = tmpl.scope_bytes;
        for (const FieldSpec& f : tmpl.fields) rec_len += f.length;
        if (rec_len == 0) return fail(DecodeError::kBadTemplate);
        while (fs.remaining() >= rec_len) {
          if (!fs.skip(tmpl.scope_bytes)) return fail(DecodeError::kTruncatedRecord);
          for (const FieldSpec& f : tmpl.fields) {
            const std::uint16_t raw_id = static_cast<std::uint16_t>(f.id);
            // An attacker-declared f.length > 8 would shift the high bytes
            // of `value` out silently; clamp the numeric fold to the final
            // (least-significant, big-endian) 8 bytes and count the field.
            std::uint16_t fold_len = f.length;
            if (fold_len > 8) {
              if (!fs.skip(fold_len - 8u)) return fail(DecodeError::kTruncatedRecord);
              fold_len = 8;
              ++out.oversize_fields;
              ++oversize_fields_;
            }
            std::uint64_t value = 0;
            for (std::uint16_t b = 0; b < fold_len; ++b) {
              value = (value << 8) | fs.u8();
            }
            if (raw_id == kFieldSamplingInterval && value > 0) {
              sampling_[out.source_id] = static_cast<std::uint32_t>(value);
            }
          }
          if (fs.failed()) return fail(DecodeError::kTruncatedRecord);
          ++parsed_records;
        }
        continue;
      }
      const auto it = templates_.find({out.source_id, flowset_id});
      if (it == templates_.end()) {
        ++out.skipped_flowsets;
        continue;
      }
      const DecodePlan& plan = it->second.plan;
      const std::size_t rec_len = plan.stride();
      if (rec_len == 0) return fail(DecodeError::kBadTemplate);
      // One bounds check per flowset; columnar decode of every whole
      // record, trailing padding (< one record) left to the flowset skip.
      const std::size_t n = fs.remaining() / rec_len;
      if (n > 0) {
        const auto raw = fs.take(n * rec_len);
        plan.decode_batch(raw.data(), n, out.records, tc);
        parsed_records += n;
      }
    } else {
      continue;  // reserved flowset ids
    }
  }
  if (r.failed()) return fail(DecodeError::kTruncatedHeader);
  // Header count is advisory (padding can skew it); only reject wild
  // disagreement, which indicates corruption.
  if (parsed_records > 0 && count == 0) return fail(DecodeError::kOther);

  // v9 sequence numbers count export packets: one unit per datagram.
  auto [seq_it, inserted] =
      sequences_.try_emplace(out.source_id, SequenceTracker(reorder_window_));
  out.sequence_event = seq_it->second.observe(out.sequence, 1);
  accounting_.apply(out.sequence_event, 1);
  return out;
}

}  // namespace lockdown::flow
