// NetFlow version 9 codec (template-based, RFC 3954 flavor). Used by the
// mobile-operator and IPX vantage points. Shares the information-element
// registry and field codec with IPFIX; differs in header layout (count +
// sysUptime instead of message length) and sysUptime-relative timestamps.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/decode_error.hpp"
#include "flow/decode_plan.hpp"
#include "flow/flow_record.hpp"
#include "flow/packet_arena.hpp"
#include "flow/sequence_tracker.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

inline constexpr std::uint16_t kNetflowV9Version = 9;
inline constexpr std::uint16_t kNetflowV9TemplateFlowsetId = 0;
inline constexpr std::uint16_t kNetflowV9OptionsTemplateFlowsetId = 1;
inline constexpr std::size_t kNetflowV9HeaderSize = 20;

// Options-data field types (RFC 3954 section 8).
inline constexpr std::uint16_t kFieldSamplingInterval = 34;
inline constexpr std::uint16_t kFieldSamplingAlgorithm = 35;
inline constexpr std::uint16_t kScopeSystem = 1;
inline constexpr std::uint16_t kOptionsTemplateId = 512;

class NetflowV9Encoder {
 public:
  explicit NetflowV9Encoder(std::uint32_t source_id) noexcept
      : source_id_(source_id) {}

  /// Emit an options packet announcing the exporter's sampling
  /// configuration (RFC 3954 section 6.1: options template with a System
  /// scope plus samplingInterval/samplingAlgorithm fields, followed by the
  /// options data record). Collectors use it to rescale sampled counters.
  [[nodiscard]] std::vector<std::uint8_t> encode_sampling_options(
      net::Timestamp export_time, std::uint32_t sampling_interval,
      std::uint8_t sampling_algorithm = 0x02 /* random */);

  /// Encode into packets of at most `max_records_per_packet` data records.
  /// Each packet carries the template flowset followed by data flowsets.
  /// v9 is IPv4-only here (matching our deployments); throws
  /// std::invalid_argument on IPv6 records.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, net::Timestamp export_time,
      std::size_t max_records_per_packet = 24);

  /// Batch form of encode(): appends packets to `out` (caller clears
  /// between flushes) and returns how many were appended. The template's
  /// field list is compiled into an EncodePlan once, then each data
  /// flowset is packed by tiled columnar stores. Byte-identical to
  /// encode() under EncodeLimits::unbudgeted(); with a byte budget,
  /// flowsets split exactly at the boundary (a 24-record v9 packet is
  /// 1096 bytes, so the default MTU budget never binds). Throws
  /// std::invalid_argument on IPv6 records, like encode().
  std::size_t encode_batch(std::span<const FlowRecord> records,
                           net::Timestamp export_time, PacketBatch& out,
                           const EncodeLimits& limits = {});

  /// Reposition the packet-sequence counter (exporter restarts; tests use
  /// it to exercise uint32 wraparound accounting).
  void set_sequence(std::uint32_t sequence) noexcept { sequence_ = sequence; }

 private:
  std::uint32_t source_id_;
  std::uint32_t sequence_ = 0;  // packets sent (v9 counts packets, not records)
};

struct NetflowV9Packet {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t unix_secs = 0;
  std::uint32_t sequence = 0;
  std::uint32_t source_id = 0;
  std::vector<FlowRecord> records;
  std::size_t templates_seen = 0;
  std::size_t options_templates_seen = 0;
  std::size_t skipped_flowsets = 0;
  /// Option fields longer than 8 bytes, clamped during the numeric fold.
  std::size_t oversize_fields = 0;
  /// Sequence accounting of this packet (v9 sequences count export
  /// packets, so a gap of k means k datagrams were lost in transit).
  SequenceTracker::Event sequence_event;
};

/// Stateful v9 decoder with a per-source template cache, including options
/// templates: once an exporter announces its sampling interval, the
/// decoder exposes it so collectors can rescale counters.
class NetflowV9Decoder {
 public:
  explicit NetflowV9Decoder(
      std::uint32_t reorder_window = SequenceTracker::kDefaultReorderWindow) noexcept
      : reorder_window_(reorder_window) {}

  [[nodiscard]] std::optional<NetflowV9Packet> decode(
      std::span<const std::uint8_t> packet);

  [[nodiscard]] std::size_t cached_templates() const noexcept {
    return templates_.size();
  }

  /// The compiled plan of a cached template, or nullptr if unknown.
  /// Exposed for tests and diagnostics; decode() uses it internally.
  [[nodiscard]] const DecodePlan* decode_plan(std::uint32_t source_id,
                                              std::uint16_t template_id) const {
    const auto it = templates_.find({source_id, template_id});
    return it == templates_.end() ? nullptr : &it->second.plan;
  }

  /// Last announced sampling interval of a source (1 = unsampled/unknown).
  [[nodiscard]] std::uint32_t sampling_interval(std::uint32_t source_id) const {
    const auto it = sampling_.find(source_id);
    return it == sampling_.end() ? 1 : it->second;
  }

  /// Why the most recent decode() returned nullopt (kNone after a success).
  [[nodiscard]] DecodeError last_error() const noexcept { return last_error_; }

  /// Aggregate over all sources; `lost` counts export *packets* (the v9
  /// sequence unit). Multiply by the source's typical records-per-packet
  /// for a lost-record estimate.
  [[nodiscard]] const SequenceAccounting& sequence_accounting() const noexcept {
    return accounting_;
  }

  /// Option fields longer than 8 bytes seen across all packets.
  [[nodiscard]] std::uint64_t oversize_fields() const noexcept {
    return oversize_fields_;
  }

 private:
  struct OptionsTemplate {
    std::uint16_t scope_bytes = 0;
    std::vector<FieldSpec> fields;  // option (non-scope) fields
  };

  std::uint32_t reorder_window_;
  // Value carries the compiled decode plan; template refresh recompiles it.
  std::map<std::pair<std::uint32_t, std::uint16_t>, CachedTemplate> templates_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, OptionsTemplate> options_;
  std::map<std::uint32_t, std::uint32_t> sampling_;
  std::map<std::uint32_t, SequenceTracker> sequences_;
  SequenceAccounting accounting_;
  std::uint64_t oversize_fields_ = 0;
  DecodeError last_error_ = DecodeError::kNone;
};

}  // namespace lockdown::flow
