// NetFlow version 9 codec (template-based, RFC 3954 flavor). Used by the
// mobile-operator and IPX vantage points. Shares the information-element
// registry and field codec with IPFIX; differs in header layout (count +
// sysUptime instead of message length) and sysUptime-relative timestamps.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_record.hpp"
#include "flow/template_fields.hpp"

namespace lockdown::flow {

inline constexpr std::uint16_t kNetflowV9Version = 9;
inline constexpr std::uint16_t kNetflowV9TemplateFlowsetId = 0;
inline constexpr std::uint16_t kNetflowV9OptionsTemplateFlowsetId = 1;
inline constexpr std::size_t kNetflowV9HeaderSize = 20;

// Options-data field types (RFC 3954 section 8).
inline constexpr std::uint16_t kFieldSamplingInterval = 34;
inline constexpr std::uint16_t kFieldSamplingAlgorithm = 35;
inline constexpr std::uint16_t kScopeSystem = 1;
inline constexpr std::uint16_t kOptionsTemplateId = 512;

class NetflowV9Encoder {
 public:
  explicit NetflowV9Encoder(std::uint32_t source_id) noexcept
      : source_id_(source_id) {}

  /// Emit an options packet announcing the exporter's sampling
  /// configuration (RFC 3954 section 6.1: options template with a System
  /// scope plus samplingInterval/samplingAlgorithm fields, followed by the
  /// options data record). Collectors use it to rescale sampled counters.
  [[nodiscard]] std::vector<std::uint8_t> encode_sampling_options(
      net::Timestamp export_time, std::uint32_t sampling_interval,
      std::uint8_t sampling_algorithm = 0x02 /* random */);

  /// Encode into packets of at most `max_records_per_packet` data records.
  /// Each packet carries the template flowset followed by data flowsets.
  /// v9 is IPv4-only here (matching our deployments); throws
  /// std::invalid_argument on IPv6 records.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, net::Timestamp export_time,
      std::size_t max_records_per_packet = 24);

 private:
  std::uint32_t source_id_;
  std::uint32_t sequence_ = 0;  // packets sent (v9 counts packets, not records)
};

struct NetflowV9Packet {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t unix_secs = 0;
  std::uint32_t sequence = 0;
  std::uint32_t source_id = 0;
  std::vector<FlowRecord> records;
  std::size_t templates_seen = 0;
  std::size_t options_templates_seen = 0;
  std::size_t skipped_flowsets = 0;
};

/// Stateful v9 decoder with a per-source template cache, including options
/// templates: once an exporter announces its sampling interval, the
/// decoder exposes it so collectors can rescale counters.
class NetflowV9Decoder {
 public:
  [[nodiscard]] std::optional<NetflowV9Packet> decode(
      std::span<const std::uint8_t> packet);

  [[nodiscard]] std::size_t cached_templates() const noexcept {
    return templates_.size();
  }

  /// Last announced sampling interval of a source (1 = unsampled/unknown).
  [[nodiscard]] std::uint32_t sampling_interval(std::uint32_t source_id) const {
    const auto it = sampling_.find(source_id);
    return it == sampling_.end() ? 1 : it->second;
  }

 private:
  struct OptionsTemplate {
    std::uint16_t scope_bytes = 0;
    std::vector<FieldSpec> fields;  // option (non-scope) fields
  };

  std::map<std::pair<std::uint32_t, std::uint16_t>, TemplateRecord> templates_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, OptionsTemplate> options_;
  std::map<std::uint32_t, std::uint32_t> sampling_;
};

}  // namespace lockdown::flow
