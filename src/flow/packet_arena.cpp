#include "flow/packet_arena.hpp"

#include <bit>

#include "obs/metrics.hpp"

namespace lockdown::flow {

std::size_t PacketArena::class_of(std::size_t size) noexcept {
  if (size <= (std::size_t{1} << kMinClassBits)) return 0;
  const std::size_t bits = std::bit_width(size - 1);  // ceil log2
  if (bits > kMaxClassBits) return kClasses;          // oversize: unpooled
  return bits - kMinClassBits;
}

std::vector<std::uint8_t> PacketArena::acquire(std::size_t size_hint) {
  const std::size_t cls = class_of(size_hint);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquired;
    if (cls < kClasses && !free_[cls].empty()) {
      ++stats_.reused;
      std::vector<std::uint8_t> buf = std::move(free_[cls].back());
      free_[cls].pop_back();
      return buf;
    }
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(size_hint);
  return buf;
}

void PacketArena::release(std::vector<std::uint8_t>&& buf) {
  // A released buffer is classed by its capacity: whatever it grew to is
  // what the next acquire of that class gets without reallocating.
  const std::size_t cls = class_of(buf.capacity());
  buf.clear();
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.released;
  if (cls >= kClasses || free_[cls].size() >= per_class_cap_) {
    ++stats_.discarded;
    return;  // buf frees on scope exit
  }
  free_[cls].push_back(std::move(buf));
}

PacketArena::Stats PacketArena::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void publish_arena_stats(obs::Registry& registry,
                         const PacketArena::Stats& s) {
  registry
      .gauge("packet_arena_acquired", {}, "Total PacketArena acquire() calls")
      .set(static_cast<double>(s.acquired));
  registry
      .gauge("packet_arena_reused", {},
             "Acquires served from the pool instead of allocating")
      .set(static_cast<double>(s.reused));
  registry
      .gauge("packet_arena_released", {}, "Total PacketArena release() calls")
      .set(static_cast<double>(s.released));
  registry
      .gauge("packet_arena_discarded", {},
             "Releases dropped because the size class was full")
      .set(static_cast<double>(s.discarded));
}

void publish_arena_stats(obs::Registry& registry, const PacketArena& arena) {
  publish_arena_stats(registry, arena.stats());
}

}  // namespace lockdown::flow
