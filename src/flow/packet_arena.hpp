// Pooled packet buffers for the export and replay hot paths.
//
// The per-field encoders returned std::vector<std::vector<uint8_t>> -- one
// heap allocation per datagram, re-made on every ExportPump flush and every
// synthesized batch. A PacketBatch stores a whole datagram train in one
// contiguous byte vector plus an end-offset list, so a steady-state
// exporter reuses the same two allocations forever; encoders append into
// it through a small builder interface (open packet at the tail, patchable
// length fields, sealed by end_packet()).
//
// A PacketArena recycles the individual datagram buffers the replay side
// still needs (the sharded collector hands each datagram to a worker by
// value): size-classed free lists under a mutex, bounded per class so a
// burst cannot pin memory forever. Workers release consumed buffers back;
// the wire thread's next ingest reuses them instead of allocating.
//
// EncodeLimits is the per-packet budget the batch encoders honor: a record
// cap (the protocols' historical chunk size) and a byte budget, split
// *exactly* at the boundary -- a packet never exceeds max_packet_bytes
// unless even a single record cannot fit, in which case one record is
// emitted anyway so encoding always makes progress.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace lockdown::obs {
class Registry;
}

namespace lockdown::flow {

/// Conventional Ethernet-path datagram budget. The IPFIX exporter's
/// historical 24-record chunks overflow this with IPv6-heavy data sets
/// (1920 bytes); the batch encoders split exactly under it instead.
inline constexpr std::size_t kDefaultMtu = 1500;

struct EncodeLimits {
  /// Records per packet, at most; 0 = the protocol's default chunk size
  /// (v5: 30, v9/IPFIX: 24).
  std::size_t max_records_per_packet = 0;
  /// Datagram byte budget; 0 = unlimited. Never exceeded except when a
  /// single record alone cannot fit (progress guarantee).
  std::size_t max_packet_bytes = kDefaultMtu;

  /// The limits that reproduce the per-field encode() chunking exactly:
  /// record cap only, no byte budget. The differential tests pin
  /// encode_batch against encode() under these.
  [[nodiscard]] static constexpr EncodeLimits unbudgeted() noexcept {
    return EncodeLimits{0, 0};
  }
};

/// A train of wire packets in two flat allocations: one byte buffer, one
/// end-offset list. clear() keeps both capacities, so a reused batch stops
/// allocating once it has seen its largest flush.
class PacketBatch {
 public:
  void clear() noexcept {
    bytes_.clear();
    ends_.clear();
    open_ = false;
  }

  void reserve(std::size_t bytes, std::size_t packets) {
    bytes_.reserve(bytes);
    ends_.reserve(packets);
  }

  /// Sealed packets.
  [[nodiscard]] std::size_t size() const noexcept { return ends_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ends_.empty(); }

  [[nodiscard]] std::span<const std::uint8_t> packet(std::size_t i) const noexcept {
    const std::size_t begin = i == 0 ? 0 : ends_[i - 1];
    return {bytes_.data() + begin, ends_[i] - begin};
  }

  /// Bytes across all sealed packets (excludes an open packet).
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return ends_.empty() ? 0 : ends_.back();
  }

  // --- builder interface (the batch encoders) -----------------------------
  // One packet may be open at a time; all appends go to the byte buffer's
  // tail. Offsets passed to patch_u16 are relative to the open packet's
  // first byte, mirroring how the encoders patch length/count fields.

  void begin_packet() {
    open_start_ = bytes_.size();
    open_ = true;
  }

  [[nodiscard]] std::size_t open_bytes() const noexcept {
    return bytes_.size() - open_start_;
  }

  /// Append `n` zeroed bytes to the open packet and return a pointer to
  /// them -- the bulk-store destination for a compiled encode plan (which
  /// relies on skipped fields staying zero).
  [[nodiscard]] std::uint8_t* extend(std::size_t n) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    return bytes_.data() + at;
  }

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v >> 16));
    put_u16(static_cast<std::uint16_t>(v));
  }
  void put_zeros(std::size_t n) { bytes_.insert(bytes_.end(), n, 0); }

  void patch_u16(std::size_t offset_in_packet, std::uint16_t v) noexcept {
    std::uint8_t* p = bytes_.data() + open_start_ + offset_in_packet;
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }

  void end_packet() {
    ends_.push_back(bytes_.size());
    open_ = false;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<std::size_t> ends_;
  std::size_t open_start_ = 0;
  bool open_ = false;
};

/// Thread-safe recycler of datagram buffers, size-classed by capacity.
/// acquire() hands back a cleared buffer with at least `size_hint` bytes
/// reserved when one is pooled, a fresh one otherwise; release() returns a
/// consumed buffer to its class unless the class is full (then the buffer
/// is simply freed, bounding pooled memory).
class PacketArena {
 public:
  struct Stats {
    std::uint64_t acquired = 0;   ///< total acquire() calls
    std::uint64_t reused = 0;     ///< acquires served from the pool
    std::uint64_t released = 0;   ///< total release() calls
    std::uint64_t discarded = 0;  ///< releases dropped by the class cap
  };

  explicit PacketArena(std::size_t per_class_cap = 1024) noexcept
      : per_class_cap_(per_class_cap) {}

  [[nodiscard]] std::vector<std::uint8_t> acquire(std::size_t size_hint);
  void release(std::vector<std::uint8_t>&& buf);

  [[nodiscard]] Stats stats() const;

 private:
  /// Capacity classes: powers of two from 2^6 (64 B, tiny control
  /// datagrams) through 2^16 (the UDP maximum). class_of() maps a size to
  /// the smallest class that holds it.
  static constexpr std::size_t kMinClassBits = 6;
  static constexpr std::size_t kMaxClassBits = 16;
  static constexpr std::size_t kClasses = kMaxClassBits - kMinClassBits + 1;

  [[nodiscard]] static std::size_t class_of(std::size_t size) noexcept;

  mutable std::mutex mu_;
  std::array<std::vector<std::vector<std::uint8_t>>, kClasses> free_;
  std::size_t per_class_cap_;
  Stats stats_;
};

/// Publish arena reuse/miss stats as registry gauges
/// (`packet_arena_{acquired,reused,released,discarded}`), making buffer
/// recycling effectiveness scrapeable. The Stats overload serves callers
/// that only see a snapshot (e.g. through a daemon facade); the arena
/// overload snapshots under the arena mutex, so both are safe from any
/// thread (a scrape hook included).
void publish_arena_stats(obs::Registry& registry,
                         const PacketArena::Stats& stats);
void publish_arena_stats(obs::Registry& registry, const PacketArena& arena);

}  // namespace lockdown::flow
