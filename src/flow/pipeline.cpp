#include "flow/pipeline.hpp"

#include "flow/collector_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/arith.hpp"

namespace lockdown::flow {

void Collector::note_malformed(DecodeError error) {
  ++stats_.malformed_packets;
  stats_.errors.count(error);
  if (metrics_ != nullptr) {
    if (obs::Counter* c = metrics_->error_counter(error)) c->add();
  }
}

void Collector::note_sequence(const SequenceTracker::Event& ev,
                              std::uint32_t units) {
  TRACE_SPAN_ARG("shard", "seq.track", ev.lost);
  (void)units;
  stats_.sequence_lost += ev.lost;
  stats_.sequence_lost -= std::min(stats_.sequence_lost, ev.recovered);
  if (ev.lost > 0) ++stats_.sequence_gaps;
  if (ev.reordered) ++stats_.sequence_reordered;
  if (ev.reset) ++stats_.sequence_resets;
  if (metrics_ != nullptr) {
    // Counters are monotonic; late arrivals cannot subtract, so the
    // registry view of `lost` is an upper bound while `reordered` tells
    // the reader how loose it is. The exact value lives in stats().
    if (ev.lost > 0) {
      metrics_->sequence_lost->add(ev.lost);
      metrics_->sequence_gaps->add();
    }
    if (ev.reordered) metrics_->sequence_reordered->add();
    if (ev.reset) metrics_->sequence_resets->add();
  }
}

void Collector::ingest(std::span<const std::uint8_t> datagram) {
  ++stats_.packets;
  if (metrics_ != nullptr) metrics_->packets->add();

  auto deliver = [&](std::vector<FlowRecord>&& records, std::uint64_t scale = 1) {
    for (FlowRecord& r : records) {
      if (scale > 1) {
        r.bytes = util::saturating_mul(r.bytes, scale);
        r.packets = util::saturating_mul(r.packets, scale);
      }
      if (anonymizer_ != nullptr) anonymizer_->anonymize(r);
    }
    stats_.records += records.size();
    if (metrics_ != nullptr) metrics_->records->add(records.size());
    if (!records.empty()) sink_(records);
  };

  auto note_templates = [&](std::size_t seen, std::size_t withdrawn,
                            std::size_t oversize) {
    stats_.templates += seen;
    stats_.template_withdrawals += withdrawn;
    stats_.oversize_fields += oversize;
    if (metrics_ != nullptr) {
      if (seen > 0) metrics_->templates->add(seen);
      if (withdrawn > 0) metrics_->template_withdrawals->add(withdrawn);
      if (oversize > 0) metrics_->oversize_fields->add(oversize);
    }
  };

  switch (protocol_) {
    case ExportProtocol::kNetflowV5: {
      auto pkt = v5_.decode(datagram);
      if (!pkt) {
        note_malformed(v5_.last_error());
        return;
      }
      note_sequence(pkt->sequence_event, pkt->header.count);
      // v5 carries the sampling mode/interval in the header (2-bit mode in
      // the top bits, 14-bit interval below).
      const std::uint64_t interval = pkt->header.sampling & 0x3fff;
      deliver(std::move(pkt->records),
              rescale_sampled_ && interval > 0 ? interval : 1);
      return;
    }
    case ExportProtocol::kNetflowV9: {
      auto pkt = v9_.decode(datagram);
      if (!pkt) {
        note_malformed(v9_.last_error());
        return;
      }
      note_templates(pkt->templates_seen + pkt->options_templates_seen, 0,
                     pkt->oversize_fields);
      note_sequence(pkt->sequence_event, 1);
      const std::uint64_t interval = v9_.sampling_interval(pkt->source_id);
      deliver(std::move(pkt->records), rescale_sampled_ ? interval : 1);
      return;
    }
    case ExportProtocol::kIpfix: {
      auto msg = ipfix_.decode(datagram);
      if (!msg) {
        note_malformed(ipfix_.last_error());
        return;
      }
      note_templates(msg->templates_seen, msg->template_withdrawals, 0);
      note_sequence(msg->sequence_event,
                    static_cast<std::uint32_t>(msg->records.size()));
      deliver(std::move(msg->records));
      return;
    }
  }
}

namespace {

[[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_datagrams(
    ExportProtocol protocol, std::span<const FlowRecord> records,
    net::Timestamp export_time) {
  switch (protocol) {
    case ExportProtocol::kNetflowV5: {
      NetflowV5Encoder enc;
      return enc.encode(records, export_time);
    }
    case ExportProtocol::kNetflowV9: {
      NetflowV9Encoder enc(/*source_id=*/1);
      return enc.encode(records, export_time);
    }
    case ExportProtocol::kIpfix: {
      IpfixEncoder enc(/*observation_domain=*/1);
      return enc.encode(records, export_time);
    }
  }
  return {};
}

}  // namespace

std::size_t encode_batch_datagrams(ExportProtocol protocol,
                                   std::span<const FlowRecord> records,
                                   net::Timestamp export_time, PacketBatch& out,
                                   const EncodeLimits& limits) {
  out.clear();
  switch (protocol) {
    case ExportProtocol::kNetflowV5: {
      NetflowV5Encoder enc;
      return enc.encode_batch(records, export_time, out, limits);
    }
    case ExportProtocol::kNetflowV9: {
      NetflowV9Encoder enc(/*source_id=*/1);
      return enc.encode_batch(records, export_time, out, limits);
    }
    case ExportProtocol::kIpfix: {
      IpfixEncoder enc(/*observation_domain=*/1);
      return enc.encode_batch(records, export_time, out, limits);
    }
  }
  return 0;
}

std::vector<FlowRecord> export_and_collect(ExportProtocol protocol,
                                           std::span<const FlowRecord> records,
                                           net::Timestamp export_time,
                                           const Anonymizer* anonymizer,
                                           CollectorStats* stats_out) {
  std::vector<FlowRecord> out;
  out.reserve(records.size());
  Collector collector(
      protocol,
      Collector::BatchSink([&out](std::span<const FlowRecord> batch) {
        out.insert(out.end(), batch.begin(), batch.end());
      }),
      anonymizer);
  for (const auto& d : encode_datagrams(protocol, records, export_time)) {
    collector.ingest(d);
  }
  if (stats_out != nullptr) *stats_out = collector.stats();
  return out;
}

net::Timestamp batch_export_time(std::span<const FlowRecord> records) {
  net::Timestamp latest;
  for (const FlowRecord& r : records) {
    if (r.first > latest) latest = r.first;
  }
  return latest.plus(1);
}

void ExportPump::flush() {
  if (batch_.empty()) return;
  TRACE_SPAN_ARG("encode", "export.flush", batch_.size());
  // Collected batches go straight to the sink, span-at-a-time -- no
  // intermediate vector, no per-record indirection. The encode side packs
  // the whole flush into one reused contiguous buffer (compiled
  // EncodePlans, MTU-budgeted packets) instead of a vector per datagram.
  Collector collector(protocol_, sink_, anonymizer_);
  const std::size_t n =
      encode_batch_datagrams(protocol_, batch_, batch_export_time(batch_),
                             packets_);
  for (std::size_t i = 0; i < n; ++i) collector.ingest(packets_.packet(i));
  stats_ += collector.stats();
  batch_.clear();
}

}  // namespace lockdown::flow
