#include "flow/pipeline.hpp"

#include "util/arith.hpp"

namespace lockdown::flow {

void Collector::ingest(std::span<const std::uint8_t> datagram) {
  ++stats_.packets;

  auto deliver = [&](std::vector<FlowRecord>&& records, std::uint64_t scale = 1) {
    for (FlowRecord& r : records) {
      if (scale > 1) {
        r.bytes = util::saturating_mul(r.bytes, scale);
        r.packets = util::saturating_mul(r.packets, scale);
      }
      if (anonymizer_ != nullptr) anonymizer_->anonymize(r);
    }
    stats_.records += records.size();
    if (!records.empty()) sink_(records);
  };

  switch (protocol_) {
    case ExportProtocol::kNetflowV5: {
      auto pkt = decode_netflow_v5(datagram);
      if (!pkt) {
        ++stats_.malformed_packets;
        return;
      }
      // v5 carries the sampling mode/interval in the header (2-bit mode in
      // the top bits, 14-bit interval below).
      const std::uint64_t interval = pkt->header.sampling & 0x3fff;
      deliver(std::move(pkt->records),
              rescale_sampled_ && interval > 0 ? interval : 1);
      return;
    }
    case ExportProtocol::kNetflowV9: {
      auto pkt = v9_.decode(datagram);
      if (!pkt) {
        ++stats_.malformed_packets;
        return;
      }
      stats_.templates += pkt->templates_seen;
      const std::uint64_t interval = v9_.sampling_interval(pkt->source_id);
      deliver(std::move(pkt->records), rescale_sampled_ ? interval : 1);
      return;
    }
    case ExportProtocol::kIpfix: {
      auto msg = ipfix_.decode(datagram);
      if (!msg) {
        ++stats_.malformed_packets;
        return;
      }
      stats_.templates += msg->templates_seen;
      deliver(std::move(msg->records));
      return;
    }
  }
}

std::vector<FlowRecord> export_and_collect(ExportProtocol protocol,
                                           std::span<const FlowRecord> records,
                                           net::Timestamp export_time,
                                           const Anonymizer* anonymizer,
                                           CollectorStats* stats_out) {
  std::vector<FlowRecord> out;
  out.reserve(records.size());
  Collector collector(
      protocol, [&out](const FlowRecord& r) { out.push_back(r); }, anonymizer);

  std::vector<std::vector<std::uint8_t>> datagrams;
  switch (protocol) {
    case ExportProtocol::kNetflowV5: {
      NetflowV5Encoder enc;
      datagrams = enc.encode(records, export_time);
      break;
    }
    case ExportProtocol::kNetflowV9: {
      NetflowV9Encoder enc(/*source_id=*/1);
      datagrams = enc.encode(records, export_time);
      break;
    }
    case ExportProtocol::kIpfix: {
      IpfixEncoder enc(/*observation_domain=*/1);
      datagrams = enc.encode(records, export_time);
      break;
    }
  }
  for (const auto& d : datagrams) collector.ingest(d);
  if (stats_out != nullptr) *stats_out = collector.stats();
  return out;
}

net::Timestamp batch_export_time(std::span<const FlowRecord> records) {
  net::Timestamp latest;
  for (const FlowRecord& r : records) {
    if (r.first > latest) latest = r.first;
  }
  return latest.plus(1);
}

void ExportPump::flush() {
  if (batch_.empty()) return;
  CollectorStats stats;
  for (const FlowRecord& r : export_and_collect(
           protocol_, batch_, batch_export_time(batch_), anonymizer_, &stats)) {
    sink_(r);
  }
  stats_.packets += stats.packets;
  stats_.malformed_packets += stats.malformed_packets;
  stats_.records += stats.records;
  stats_.templates += stats.templates;
  batch_.clear();
}

}  // namespace lockdown::flow
