// Export/collect pipeline: ties an encoder, an in-memory "wire", and a
// decoder into the path every synthesized flow takes before analysis. This
// mirrors the real deployments: router exports NetFlow/IPFIX datagrams ->
// collector parses them -> records land in the analysis store. Running the
// benches through this path (rather than handing FlowRecords straight to
// the analyses) is what makes the codec layer load-bearing.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "flow/anonymizer.hpp"
#include "flow/decode_error.hpp"
#include "flow/flow_record.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v5.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/packet_arena.hpp"

namespace lockdown::flow {

enum class ExportProtocol : std::uint8_t {
  kNetflowV5,
  kNetflowV9,
  kIpfix,
};

[[nodiscard]] constexpr const char* to_string(ExportProtocol p) noexcept {
  switch (p) {
    case ExportProtocol::kNetflowV5: return "NetFlow v5";
    case ExportProtocol::kNetflowV9: return "NetFlow v9";
    case ExportProtocol::kIpfix: return "IPFIX";
  }
  return "?";
}

/// Metric-label-safe spelling of the protocol name.
[[nodiscard]] constexpr const char* protocol_label(ExportProtocol p) noexcept {
  switch (p) {
    case ExportProtocol::kNetflowV5: return "netflow_v5";
    case ExportProtocol::kNetflowV9: return "netflow_v9";
    case ExportProtocol::kIpfix: return "ipfix";
  }
  return "unknown";
}

/// Collector-side statistics. `malformed_packets` stays the total across
/// the error taxonomy (== errors.total()) so existing dashboards keep
/// working; `errors` breaks it down by cause. Sequence fields measure
/// export loss between router and collector: `sequence_lost` is in the
/// protocol's native unit -- export packets for NetFlow v9, flow records
/// for v5 and IPFIX.
struct CollectorStats {
  std::uint64_t packets = 0;
  std::uint64_t malformed_packets = 0;
  std::uint64_t records = 0;
  std::uint64_t templates = 0;
  std::uint64_t template_withdrawals = 0;
  std::uint64_t oversize_fields = 0;
  std::uint64_t sequence_lost = 0;
  std::uint64_t sequence_gaps = 0;
  std::uint64_t sequence_reordered = 0;
  std::uint64_t sequence_resets = 0;
  DecodeErrorCounts errors;

  CollectorStats& operator+=(const CollectorStats& o) noexcept {
    packets += o.packets;
    malformed_packets += o.malformed_packets;
    records += o.records;
    templates += o.templates;
    template_withdrawals += o.template_withdrawals;
    oversize_fields += o.oversize_fields;
    sequence_lost += o.sequence_lost;
    sequence_gaps += o.sequence_gaps;
    sequence_reordered += o.sequence_reordered;
    sequence_resets += o.sequence_resets;
    errors += o.errors;
    return *this;
  }

  friend bool operator==(const CollectorStats&, const CollectorStats&) = default;
};

struct CollectorMetrics;  // registry binding, see collector_metrics.hpp

/// A collector that parses datagrams of one protocol and hands records to a
/// sink. Optionally anonymizes records before the sink sees them, like the
/// on-premise hashing in the paper's ethics setup.
class Collector {
 public:
  using Sink = std::function<void(const FlowRecord&)>;
  /// Batch delivery: one call per decoded datagram instead of one
  /// type-erased call per record. The span is only valid for the duration
  /// of the call. This is the hot-path interface the sharded runtime
  /// workers use; the per-record `Sink` remains for existing callers and
  /// is adapted onto it.
  using BatchSink = std::function<void(std::span<const FlowRecord>)>;

  /// `rescale_sampled`: multiply counters by the exporter-announced
  /// sampling interval (NetFlow v9 options templates, v5 header sampling
  /// field) so downstream volume estimates are unbiased. Off by default --
  /// some pipelines prefer to keep raw sampled counters and scale late.
  ///
  /// `metrics`: optional handle bundle bound against an obs::Registry (see
  /// collector_metrics.hpp). Every stat update is mirrored into it with
  /// relaxed atomic adds; the bundle may be shared across collectors (the
  /// sharded runtime passes one instance to every shard). Must outlive the
  /// collector.
  Collector(ExportProtocol protocol, BatchSink sink,
            const Anonymizer* anonymizer = nullptr, bool rescale_sampled = false,
            const CollectorMetrics* metrics = nullptr)
      : protocol_(protocol), sink_(std::move(sink)), anonymizer_(anonymizer),
        rescale_sampled_(rescale_sampled), metrics_(metrics) {}

  Collector(ExportProtocol protocol, Sink sink,
            const Anonymizer* anonymizer = nullptr, bool rescale_sampled = false,
            const CollectorMetrics* metrics = nullptr)
      : Collector(protocol,
                  BatchSink([s = std::move(sink)](std::span<const FlowRecord> batch) {
                    for (const FlowRecord& r : batch) s(r);
                  }),
                  anonymizer, rescale_sampled, metrics) {}

  /// Parse one datagram; malformed input increments a counter, never throws.
  void ingest(std::span<const std::uint8_t> datagram);

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

 private:
  void note_malformed(DecodeError error);
  void note_sequence(const SequenceTracker::Event& ev, std::uint32_t units);

  ExportProtocol protocol_;
  BatchSink sink_;
  const Anonymizer* anonymizer_;
  bool rescale_sampled_;
  const CollectorMetrics* metrics_;
  NetflowV5Decoder v5_;
  NetflowV9Decoder v9_;
  IpfixDecoder ipfix_;
  CollectorStats stats_;
};

/// Round-trip helper: encode `records` with `protocol` and feed the packets
/// through a Collector, returning the decoded records. The benches use this
/// as the "vantage point boundary".
[[nodiscard]] std::vector<FlowRecord> export_and_collect(
    ExportProtocol protocol, std::span<const FlowRecord> records,
    net::Timestamp export_time, const Anonymizer* anonymizer = nullptr,
    CollectorStats* stats_out = nullptr);

/// Encode `records` into `out` (cleared first) with a fresh encoder of the
/// protocol -- the compiled encode_batch path, one contiguous buffer for
/// the whole flush instead of a vector<vector> per datagram. Default
/// EncodeLimits budget every packet to the 1500-byte MTU; pass
/// EncodeLimits::unbudgeted() for the legacy protocol-default chunking.
/// Returns the number of datagrams written.
std::size_t encode_batch_datagrams(ExportProtocol protocol,
                                   std::span<const FlowRecord> records,
                                   net::Timestamp export_time, PacketBatch& out,
                                   const EncodeLimits& limits = {});

/// The natural export timestamp of a batch: just after its newest flow
/// start (sysUptime-relative encodings lose flows stamped later than the
/// export instant, so export after everything in the batch).
[[nodiscard]] net::Timestamp batch_export_time(std::span<const FlowRecord> records);

/// Convenience pump: batches a synthesized stream through the vantage
/// point's wire protocol and hands the collected records to `sink`. Returns
/// collector statistics. This is the standard "vantage point boundary" the
/// examples and benches route every flow through.
class ExportPump {
 public:
  using Sink = std::function<void(const FlowRecord&)>;
  using BatchSink = Collector::BatchSink;

  /// Batch form: collected records reach `sink` one span per decoded
  /// datagram, so span-shaped consumers (ClassHeatmap::batch_sink(), the
  /// sharded runtime) avoid a type-erased call per record.
  ExportPump(ExportProtocol protocol, BatchSink sink,
             const Anonymizer* anonymizer = nullptr,
             std::size_t batch_size = 4096)
      : protocol_(protocol), sink_(std::move(sink)), anonymizer_(anonymizer),
        batch_size_(batch_size == 0 ? 1 : batch_size) {
    batch_.reserve(batch_size_);
  }

  ExportPump(ExportProtocol protocol, Sink sink,
             const Anonymizer* anonymizer = nullptr,
             std::size_t batch_size = 4096)
      : ExportPump(protocol,
                   BatchSink([s = std::move(sink)](std::span<const FlowRecord> batch) {
                     for (const FlowRecord& r : batch) s(r);
                   }),
                   anonymizer, batch_size) {}

  /// Feed one synthesized record; exports when the batch fills.
  void push(const FlowRecord& r) {
    batch_.push_back(r);
    if (batch_.size() >= batch_size_) flush();
  }

  [[nodiscard]] std::function<void(const FlowRecord&)> as_sink() {
    return [this](const FlowRecord& r) { push(r); };
  }

  /// Export any buffered records. Call once after the stream ends.
  void flush();

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

 private:
  ExportProtocol protocol_;
  BatchSink sink_;
  const Anonymizer* anonymizer_;
  std::size_t batch_size_;
  std::vector<FlowRecord> batch_;
  PacketBatch packets_;  // reused across flushes; capacity persists
  CollectorStats stats_;
};

}  // namespace lockdown::flow
