// Flow sampling, as deployed at every high-volume vantage point in the
// paper (NetFlow/IPFIX are packet- or flow-sampled in practice; the header
// even carries the sampling interval). Two strategies:
//
//  * deterministic 1:N  -- keep every Nth flow (router-style systematic
//    sampling); byte counts of kept flows are scaled by N so volume
//    estimates stay unbiased.
//  * probabilistic p    -- keep each flow independently with probability p,
//    seeded per flow so the decision is reproducible and independent of
//    processing order.
#pragma once

#include <cstdint>
#include <optional>

#include "flow/flow_record.hpp"
#include "util/arith.hpp"
#include "util/rng.hpp"

namespace lockdown::flow {

class SystematicSampler {
 public:
  /// Keep every `interval`-th flow; interval 1 keeps everything.
  explicit SystematicSampler(std::uint32_t interval) noexcept
      : interval_(interval == 0 ? 1 : interval) {}

  /// Returns the (scaled) record if sampled, nullopt otherwise. Scaling
  /// saturates at UINT64_MAX: jumbo synthetic flows at high intervals must
  /// not wrap the counters.
  [[nodiscard]] std::optional<FlowRecord> offer(const FlowRecord& r) noexcept {
    const bool keep = (counter_++ % interval_) == 0;
    if (!keep) return std::nullopt;
    FlowRecord scaled = r;
    scaled.bytes = util::saturating_mul(r.bytes, interval_);
    scaled.packets = util::saturating_mul(r.packets, interval_);
    return scaled;
  }

  [[nodiscard]] std::uint32_t interval() const noexcept { return interval_; }

 private:
  std::uint32_t interval_;
  std::uint64_t counter_ = 0;
};

class ProbabilisticSampler {
 public:
  ProbabilisticSampler(double probability, std::uint64_t seed) noexcept
      : probability_(probability < 0.0   ? 0.0
                     : probability > 1.0 ? 1.0
                                         : probability),
        seed_(seed) {}

  [[nodiscard]] std::optional<FlowRecord> offer(const FlowRecord& r) const noexcept {
    if (probability_ >= 1.0) return r;
    if (probability_ <= 0.0) return std::nullopt;
    // Hash the flow identity so the decision is order-independent.
    net::IpAddressHash iphash;
    std::uint64_t h = util::hash_combine(seed_, iphash(r.src_addr));
    h = util::hash_combine(h, iphash(r.dst_addr));
    h = util::hash_combine(h, (static_cast<std::uint64_t>(r.src_port) << 32) |
                                  (static_cast<std::uint64_t>(r.dst_port) << 16) |
                                  static_cast<std::uint64_t>(r.protocol));
    h = util::hash_combine(h, static_cast<std::uint64_t>(r.first.seconds()));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (unit >= probability_) return std::nullopt;
    // saturating_from_double: at tiny probabilities the rescaled estimate
    // exceeds 2^64 and the raw cast would be undefined behavior.
    FlowRecord scaled = r;
    scaled.bytes = util::saturating_from_double(
        static_cast<double>(r.bytes) / probability_ + 0.5);
    scaled.packets = util::saturating_from_double(
        static_cast<double>(r.packets) / probability_ + 0.5);
    return scaled;
  }

  [[nodiscard]] double probability() const noexcept { return probability_; }

 private:
  double probability_;
  std::uint64_t seed_;
};

}  // namespace lockdown::flow
