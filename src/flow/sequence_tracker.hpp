// Export-sequence accounting: how much flow export was *lost* between
// router and collector. Every export header carries a 32-bit sequence
// counter -- NetFlow v5 counts flows, v9 counts export packets, IPFIX
// counts data records (RFC 7011 §3.1) -- so the gap between the sequence a
// datagram announces and the sequence the collector expected is exactly
// the number of units that never arrived. Without this accounting a
// vantage point silently missing 30% of its datagrams reports confidently
// wrong volume trends; with it, completeness is a first-class metric the
// analyses can gate on (the precondition Favale et al. and Mirkovic et al.
// stress for lockdown-era trend claims).
//
// The tracker handles the two realities of UDP export: the counter wraps
// at 2^32 (uint32 arithmetic makes wrap-spanning gaps exact), and
// datagrams reorder in flight. A datagram arriving *behind* the expected
// sequence within `reorder_window` units is a late arrival: it is counted
// as reordered and the loss it was previously blamed for is credited
// back, so transient reordering converges to zero reported loss. A
// backward jump beyond the window is an exporter restart: the tracker
// resyncs and counts a reset instead of inventing a multi-gigaunit gap.
#pragma once

#include <algorithm>
#include <cstdint>

namespace lockdown::flow {

/// Tracks one exporter's (source/domain) sequence stream.
class SequenceTracker {
 public:
  static constexpr std::uint32_t kDefaultReorderWindow = 4096;

  /// What one observed datagram contributed to the accounting.
  struct Event {
    std::uint64_t lost = 0;       ///< units newly declared lost (gap ahead)
    std::uint64_t recovered = 0;  ///< previously-lost units a late arrival repaid
    bool reordered = false;
    bool reset = false;

    [[nodiscard]] bool in_order() const noexcept {
      return lost == 0 && !reordered && !reset;
    }
  };

  explicit SequenceTracker(
      std::uint32_t reorder_window = kDefaultReorderWindow) noexcept
      : reorder_window_(reorder_window) {}

  /// Observe a datagram announcing `sequence` and carrying `units` sequence
  /// units (1 packet for v9; the record count for v5/IPFIX, whose headers
  /// stamp the sequence of the datagram's *first* unit).
  Event observe(std::uint32_t sequence, std::uint32_t units) noexcept {
    Event ev;
    observed_ += units;
    if (!initialized_) {
      initialized_ = true;
      expected_ = sequence + units;
      return ev;
    }
    const std::uint32_t ahead = sequence - expected_;  // mod 2^32
    if (ahead == 0) {
      expected_ = sequence + units;
      return ev;
    }
    if (ahead < kForwardThreshold) {
      // Gap: `ahead` units were exported but never reached us.
      ev.lost = ahead;
      lost_ += ahead;
      ++gap_events_;
      expected_ = sequence + units;
      return ev;
    }
    const std::uint32_t behind = expected_ - sequence;
    if (behind <= reorder_window_) {
      // Late arrival: its units were already counted lost by the gap that
      // skipped over it -- credit them back. The frontier stays put.
      ev.reordered = true;
      ++reordered_;
      ev.recovered = std::min<std::uint64_t>(units, lost_);
      lost_ -= ev.recovered;
      return ev;
    }
    // Backward beyond any plausible reordering: the exporter restarted and
    // its counter reset. Resync without charging a loss.
    ev.reset = true;
    ++resets_;
    expected_ = sequence + units;
    return ev;
  }

  [[nodiscard]] std::uint64_t lost() const noexcept { return lost_; }
  [[nodiscard]] std::uint64_t observed_units() const noexcept { return observed_; }
  [[nodiscard]] std::uint64_t gap_events() const noexcept { return gap_events_; }
  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }
  [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }

 private:
  // Forward deltas below 2^31 are gaps; at/above, the datagram is behind us.
  static constexpr std::uint32_t kForwardThreshold = 0x80000000u;

  std::uint32_t reorder_window_;
  std::uint32_t expected_ = 0;
  bool initialized_ = false;
  std::uint64_t observed_ = 0;
  std::uint64_t lost_ = 0;  ///< net of recovered
  std::uint64_t gap_events_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t resets_ = 0;
};

/// Aggregate sequence accounting over every source a decoder has seen.
/// `lost` is in the protocol's native sequence unit: export packets for
/// NetFlow v9, flow records for v5 and IPFIX.
struct SequenceAccounting {
  std::uint64_t observed = 0;
  std::uint64_t lost = 0;
  std::uint64_t gap_events = 0;
  std::uint64_t reordered = 0;
  std::uint64_t resets = 0;

  void apply(const SequenceTracker::Event& ev, std::uint32_t units) noexcept {
    observed += units;
    lost += ev.lost;
    lost -= std::min(lost, ev.recovered);
    if (ev.lost > 0) ++gap_events;
    if (ev.reordered) ++reordered;
    if (ev.reset) ++resets;
  }

  friend bool operator==(const SequenceAccounting&,
                         const SequenceAccounting&) = default;
};

}  // namespace lockdown::flow
