#include "flow/template_fields.hpp"

namespace lockdown::flow {

TemplateRecord ipfix_v4_template() {
  return TemplateRecord{
      kTemplateIdV4,
      {
          {FieldId::kSourceIpv4Address, 4},
          {FieldId::kDestinationIpv4Address, 4},
          {FieldId::kSourceTransportPort, 2},
          {FieldId::kDestinationTransportPort, 2},
          {FieldId::kProtocolIdentifier, 1},
          {FieldId::kTcpControlBits, 1},
          {FieldId::kIngressInterface, 2},
          {FieldId::kEgressInterface, 2},
          {FieldId::kOctetDeltaCount, 8},
          {FieldId::kPacketDeltaCount, 8},
          {FieldId::kFlowStartSeconds, 4},
          {FieldId::kFlowEndSeconds, 4},
          {FieldId::kBgpSourceAsNumber, 4},
          {FieldId::kBgpDestinationAsNumber, 4},
      }};
}

TemplateRecord ipfix_v6_template() {
  return TemplateRecord{
      kTemplateIdV6,
      {
          {FieldId::kSourceIpv6Address, 16},
          {FieldId::kDestinationIpv6Address, 16},
          {FieldId::kSourceTransportPort, 2},
          {FieldId::kDestinationTransportPort, 2},
          {FieldId::kProtocolIdentifier, 1},
          {FieldId::kTcpControlBits, 1},
          {FieldId::kIngressInterface, 2},
          {FieldId::kEgressInterface, 2},
          {FieldId::kOctetDeltaCount, 8},
          {FieldId::kPacketDeltaCount, 8},
          {FieldId::kFlowStartSeconds, 4},
          {FieldId::kFlowEndSeconds, 4},
          {FieldId::kBgpSourceAsNumber, 4},
          {FieldId::kBgpDestinationAsNumber, 4},
      }};
}

TemplateRecord netflow_v9_v4_template() {
  return TemplateRecord{
      kTemplateIdV4,
      {
          {FieldId::kSourceIpv4Address, 4},
          {FieldId::kDestinationIpv4Address, 4},
          {FieldId::kSourceTransportPort, 2},
          {FieldId::kDestinationTransportPort, 2},
          {FieldId::kProtocolIdentifier, 1},
          {FieldId::kTcpControlBits, 1},
          {FieldId::kIngressInterface, 2},
          {FieldId::kEgressInterface, 2},
          {FieldId::kOctetDeltaCount, 4},
          {FieldId::kPacketDeltaCount, 4},
          {FieldId::kFirstSwitched, 4},
          {FieldId::kLastSwitched, 4},
          {FieldId::kBgpSourceAsNumber, 4},
          {FieldId::kBgpDestinationAsNumber, 4},
      }};
}

}  // namespace lockdown::flow
