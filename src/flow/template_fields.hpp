// Information-element registry shared by the NetFlow v9 and IPFIX codecs.
// NetFlow v9 field types and IANA IPFIX information elements use the same
// numbering for the subset we need, so one registry serves both codecs;
// only the timestamp semantics differ (v9: sysUptime-relative, IPFIX:
// absolute seconds) and are handled by the respective codec.
#pragma once

#include <cstdint>
#include <vector>

namespace lockdown::flow {

/// IANA IPFIX information element identifiers (== NetFlow v9 field types).
enum class FieldId : std::uint16_t {
  kOctetDeltaCount = 1,
  kPacketDeltaCount = 2,
  kProtocolIdentifier = 4,
  kTcpControlBits = 6,
  kSourceTransportPort = 7,
  kSourceIpv4Address = 8,
  kIngressInterface = 10,
  kDestinationTransportPort = 11,
  kDestinationIpv4Address = 12,
  kEgressInterface = 14,
  kBgpSourceAsNumber = 16,
  kBgpDestinationAsNumber = 17,
  kLastSwitched = 21,    // v9: sysUptime ms of flow end
  kFirstSwitched = 22,   // v9: sysUptime ms of flow start
  kSourceIpv6Address = 27,
  kDestinationIpv6Address = 28,
  kFlowStartSeconds = 150,  // IPFIX: absolute Unix seconds
  kFlowEndSeconds = 151,
};

struct FieldSpec {
  FieldId id;
  std::uint16_t length;
};

/// A (NetFlow v9 / IPFIX) template: an id plus an ordered field list.
struct TemplateRecord {
  std::uint16_t template_id = 0;
  std::vector<FieldSpec> fields;

  [[nodiscard]] std::size_t record_length() const noexcept {
    std::size_t n = 0;
    for (const FieldSpec& f : fields) n += f.length;
    return n;
  }
};

/// Template ids used by our exporters. Values >= 256 as required by both
/// specs (ids < 256 are reserved for set/flowset headers).
inline constexpr std::uint16_t kTemplateIdV4 = 256;
inline constexpr std::uint16_t kTemplateIdV6 = 257;

/// The standard v4 flow template used by our IPFIX exporters.
[[nodiscard]] TemplateRecord ipfix_v4_template();
/// The standard v6 flow template used by our IPFIX exporters.
[[nodiscard]] TemplateRecord ipfix_v6_template();
/// The v4 flow template used by our NetFlow v9 exporters (sysUptime stamps).
[[nodiscard]] TemplateRecord netflow_v9_v4_template();

}  // namespace lockdown::flow
