#include "flow/trace_file.hpp"

#include <cstdio>
#include <memory>

#include "flow/wire.hpp"

namespace lockdown::flow {

namespace {

// Record tags.
constexpr std::uint8_t kTagV4 = 4;
constexpr std::uint8_t kTagV6 = 6;

void write_record(WireWriter& w, const FlowRecord& r) {
  const bool v6 = r.src_addr.is_v6() || r.dst_addr.is_v6();
  w.u8(v6 ? kTagV6 : kTagV4);
  if (v6) {
    // Mixed-family records are stored as v6 (v4 endpoints zero-extended --
    // they do not occur in practice; the synthesizer never mixes families).
    auto put = [&](const net::IpAddress& a) {
      if (a.is_v6()) {
        w.bytes(a.v6().bytes());
      } else {
        w.zeros(12);
        w.u32(a.v4().value());
      }
    };
    put(r.src_addr);
    put(r.dst_addr);
  } else {
    w.u32(r.src_addr.v4().value());
    w.u32(r.dst_addr.v4().value());
  }
  w.u16(r.src_port);
  w.u16(r.dst_port);
  w.u8(static_cast<std::uint8_t>(r.protocol));
  w.u8(r.tcp_flags);
  w.u64(r.bytes);
  w.u64(r.packets);
  w.u64(static_cast<std::uint64_t>(r.first.seconds()));
  w.u64(static_cast<std::uint64_t>(r.last.seconds()));
  w.u16(r.input_if);
  w.u16(r.output_if);
  w.u32(r.src_as.value());
  w.u32(r.dst_as.value());
}

bool read_record(WireReader& rd, FlowRecord& r) {
  const std::uint8_t tag = rd.u8();
  if (rd.failed()) return false;
  if (tag == kTagV6) {
    net::Ipv6Address::Bytes src{}, dst{};
    if (!rd.read_bytes(src) || !rd.read_bytes(dst)) return false;
    r.src_addr = net::Ipv6Address(src);
    r.dst_addr = net::Ipv6Address(dst);
  } else if (tag == kTagV4) {
    r.src_addr = net::Ipv4Address(rd.u32());
    r.dst_addr = net::Ipv4Address(rd.u32());
  } else {
    return false;  // unknown tag: treat as corruption
  }
  r.src_port = rd.u16();
  r.dst_port = rd.u16();
  r.protocol = static_cast<IpProtocol>(rd.u8());
  r.tcp_flags = rd.u8();
  r.bytes = rd.u64();
  r.packets = rd.u64();
  r.first = net::Timestamp(static_cast<std::int64_t>(rd.u64()));
  r.last = net::Timestamp(static_cast<std::int64_t>(rd.u64()));
  r.input_if = rd.u16();
  r.output_if = rd.u16();
  r.src_as = net::Asn(rd.u32());
  r.dst_as = net::Asn(rd.u32());
  return rd.ok();
}

}  // namespace

TraceWriter::TraceWriter() { start(); }

void TraceWriter::start() {
  buf_.clear();
  count_ = 0;
  WireWriter w;
  w.u32(kTraceMagic);
  w.u16(kTraceVersion);
  w.u16(0);  // flags
  w.u32(0);  // record-count hint, patched in finish()
  buf_ = w.take();
}

void TraceWriter::append(const FlowRecord& record) {
  WireWriter w;
  write_record(w, record);
  const auto& bytes = w.data();
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  ++count_;
}

void TraceWriter::append(std::span<const FlowRecord> records) {
  for (const FlowRecord& r : records) append(r);
}

std::vector<std::uint8_t> TraceWriter::finish() {
  // Patch the record-count hint (offset 8, big-endian u32).
  const auto n = static_cast<std::uint32_t>(count_);
  buf_[8] = static_cast<std::uint8_t>(n >> 24);
  buf_[9] = static_cast<std::uint8_t>(n >> 16);
  buf_[10] = static_cast<std::uint8_t>(n >> 8);
  buf_[11] = static_cast<std::uint8_t>(n);
  std::vector<std::uint8_t> out = std::move(buf_);
  start();
  return out;
}

bool TraceWriter::write_file(const std::string& path) {
  const auto image = finish();
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  return std::fwrite(image.data(), 1, image.size(), f.get()) == image.size();
}

std::optional<TraceReadResult> read_trace(std::span<const std::uint8_t> image) {
  WireReader rd(image);
  if (rd.u32() != kTraceMagic) return std::nullopt;
  if (rd.u16() != kTraceVersion) return std::nullopt;
  (void)rd.u16();  // flags
  const std::uint32_t hint = rd.u32();
  if (rd.failed()) return std::nullopt;

  TraceReadResult out;
  out.records.reserve(hint);
  while (rd.remaining() > 0) {
    FlowRecord r;
    if (!read_record(rd, r)) {
      out.truncated = true;
      break;
    }
    out.records.push_back(r);
  }
  return out;
}

std::optional<TraceReadResult> read_trace_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> image;
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f.get());
    image.insert(image.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  return read_trace(image);
}

}  // namespace lockdown::flow
