// Binary flow-trace persistence, in the spirit of nfcapd/nfdump capture
// files: collectors at the paper's vantage points spool decoded records to
// disk and the analysis jobs read them back later. The format is
// self-describing and versioned:
//
//   file   := header block*
//   header := magic "LDFT" u16 version u16 flags u32 record_count_hint
//   block  := u32 record_count, record_count * record
//   record := fixed 58-byte v4 layout or 82-byte v6 layout, tagged
//
// Records are written big-endian via the same WireWriter/WireReader used
// by the codecs; readers are bounds-checked and fail soft on truncation
// (everything decoded before the damage is returned).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flow/flow_record.hpp"

namespace lockdown::flow {

inline constexpr std::uint32_t kTraceMagic = 0x4c444654;  // "LDFT"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Serialize records into an in-memory trace image.
class TraceWriter {
 public:
  TraceWriter();

  void append(const FlowRecord& record);
  void append(std::span<const FlowRecord> records);

  [[nodiscard]] std::size_t records_written() const noexcept { return count_; }

  /// Finish the image (patches the header) and return the bytes. The
  /// writer is reusable afterwards (starts a new image).
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Convenience: write the finished image to a file. Returns false on I/O
  /// error.
  [[nodiscard]] bool write_file(const std::string& path);

 private:
  void start();
  std::vector<std::uint8_t> buf_;
  std::size_t count_ = 0;
};

struct TraceReadResult {
  std::vector<FlowRecord> records;
  bool truncated = false;  ///< input ended mid-record; prefix still returned
};

/// Parse a trace image; nullopt if the header is not a valid trace.
[[nodiscard]] std::optional<TraceReadResult> read_trace(
    std::span<const std::uint8_t> image);

/// Read a trace file from disk; nullopt on I/O error or bad header.
[[nodiscard]] std::optional<TraceReadResult> read_trace_file(
    const std::string& path);

}  // namespace lockdown::flow
