#include "flow/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

namespace lockdown::flow {

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

std::optional<UdpSocket> UdpSocket::bind_loopback(std::uint16_t port) {
  UdpSocket s;
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) return std::nullopt;

  // Non-blocking: collectors poll from one thread.
  const int flags = ::fcntl(s.fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return std::nullopt;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return std::nullopt;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return std::nullopt;
  }
  s.port_ = ntohs(bound.sin_port);
  return s;
}

bool UdpSocket::send_to(std::uint16_t dest_port,
                        std::span<const std::uint8_t> datagram) const {
  if (fd_ < 0) return false;
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(dest_port);
  const ssize_t sent =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  return sent == static_cast<ssize_t>(datagram.size());
}

std::optional<std::vector<std::uint8_t>> UdpSocket::receive() const {
  if (fd_ < 0) return std::nullopt;
  // NetFlow/IPFIX datagrams fit in one MTU-ish read; 64 KiB covers any UDP
  // payload.
  std::vector<std::uint8_t> buf(65536);
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr, nullptr);
  if (n < 0) return std::nullopt;  // EAGAIN: queue empty
  buf.resize(static_cast<std::size_t>(n));
  return buf;
}

std::optional<UdpExporterTransport> UdpExporterTransport::create(
    std::uint16_t collector_port) {
  auto socket = UdpSocket::bind_loopback(0);
  if (!socket) return std::nullopt;
  return UdpExporterTransport(std::move(*socket), collector_port);
}

void UdpExporterTransport::send(std::span<const std::uint8_t> packet) {
  if (socket_.send_to(collector_port_, packet)) {
    ++sent_;
  } else {
    ++dropped_;  // best-effort, like real NetFlow over UDP
  }
}

std::optional<UdpCollectorTransport> UdpCollectorTransport::create(
    std::uint16_t port) {
  auto socket = UdpSocket::bind_loopback(port);
  if (!socket) return std::nullopt;
  return UdpCollectorTransport(std::move(*socket));
}

std::size_t UdpCollectorTransport::drain(const Handler& handler) {
  std::size_t count = 0;
  while (auto datagram = socket_.receive()) {
    handler(*datagram);
    ++count;
  }
  return count;
}

}  // namespace lockdown::flow
