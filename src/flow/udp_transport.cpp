#include "flow/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lockdown::flow {

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)),
      rcvbuf_(std::exchange(other.rcvbuf_, 0)),
      kernel_drops_(std::exchange(other.kernel_drops_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    rcvbuf_ = std::exchange(other.rcvbuf_, 0);
    kernel_drops_ = std::exchange(other.kernel_drops_, 0);
  }
  return *this;
}

std::optional<UdpSocket> UdpSocket::bind_loopback(std::uint16_t port,
                                                  int rcvbuf_bytes) {
  UdpSocket s;
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) return std::nullopt;

  // Non-blocking: collectors poll from one thread.
  const int flags = ::fcntl(s.fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return std::nullopt;
  }

  if (rcvbuf_bytes > 0 &&
      ::setsockopt(s.fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes)) < 0) {
    return std::nullopt;
  }
  socklen_t rcvbuf_len = sizeof(s.rcvbuf_);
  (void)::getsockopt(s.fd_, SOL_SOCKET, SO_RCVBUF, &s.rcvbuf_, &rcvbuf_len);

#ifdef SO_RXQ_OVFL
  // Ask the kernel to report receive-queue overflows as ancillary data so
  // collector-side losses are observable, not silent.
  const int one = 1;
  (void)::setsockopt(s.fd_, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return std::nullopt;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return std::nullopt;
  }
  s.port_ = ntohs(bound.sin_port);
  return s;
}

bool UdpSocket::send_to(std::uint16_t dest_port,
                        std::span<const std::uint8_t> datagram) const {
  if (fd_ < 0) return false;
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(dest_port);
  const ssize_t sent =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  return sent == static_cast<ssize_t>(datagram.size());
}

std::optional<std::size_t> UdpSocket::receive_into(
    std::span<std::uint8_t> buffer) const {
  if (fd_ < 0 || buffer.empty()) return std::nullopt;
  iovec iov{buffer.data(), buffer.size()};
  alignas(cmsghdr) std::uint8_t control[CMSG_SPACE(sizeof(std::uint32_t))];
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  const ssize_t n = ::recvmsg(fd_, &msg, 0);
  if (n < 0) return std::nullopt;  // EAGAIN: queue empty
#ifdef SO_RXQ_OVFL
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr; c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
      std::uint32_t dropped = 0;
      std::memcpy(&dropped, CMSG_DATA(c), sizeof(dropped));
      kernel_drops_ = dropped;  // cumulative since the socket was created
    }
  }
#endif
  return static_cast<std::size_t>(n);
}

std::optional<std::vector<std::uint8_t>> UdpSocket::receive() const {
  // NetFlow/IPFIX datagrams fit in one MTU-ish read; 64 KiB covers any UDP
  // payload.
  std::vector<std::uint8_t> buf(65536);
  const std::optional<std::size_t> n = receive_into(buf);
  if (!n) return std::nullopt;
  buf.resize(*n);
  return buf;
}

std::optional<UdpExporterTransport> UdpExporterTransport::create(
    std::uint16_t collector_port) {
  auto socket = UdpSocket::bind_loopback(0);
  if (!socket) return std::nullopt;
  return UdpExporterTransport(std::move(*socket), collector_port);
}

void UdpExporterTransport::send(std::span<const std::uint8_t> packet) {
  if (socket_.send_to(collector_port_, packet)) {
    ++sent_;
  } else {
    ++dropped_;  // best-effort, like real NetFlow over UDP
  }
}

std::optional<UdpCollectorTransport> UdpCollectorTransport::create(
    std::uint16_t port, int rcvbuf_bytes) {
  auto socket = UdpSocket::bind_loopback(port, rcvbuf_bytes);
  if (!socket) return std::nullopt;
  return UdpCollectorTransport(std::move(*socket));
}

std::size_t UdpCollectorTransport::drain(const Handler& handler) {
  static const std::uint32_t span_id =
      obs::Tracer::instance().intern("wire", "wire.drain");
  const std::uint64_t t0 = obs::trace_now_ns();
  std::size_t count = 0;
  if (scratch_.empty()) scratch_.resize(65536);
  while (const auto n = socket_.receive_into(scratch_)) {
    handler(std::span<const std::uint8_t>(scratch_.data(), *n));
    ++count;
  }
  // An empty drain is an idle poll; spamming those would wrap the ring and
  // bury real work, so only batches that moved datagrams get a span.
  if (count > 0) {
    obs::Tracer::instance().emit(span_id, t0, obs::trace_now_ns(), count);
  }
  return count;
}

void publish_udp_stats(obs::Registry& registry,
                       const UdpCollectorTransport& transport) {
  registry
      .gauge("collector_udp_kernel_drops", {},
             "Datagrams dropped by the kernel receive queue (SO_RXQ_OVFL)")
      .set(static_cast<double>(transport.kernel_drops()));
  registry
      .gauge("collector_udp_rcvbuf_bytes", {},
             "Granted SO_RCVBUF size of the collector socket")
      .set(static_cast<double>(transport.rcvbuf_bytes()));
}

}  // namespace lockdown::flow
