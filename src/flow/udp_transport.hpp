// Loopback UDP transport for exporter -> collector datagrams: the actual
// on-the-wire path of every NetFlow/IPFIX deployment. The rest of this
// repository uses the in-memory ExportPump for speed; this transport backs
// the integration tests and examples that exercise real sockets, and is
// what a production deployment of this collector would bind.
//
// Design notes (POSIX, IPv4 loopback):
//  * RAII socket ownership; sockets are created non-blocking so a
//    collector can be polled from a single thread without hanging;
//  * send is best-effort like real NetFlow (UDP: no retransmission);
//    ENOBUFS/EAGAIN surface as counted drops, not exceptions;
//  * receive drains everything currently queued and hands each datagram to
//    the caller, preserving datagram boundaries (one recvfrom per packet).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace lockdown::obs {
class Registry;
}

namespace lockdown::flow {

/// RAII wrapper around a bound UDP socket.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Bind a non-blocking UDP socket on 127.0.0.1. Port 0 lets the kernel
  /// choose; the chosen port is then available via port(). nullopt on error.
  ///
  /// `rcvbuf_bytes` requests an explicit SO_RCVBUF (0 = kernel default); a
  /// flow collector that cannot keep up first loses datagrams in this
  /// buffer, so sizing it -- and watching the drop counter below -- is part
  /// of deploying one. The kernel may round the request (Linux doubles it);
  /// the granted size is available via rcvbuf_bytes().
  [[nodiscard]] static std::optional<UdpSocket> bind_loopback(std::uint16_t port = 0,
                                                              int rcvbuf_bytes = 0);

  /// The locally bound port (0 if not bound).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// The receive buffer size the kernel actually granted at bind time.
  [[nodiscard]] int rcvbuf_bytes() const noexcept { return rcvbuf_; }

  /// Datagrams the kernel dropped on this socket's receive queue (buffer
  /// full), as reported by SO_RXQ_OVFL ancillary data: the receive-side
  /// counterpart of UdpExporterTransport::dropped(). The counter is
  /// cumulative and updates as queued datagrams are received, so it can lag
  /// a burst until the next successfully delivered datagram. Always 0 on
  /// platforms without SO_RXQ_OVFL.
  [[nodiscard]] std::uint64_t kernel_drops() const noexcept { return kernel_drops_; }

  /// Send one datagram to 127.0.0.1:dest_port. Returns false on any
  /// failure (caller counts it as a drop).
  [[nodiscard]] bool send_to(std::uint16_t dest_port,
                             std::span<const std::uint8_t> datagram) const;

  /// Receive one datagram into a caller-provided buffer (non-blocking):
  /// the allocation-free receive path. Returns the datagram's length
  /// (clamped to buffer.size(); longer datagrams are truncated, so size
  /// the buffer at 64 KiB to cover any UDP payload); nullopt when the
  /// queue is empty.
  [[nodiscard]] std::optional<std::size_t> receive_into(
      std::span<std::uint8_t> buffer) const;

  /// Receive one datagram if available (non-blocking); nullopt when the
  /// queue is empty. Allocates per datagram -- hot paths use
  /// receive_into() with a reused buffer instead.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive() const;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  int rcvbuf_ = 0;
  // Updated from SO_RXQ_OVFL ancillary data inside receive(), which stays
  // const for callers polling an otherwise-unchanged socket.
  mutable std::uint64_t kernel_drops_ = 0;
};

/// Counted best-effort sender for export packets.
class UdpExporterTransport {
 public:
  /// nullopt if no local socket could be created.
  [[nodiscard]] static std::optional<UdpExporterTransport> create(
      std::uint16_t collector_port);

  /// Send one packet; drops are counted, never thrown.
  void send(std::span<const std::uint8_t> packet);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  UdpExporterTransport(UdpSocket socket, std::uint16_t port)
      : socket_(std::move(socket)), collector_port_(port) {}
  UdpSocket socket_;
  std::uint16_t collector_port_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Collector-side receiver: drain whatever is queued into a handler.
class UdpCollectorTransport {
 public:
  using Handler = std::function<void(std::span<const std::uint8_t>)>;

  /// `rcvbuf_bytes` as in UdpSocket::bind_loopback (0 = kernel default).
  [[nodiscard]] static std::optional<UdpCollectorTransport> create(
      std::uint16_t port = 0, int rcvbuf_bytes = 0);

  [[nodiscard]] std::uint16_t port() const noexcept { return socket_.port(); }
  [[nodiscard]] int rcvbuf_bytes() const noexcept { return socket_.rcvbuf_bytes(); }

  /// Datagrams the kernel dropped before we could drain them (see
  /// UdpSocket::kernel_drops).
  [[nodiscard]] std::uint64_t kernel_drops() const noexcept {
    return socket_.kernel_drops();
  }

  /// Process every currently queued datagram; returns how many were seen.
  std::size_t drain(const Handler& handler);

 private:
  explicit UdpCollectorTransport(UdpSocket socket) : socket_(std::move(socket)) {}
  UdpSocket socket_;
  /// Reused across drain() calls so the steady state receives without
  /// touching the allocator (sized lazily to 64 KiB on first drain).
  std::vector<std::uint8_t> scratch_;
};

/// Publish the transport's socket-level stats as registry gauges
/// (`collector_udp_kernel_drops`, `collector_udp_rcvbuf_bytes`) so
/// kernel-side losses show up in /metrics, not just in the stats struct.
/// kernel_drops() is maintained by the draining thread, so call this from
/// that thread (e.g. at heartbeat cadence), not from a scrape handler.
void publish_udp_stats(obs::Registry& registry,
                       const UdpCollectorTransport& transport);

}  // namespace lockdown::flow
