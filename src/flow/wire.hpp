// Big-endian wire buffer reader/writer shared by the NetFlow and IPFIX
// codecs. The reader is bounds-checked and never throws on malformed input:
// reads past the end set a sticky error flag checked by callers, so the
// decoders are safe on truncated or hostile packets (decoders must never
// crash -- see DESIGN.md invariants).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace lockdown::flow {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrite a previously written big-endian u16 at `offset` (used to
  /// patch length fields once a set/packet is complete).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() noexcept {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  [[nodiscard]] std::uint64_t u64() noexcept {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }

  bool read_bytes(std::span<std::uint8_t> out) noexcept {
    if (!require(out.size())) return false;
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return true;
  }

  /// Consume `n` bytes and return them as a span (empty on shortage, with
  /// the sticky error flag set). Lets record-oriented callers bounds-check
  /// once per record and hand raw bytes to a compiled decode plan.
  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) noexcept {
    if (!require(n)) return {};
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  bool skip(std::size_t n) noexcept {
    if (!require(n)) return false;
    pos_ += n;
    return true;
  }

  /// A bounded sub-reader over the next `n` bytes (advances this reader).
  [[nodiscard]] WireReader sub(std::size_t n) noexcept {
    if (!require(n)) return WireReader({});
    WireReader r(data_.subspan(pos_, n));
    pos_ += n;
    return r;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  bool require(std::size_t n) noexcept {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace lockdown::flow
