// Autonomous-system number and organization metadata types used throughout
// the synthesizer and the analyses (hypergiant grouping, remote-work AS
// identification, EDU directionality).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace lockdown::net {

/// Strongly-typed AS number (32-bit per RFC 6793).
class Asn {
 public:
  constexpr Asn() noexcept = default;
  explicit constexpr Asn(std::uint32_t number) noexcept : number_(number) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return number_; }
  [[nodiscard]] std::string to_string() const { return "AS" + std::to_string(number_); }

  friend constexpr auto operator<=>(Asn, Asn) noexcept = default;

 private:
  std::uint32_t number_ = 0;
};

struct AsnHash {
  [[nodiscard]] constexpr std::size_t operator()(Asn a) const noexcept {
    return a.value() * 0x9e3779b97f4a7c15ULL;
  }
};

/// Coarse role of an AS in the Internet economy. Used by the synthesizer to
/// decide traffic direction and by the analyses only where the paper also
/// used out-of-band knowledge (e.g. the manually curated eyeball list in
/// §3.4 or the hypergiant list of Appendix A).
enum class AsRole : std::uint8_t {
  kHypergiant,       // Table 2 content/CDN/cloud giants
  kEyeballIsp,       // residential broadband providers
  kEnterprise,       // companies with their own AS (remote-work relevant)
  kCloudSaas,        // cloud-hosted products used for remote work
  kUniversity,       // members of the EDU metropolitan network
  kGamingProvider,   // multiplayer/cloud gaming
  kVodProvider,      // video-on-demand streaming
  kConferencing,     // web conferencing / telephony
  kSocialMedia,
  kMessaging,
  kCdn,
  kHosting,          // generic hosting (e.g. the unknown TCP/25461 sources)
  kEducationalNet,   // national research & education backbones
  kMobileOperator,
  kOther,
};

[[nodiscard]] constexpr const char* to_string(AsRole role) noexcept {
  switch (role) {
    case AsRole::kHypergiant: return "hypergiant";
    case AsRole::kEyeballIsp: return "eyeball-isp";
    case AsRole::kEnterprise: return "enterprise";
    case AsRole::kCloudSaas: return "cloud-saas";
    case AsRole::kUniversity: return "university";
    case AsRole::kGamingProvider: return "gaming";
    case AsRole::kVodProvider: return "vod";
    case AsRole::kConferencing: return "conferencing";
    case AsRole::kSocialMedia: return "social-media";
    case AsRole::kMessaging: return "messaging";
    case AsRole::kCdn: return "cdn";
    case AsRole::kHosting: return "hosting";
    case AsRole::kEducationalNet: return "edu-net";
    case AsRole::kMobileOperator: return "mobile";
    case AsRole::kOther: return "other";
  }
  return "unknown";
}

}  // namespace lockdown::net
