#include "net/civil_time.hpp"

#include <charconv>
#include <cstdio>

namespace lockdown::net {

namespace {

constexpr bool is_leap(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

constexpr unsigned days_in_month(int year, unsigned month) noexcept {
  constexpr unsigned kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return (month >= 1 && month <= 12) ? kDays[month - 1] : 0;
}

}  // namespace

std::optional<Date> Date::make(int year, unsigned month, unsigned day) noexcept {
  if (month < 1 || month > 12) return std::nullopt;
  if (day < 1 || day > days_in_month(year, month)) return std::nullopt;
  return Date(year, month, day);
}

std::optional<Date> Date::parse(std::string_view text) noexcept {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return std::nullopt;
  int y = 0;
  unsigned m = 0, d = 0;
  auto parse_uint = [](std::string_view s, auto& out) {
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };
  if (!parse_uint(text.substr(0, 4), y) || !parse_uint(text.substr(5, 2), m) ||
      !parse_uint(text.substr(8, 2), d)) {
    return std::nullopt;
  }
  return make(y, m, d);
}

std::string Date::to_string() const {
  char buf[16];
  const int n = std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year_, month_, day_);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string Timestamp::to_string() const {
  const Date d = date();
  const std::int64_t rem = ((seconds_ % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay;
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%s %02lld:%02lld:%02lld",
                              d.to_string().c_str(),
                              static_cast<long long>(rem / 3600),
                              static_cast<long long>((rem / 60) % 60),
                              static_cast<long long>(rem % 60));
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace lockdown::net
