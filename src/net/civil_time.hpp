// Civil-time utilities: proleptic Gregorian calendar <-> Unix time, weekday
// math, and the week-numbering conventions the paper uses. All timestamps in
// this project are UTC seconds since the Unix epoch; the vantage points'
// local-time diurnal shapes are handled by the synthesizer's profiles, not
// by timezone conversion.
//
// Calendar algorithms follow Howard Hinnant's "chrono-compatible low-level
// date algorithms" (public domain), which are exact for the proleptic
// Gregorian calendar.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lockdown::net {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

enum class Weekday : std::uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

[[nodiscard]] constexpr const char* to_string(Weekday d) noexcept {
  switch (d) {
    case Weekday::kMonday: return "Mon";
    case Weekday::kTuesday: return "Tue";
    case Weekday::kWednesday: return "Wed";
    case Weekday::kThursday: return "Thu";
    case Weekday::kFriday: return "Fri";
    case Weekday::kSaturday: return "Sat";
    case Weekday::kSunday: return "Sun";
  }
  return "???";
}

[[nodiscard]] constexpr bool is_weekend(Weekday d) noexcept {
  return d == Weekday::kSaturday || d == Weekday::kSunday;
}

/// A calendar date (UTC). Validity is checked by the factory.
class Date {
 public:
  constexpr Date() noexcept = default;
  constexpr Date(int year, unsigned month, unsigned day) noexcept
      : year_(year), month_(month), day_(day) {}

  [[nodiscard]] static std::optional<Date> make(int year, unsigned month,
                                                unsigned day) noexcept;
  /// Parse "YYYY-MM-DD".
  [[nodiscard]] static std::optional<Date> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr int year() const noexcept { return year_; }
  [[nodiscard]] constexpr unsigned month() const noexcept { return month_; }
  [[nodiscard]] constexpr unsigned day() const noexcept { return day_; }

  /// Days since 1970-01-01.
  [[nodiscard]] constexpr std::int64_t days_from_epoch() const noexcept {
    const int y = year_ - (month_ <= 2 ? 1 : 0);
    const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy =
        (153 * (month_ + (month_ > 2 ? -3 : 9)) + 2) / 5 + day_ - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
  }

  [[nodiscard]] static constexpr Date from_days(std::int64_t days) noexcept {
    days += 719468;
    const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(days - era * 146097);
    const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    return Date(static_cast<int>(y + (m <= 2 ? 1 : 0)), m, d);
  }

  [[nodiscard]] constexpr Weekday weekday() const noexcept {
    // 1970-01-01 was a Thursday.
    const std::int64_t days = days_from_epoch();
    return static_cast<Weekday>(((days % 7) + 7 + 3) % 7);
  }

  [[nodiscard]] constexpr bool is_weekend_day() const noexcept {
    return is_weekend(weekday());
  }

  /// Day of year, 1-based (Jan 1 -> 1).
  [[nodiscard]] constexpr unsigned day_of_year() const noexcept {
    return static_cast<unsigned>(days_from_epoch() -
                                 Date(year_, 1, 1).days_from_epoch()) + 1;
  }

  /// The paper's x-axis convention ("Calendar week (2020)"): Jan 1-7 is
  /// week 1, Jan 8-14 week 2, etc. The paper normalizes Fig 1 by week 3.
  [[nodiscard]] constexpr unsigned paper_week() const noexcept {
    return (day_of_year() - 1) / 7 + 1;
  }

  /// ISO-8601 week number (weeks start Monday; week 1 contains Jan 4).
  [[nodiscard]] constexpr unsigned iso_week() const noexcept {
    const std::int64_t days = days_from_epoch();
    // Thursday of this date's week determines the ISO year/week.
    const std::int64_t thursday =
        days - static_cast<std::int64_t>(weekday()) + 3;
    const Date th = from_days(thursday);
    const std::int64_t jan1 = Date(th.year(), 1, 1).days_from_epoch();
    return static_cast<unsigned>((thursday - jan1) / 7) + 1;
  }

  [[nodiscard]] constexpr Date plus_days(std::int64_t n) const noexcept {
    return from_days(days_from_epoch() + n);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Date&, const Date&) noexcept = default;

 private:
  int year_ = 1970;
  unsigned month_ = 1;
  unsigned day_ = 1;
};

/// UTC timestamp with second resolution.
class Timestamp {
 public:
  constexpr Timestamp() noexcept = default;
  explicit constexpr Timestamp(std::int64_t unix_seconds) noexcept
      : seconds_(unix_seconds) {}

  [[nodiscard]] static constexpr Timestamp from_date(Date d,
                                                     unsigned hour = 0,
                                                     unsigned minute = 0,
                                                     unsigned second = 0) noexcept {
    return Timestamp(d.days_from_epoch() * kSecondsPerDay +
                     static_cast<std::int64_t>(hour) * kSecondsPerHour +
                     static_cast<std::int64_t>(minute) * kSecondsPerMinute +
                     second);
  }

  [[nodiscard]] constexpr std::int64_t seconds() const noexcept { return seconds_; }

  [[nodiscard]] constexpr Date date() const noexcept {
    // Floor division handles pre-epoch timestamps correctly.
    std::int64_t days = seconds_ / kSecondsPerDay;
    if (seconds_ % kSecondsPerDay < 0) --days;
    return Date::from_days(days);
  }

  [[nodiscard]] constexpr unsigned hour_of_day() const noexcept {
    const std::int64_t rem = ((seconds_ % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay;
    return static_cast<unsigned>(rem / kSecondsPerHour);
  }

  [[nodiscard]] constexpr Weekday weekday() const noexcept {
    return date().weekday();
  }

  [[nodiscard]] constexpr Timestamp plus(std::int64_t s) const noexcept {
    return Timestamp(seconds_ + s);
  }

  /// Truncate to the start of the containing hour / day.
  [[nodiscard]] constexpr Timestamp floor_hour() const noexcept {
    std::int64_t s = seconds_ - (((seconds_ % kSecondsPerHour) + kSecondsPerHour) % kSecondsPerHour);
    return Timestamp(s);
  }
  [[nodiscard]] constexpr Timestamp floor_day() const noexcept {
    std::int64_t s = seconds_ - (((seconds_ % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay);
    return Timestamp(s);
  }

  /// "YYYY-MM-DD HH:MM:SS".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Timestamp, Timestamp) noexcept = default;

 private:
  std::int64_t seconds_ = 0;
};

/// Half-open time interval [begin, end).
struct TimeRange {
  Timestamp begin;
  Timestamp end;

  [[nodiscard]] constexpr bool contains(Timestamp t) const noexcept {
    return begin <= t && t < end;
  }
  [[nodiscard]] constexpr std::int64_t duration_seconds() const noexcept {
    return end.seconds() - begin.seconds();
  }
  [[nodiscard]] constexpr std::int64_t hours() const noexcept {
    return duration_seconds() / kSecondsPerHour;
  }

  /// Week starting at `first_day` 00:00 UTC, 7 days long.
  [[nodiscard]] static constexpr TimeRange week_of(Date first_day) noexcept {
    const Timestamp b = Timestamp::from_date(first_day);
    return TimeRange{b, b.plus(kSecondsPerWeek)};
  }
  [[nodiscard]] static constexpr TimeRange day_of(Date day) noexcept {
    const Timestamp b = Timestamp::from_date(day);
    return TimeRange{b, b.plus(kSecondsPerDay)};
  }
};

}  // namespace lockdown::net
