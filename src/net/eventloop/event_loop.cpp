#include "net/eventloop/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <utility>

namespace lockdown::net {

namespace {

/// Upper bound on one epoll_wait harvest. 64 matches the recvmmsg batch
/// geometry downstream: a wire loop rarely watches more fds than that.
constexpr int kMaxEvents = 64;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  if (!set_nonblocking(wake_read_) || !set_nonblocking(wake_write_)) {
    ::close(wake_read_);
    ::close(wake_write_);
    ::close(epoll_fd_);
    epoll_fd_ = wake_read_ = wake_write_ = -1;
    return;
  }
  // Level-triggered on purpose: a wakeup byte left undrained keeps the
  // loop returning until it is consumed, so stop() can never be missed.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev) != 0) {
    ::close(wake_read_);
    ::close(wake_write_);
    ::close(epoll_fd_);
    epoll_fd_ = wake_read_ = wake_write_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, Handler handler) {
  if (!valid() || fd < 0 || !handler) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  Entry& entry = fds_[fd];
  entry.handler = std::move(handler);
  entry.last_events = events;
  entry.queued = false;
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  if (!valid() || fds_.find(fd) == fds_.end()) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  if (!valid()) return;
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (fd == dispatching_fd_) {
    // Mid-dispatch self-removal: erasing now would destroy the
    // std::function currently executing. Detach from epoll (done above)
    // and let dispatch() erase after the handler returns.
    deferred_remove_ = true;
    return;
  }
  fds_.erase(it);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

void EventLoop::dispatch(int fd, std::uint32_t events) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;  // removed by an earlier handler this round
  it->second.last_events = events;
  dispatching_fd_ = fd;
  deferred_remove_ = false;
  const DrainResult result = it->second.handler(events);
  dispatching_fd_ = -1;
  if (deferred_remove_) {
    fds_.erase(fd);
    return;
  }
  // Look the entry up again: the handler may have rehashed the map by
  // add()ing new fds (the accept path does).
  const auto again = fds_.find(fd);
  if (again == fds_.end()) return;
  if (result == DrainResult::kMoreWork) {
    if (!again->second.queued) {
      again->second.queued = true;
      ready_.push_back(fd);
    }
  } else {
    again->second.queued = false;
  }
}

void EventLoop::run() {
  if (!valid()) return;
  std::array<epoll_event, kMaxEvents> events;
  std::chrono::milliseconds tick_budget{-1};  // block indefinitely
  if (tick_) tick_budget = tick_();
  while (!stopping_.load(std::memory_order_acquire)) {
    // Never block while budget-exhausted fds wait on the ready list; poll
    // for new events and go straight back to them.
    int timeout_ms = -1;
    if (!ready_.empty()) {
      timeout_ms = 0;
    } else if (tick_) {
      timeout_ms = tick_budget.count() < 0
                       ? -1
                       : static_cast<int>(tick_budget.count());
    }
    const auto t0 = std::chrono::steady_clock::now();
    const int n = ::epoll_wait(epoll_fd_, events.data(), kMaxEvents, timeout_ms);
    if (on_wait_ && !(timeout_ms == 0 && n <= 0)) {
      on_wait_(n > 0 ? static_cast<std::size_t>(n) : 0,
               std::chrono::steady_clock::now() - t0);
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_read_) {
        char drain[64];
        while (::read(wake_read_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      dispatch(fd, events[static_cast<std::size_t>(i)].events);
    }
    if (!ready_.empty()) {
      // Re-dispatch the budget-exhausted fds in arrival order; each gets
      // one more budget's worth before the next harvest of fresh events,
      // which is the round-robin that keeps one hot fd from starving the
      // rest.
      std::vector<int> round;
      round.swap(ready_);
      for (const int fd : round) {
        const auto it = fds_.find(fd);
        if (it == fds_.end()) continue;
        it->second.queued = false;
        dispatch(fd, it->second.last_events);
      }
    }
    if (tick_) tick_budget = tick_();
  }
}

}  // namespace lockdown::net
