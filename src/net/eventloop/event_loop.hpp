// Single-threaded epoll event loop: the dispatch core of the async network
// plane (DESIGN.md §14). One loop per wire thread owns a set of fds and
// drives their handlers from edge-triggered readiness.
//
// Edge-triggered with drain budgets. Every fd is armed EPOLLET, so the
// kernel reports a readiness *transition* once; the handler must consume
// until EAGAIN or it will never hear about that data again. A handler that
// stops early (to bound latency for its siblings) returns
// DrainResult::kMoreWork and the loop keeps it on an internal ready list,
// re-dispatching it every iteration -- without another epoll_ctl and
// without waiting for a new kernel event -- until it reports kDrained.
// That is how one hot exporter socket shares the thread with idle ones: a
// per-fd drain budget plus ready-list round-robin instead of starvation.
//
// Threading contract: add()/modify()/remove()/run() and every handler run
// on the loop thread (the thread calling run()). stop() is the only
// cross-thread entry point; it wakes the loop via a self-pipe. Handlers
// may remove (and close) their own fd mid-dispatch: removal is deferred
// until the handler returns, so the std::function being executed is never
// destroyed under itself.
//
// No dependency on the observability layer (le_obs links le_net, not the
// reverse): instrumentation hooks are plain std::functions -- set_on_wait
// reports every epoll_wait batch (ready-fd count + time blocked) and the
// integration layers (runtime::WirePlane, obs::HttpExposer) turn those
// into histograms and trace spans.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace lockdown::net {

class EventLoop {
 public:
  /// What a readiness dispatch accomplished: the fd was drained to EAGAIN
  /// (the edge-triggered contract is satisfied) or the handler stopped on
  /// its budget and must be re-dispatched before the loop may block again.
  enum class DrainResult { kDrained, kMoreWork };

  /// Invoked with the epoll event mask that made the fd ready (EPOLLIN and
  /// friends); re-dispatches off the ready list replay the last mask.
  using Handler = std::function<DrainResult(std::uint32_t events)>;

  /// Called after each epoll_wait: how many fds came back ready and how
  /// long the call blocked. Ready-list re-polls (timeout 0, nothing new)
  /// are not reported -- the series is "work per wakeup", not spin noise.
  using WaitObserver =
      std::function<void(std::size_t ready, std::chrono::nanoseconds waited)>;

  /// Runs once per loop iteration (after dispatch) and whenever the wait
  /// times out; returns how long the next epoll_wait may block. This is
  /// how owners schedule periodic work (spool polls, idle sweeps, trace
  /// deadlines) with their own precision.
  using TickFn = std::function<std::chrono::milliseconds()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/pipe creation failed at construction; a dead loop
  /// refuses add() and run() returns immediately.
  [[nodiscard]] bool valid() const noexcept { return epoll_fd_ >= 0; }

  /// Register `fd` with the given epoll event mask (caller includes
  /// EPOLLET; every user of this loop wants edges). The fd stays owned by
  /// the caller -- remove() detaches but never closes.
  bool add(int fd, std::uint32_t events, Handler handler);

  /// Re-arm an fd with a new mask (EPOLLIN <-> EPOLLOUT transitions of a
  /// connection state machine).
  bool modify(int fd, std::uint32_t events);

  /// Detach an fd. Safe from inside its own handler (deferred until the
  /// handler returns). The caller closes the fd itself.
  void remove(int fd);

  /// Dispatch until stop(). Returns immediately on a dead loop.
  void run();

  /// Thread-safe: request run() to return. Idempotent.
  void stop();

  void set_on_wait(WaitObserver observer) { on_wait_ = std::move(observer); }
  void set_tick(TickFn tick) { tick_ = std::move(tick); }

  /// Registered fds (excluding the internal wakeup pipe).
  [[nodiscard]] std::size_t watched() const noexcept { return fds_.size(); }

 private:
  struct Entry {
    Handler handler;
    std::uint32_t last_events = 0;  ///< mask replayed on ready-list dispatch
    bool queued = false;            ///< on ready_ (needs re-dispatch)
  };

  void dispatch(int fd, std::uint32_t events);

  int epoll_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::unordered_map<int, Entry> fds_;
  /// Budget-exhausted fds awaiting re-dispatch, round-robin order.
  std::vector<int> ready_;
  WaitObserver on_wait_;
  TickFn tick_;
  /// Written by stop() from any thread; checked each iteration.
  std::atomic<bool> stopping_{false};
  /// Set while a handler runs so remove() can defer destroying it.
  int dispatching_fd_ = -1;
  bool deferred_remove_ = false;
};

}  // namespace lockdown::net
