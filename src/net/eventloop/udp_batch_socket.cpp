#include "net/eventloop/udp_batch_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

// recvmmsg is a Linux syscall (glibc exposes it under _GNU_SOURCE, which
// libstdc++ builds define). Other POSIX platforms take the per-datagram
// fallback below; the rest of the plane is agnostic.
#if defined(__linux__)
#define LOCKDOWN_HAVE_RECVMMSG 1
#else
#define LOCKDOWN_HAVE_RECVMMSG 0
#endif

namespace lockdown::net {

namespace {

constexpr std::size_t kMaxBatch = 64;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

#ifdef SO_RXQ_OVFL
/// Fold one message's SO_RXQ_OVFL ancillary datum into the cumulative drop
/// counter. The kernel stamps each delivered skb with the socket's drop
/// count at enqueue time, so the running maximum is the honest cumulative
/// figure even when batches deliver out of stamp order. Single-writer:
/// relaxed load/store is a plain read-modify-write, not a CAS loop.
void note_rxq_ovfl(msghdr& msg, std::atomic<std::uint64_t>& drops) {
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
       c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
      std::uint32_t dropped = 0;
      std::memcpy(&dropped, CMSG_DATA(c), sizeof(dropped));
      if (dropped > drops.load(std::memory_order_relaxed)) {
        drops.store(dropped, std::memory_order_relaxed);
      }
    }
  }
}
#endif

}  // namespace

UdpBatchSocket::~UdpBatchSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpBatchSocket::UdpBatchSocket(UdpBatchSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      rcvbuf_(std::exchange(other.rcvbuf_, 0)),
      prefer_recvmmsg_(other.prefer_recvmmsg_),
      kernel_drops_(other.kernel_drops_.exchange(0)),
      syscalls_(other.syscalls_.exchange(0)),
      datagrams_(other.datagrams_.exchange(0)),
      truncated_(other.truncated_.exchange(0)) {}

UdpBatchSocket& UdpBatchSocket::operator=(UdpBatchSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    rcvbuf_ = std::exchange(other.rcvbuf_, 0);
    prefer_recvmmsg_ = other.prefer_recvmmsg_;
    kernel_drops_ = other.kernel_drops_.exchange(0);
    syscalls_ = other.syscalls_.exchange(0);
    datagrams_ = other.datagrams_.exchange(0);
    truncated_ = other.truncated_.exchange(0);
  }
  return *this;
}

bool UdpBatchSocket::reuseport_supported() {
#ifndef SO_REUSEPORT
  return false;
#else
  static const bool supported = [] {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    const int one = 1;
    const bool ok =
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0;
    ::close(fd);
    return ok;
  }();
  return supported;
#endif
}

bool UdpBatchSocket::batch_receive_supported() {
  return LOCKDOWN_HAVE_RECVMMSG != 0;
}

std::optional<UdpBatchSocket> UdpBatchSocket::bind_loopback(
    const UdpBatchSocketConfig& config) {
  UdpBatchSocket s;
  s.prefer_recvmmsg_ = config.prefer_recvmmsg;
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) return std::nullopt;
  if (!set_nonblocking(s.fd_)) return std::nullopt;

  if (config.reuseport) {
#ifdef SO_REUSEPORT
    const int one = 1;
    if (::setsockopt(s.fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      return std::nullopt;
    }
#else
    return std::nullopt;
#endif
  }

  if (config.rcvbuf_bytes > 0 &&
      ::setsockopt(s.fd_, SOL_SOCKET, SO_RCVBUF, &config.rcvbuf_bytes,
                   sizeof(config.rcvbuf_bytes)) < 0) {
    return std::nullopt;
  }
  socklen_t rcvbuf_len = sizeof(s.rcvbuf_);
  (void)::getsockopt(s.fd_, SOL_SOCKET, SO_RCVBUF, &s.rcvbuf_, &rcvbuf_len);

#ifdef SO_RXQ_OVFL
  const int one = 1;
  (void)::setsockopt(s.fd_, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.port);
  if (::bind(s.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return std::nullopt;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return std::nullopt;
  }
  s.port_ = ntohs(bound.sin_port);
  return s;
}

std::size_t UdpBatchSocket::receive_batch(
    std::span<std::vector<std::uint8_t>> buffers,
    std::span<std::uint32_t> lengths) {
  if (fd_ < 0) return 0;
  const std::size_t want =
      std::min({buffers.size(), lengths.size(), kMaxBatch});
  if (want == 0) return 0;
#if LOCKDOWN_HAVE_RECVMMSG
  if (prefer_recvmmsg_) return receive_batch_mmsg(buffers, lengths, want);
#endif
  return receive_batch_fallback(buffers, lengths, want);
}

#if LOCKDOWN_HAVE_RECVMMSG
std::size_t UdpBatchSocket::receive_batch_mmsg(
    std::span<std::vector<std::uint8_t>> buffers,
    std::span<std::uint32_t> lengths, std::size_t want) {
  std::array<mmsghdr, kMaxBatch> msgs{};
  std::array<iovec, kMaxBatch> iovs{};
  // Per-message ancillary space for the SO_RXQ_OVFL drop counter.
  std::array<std::array<std::uint8_t, CMSG_SPACE(sizeof(std::uint32_t))>,
             kMaxBatch>
      controls;
  for (std::size_t i = 0; i < want; ++i) {
    iovs[i].iov_base = buffers[i].data();
    iovs[i].iov_len = buffers[i].size();
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_control = controls[i].data();
    msgs[i].msg_hdr.msg_controllen = controls[i].size();
  }
  const int n =
      ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(want), 0, nullptr);
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  if (n <= 0) return 0;  // EAGAIN: empty queue
  for (int i = 0; i < n; ++i) {
    auto& m = msgs[static_cast<std::size_t>(i)];
    lengths[static_cast<std::size_t>(i)] = m.msg_len;
    if ((m.msg_hdr.msg_flags & MSG_TRUNC) != 0) {
      truncated_.fetch_add(1, std::memory_order_relaxed);
    }
#ifdef SO_RXQ_OVFL
    note_rxq_ovfl(m.msg_hdr, kernel_drops_);
#endif
  }
  datagrams_.fetch_add(static_cast<std::uint64_t>(n),
                       std::memory_order_relaxed);
  return static_cast<std::size_t>(n);
}
#else
std::size_t UdpBatchSocket::receive_batch_mmsg(
    std::span<std::vector<std::uint8_t>>, std::span<std::uint32_t>,
    std::size_t) {
  return 0;
}
#endif

std::size_t UdpBatchSocket::receive_batch_fallback(
    std::span<std::vector<std::uint8_t>> buffers,
    std::span<std::uint32_t> lengths, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    iovec iov{buffers[got].data(), buffers[got].size()};
    alignas(cmsghdr) std::uint8_t control[CMSG_SPACE(sizeof(std::uint32_t))];
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) break;  // EAGAIN: queue empty
    lengths[got] = static_cast<std::uint32_t>(n);
    if ((msg.msg_flags & MSG_TRUNC) != 0) {
      truncated_.fetch_add(1, std::memory_order_relaxed);
    }
#ifdef SO_RXQ_OVFL
    note_rxq_ovfl(msg, kernel_drops_);
#endif
    datagrams_.fetch_add(1, std::memory_order_relaxed);
    ++got;
  }
  return got;
}

}  // namespace lockdown::net
