// Batch UDP receive socket for the async network plane (DESIGN.md §14).
//
// Two kernel features carry the ingest scaling story:
//
//  * recvmmsg(2): up to 64 datagrams per syscall, received directly into
//    caller-provided (pooled) buffers -- no per-datagram allocation and a
//    ~64x cut in syscall count on a busy queue;
//  * SO_REUSEPORT: N sockets bound to the same port each own a kernel
//    receive queue; the kernel hashes the 4-tuple so one exporter's stream
//    lands on one queue, which is what lets N wire threads drain in
//    parallel without sharing a socket lock (and why per-socket arrival
//    order is a meaningful replay key: each source's datagrams stay in
//    order on its queue).
//
// Both are gated at compile time and probed at runtime;
// batch_receive_supported()/reuseport_supported() let callers degrade to a
// single classic socket (and tests mark themselves skipped) where the
// kernel lacks them. SO_RXQ_OVFL ancillary data is requested on every
// socket so receive-queue overflow is counted, matching flow::UdpSocket.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lockdown::net {

struct UdpBatchSocketConfig {
  /// Port on 127.0.0.1; 0 lets the kernel pick (see port()).
  std::uint16_t port = 0;
  /// Requested SO_RCVBUF (0 = kernel default); the grant is rcvbuf_bytes().
  int rcvbuf_bytes = 0;
  /// Bind with SO_REUSEPORT so sibling sockets can share the port. Binding
  /// fails (nullopt) when requested on a platform without it.
  bool reuseport = false;
  /// When false, receive_batch() uses the one-recvmsg-per-datagram
  /// fallback even where recvmmsg exists -- the knob the equivalence tests
  /// and benches use to isolate the batching win.
  bool prefer_recvmmsg = true;
};

/// A bound, non-blocking UDP socket with batch receive. One owner thread
/// calls receive_batch(); the counters are single-writer relaxed atomics,
/// so any thread may read them live (a heartbeat publishing
/// wire-plane gauges while the lane threads drain) and see a recent,
/// internally consistent-enough value without a data race.
class UdpBatchSocket {
 public:
  UdpBatchSocket() = default;
  ~UdpBatchSocket();
  UdpBatchSocket(UdpBatchSocket&& other) noexcept;
  UdpBatchSocket& operator=(UdpBatchSocket&& other) noexcept;
  UdpBatchSocket(const UdpBatchSocket&) = delete;
  UdpBatchSocket& operator=(const UdpBatchSocket&) = delete;

  [[nodiscard]] static std::optional<UdpBatchSocket> bind_loopback(
      const UdpBatchSocketConfig& config);

  /// Whether this platform can bind SO_REUSEPORT siblings (probed once).
  [[nodiscard]] static bool reuseport_supported();
  /// Whether receive_batch() can use recvmmsg here (compile-time gate).
  [[nodiscard]] static bool batch_receive_supported();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int rcvbuf_bytes() const noexcept { return rcvbuf_; }

  /// Receive up to min(buffers.size(), lengths.size(), 64) datagrams in
  /// one syscall (recvmmsg where available). buffers[i] must be non-empty;
  /// datagram i lands in buffers[i].data() and lengths[i] gets its byte
  /// count. A datagram longer than its buffer is truncated (and counted).
  /// Returns the number received; 0 means the queue is empty.
  std::size_t receive_batch(std::span<std::vector<std::uint8_t>> buffers,
                            std::span<std::uint32_t> lengths);

  /// Cumulative kernel receive-queue overflow count (SO_RXQ_OVFL). Updates
  /// as queued datagrams are delivered, so it can lag a burst until the
  /// next successful receive (send a sentinel datagram to observe the
  /// final figure -- the overflow tests do).
  [[nodiscard]] std::uint64_t kernel_drops() const noexcept {
    return kernel_drops_.load(std::memory_order_relaxed);
  }
  /// Receive syscalls issued and datagrams delivered: the batching win is
  /// their ratio.
  [[nodiscard]] std::uint64_t syscalls() const noexcept {
    return syscalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t datagrams() const noexcept {
    return datagrams_.load(std::memory_order_relaxed);
  }
  /// Datagrams that arrived longer than their receive buffer.
  [[nodiscard]] std::uint64_t truncated() const noexcept {
    return truncated_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t receive_batch_mmsg(std::span<std::vector<std::uint8_t>> buffers,
                                 std::span<std::uint32_t> lengths,
                                 std::size_t want);
  std::size_t receive_batch_fallback(
      std::span<std::vector<std::uint8_t>> buffers,
      std::span<std::uint32_t> lengths, std::size_t want);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  int rcvbuf_ = 0;
  bool prefer_recvmmsg_ = true;
  // Single-writer (the receive_batch caller); relaxed atomics so live
  // readers on other threads stay race-free. Move leaves the source
  // zeroed, matching the fd transfer.
  std::atomic<std::uint64_t> kernel_drops_{0};
  std::atomic<std::uint64_t> syscalls_{0};
  std::atomic<std::uint64_t> datagrams_{0};
  std::atomic<std::uint64_t> truncated_{0};
};

}  // namespace lockdown::net
