#include "net/ip.hpp"

#include <charconv>
#include <cstdio>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lockdown::net {

namespace {

/// Parse a decimal octet [0,255] with no leading '+', at most 3 digits.
std::optional<std::uint8_t> parse_octet(std::string_view s) {
  if (s.empty() || s.size() > 3) return std::nullopt;
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value > 255) {
    return std::nullopt;
  }
  return static_cast<std::uint8_t>(value);
}

/// Parse a hex group [0,0xffff].
std::optional<std::uint16_t> parse_hex_group(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value > 0xffff) {
    return std::nullopt;
  }
  return static_cast<std::uint16_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    const auto octet = parse_octet(part);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  const int n = std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24,
                              (value_ >> 16) & 0xff, (value_ >> 8) & 0xff,
                              value_ & 0xff);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Handle "::" compression by splitting into the left and right halves.
  const std::size_t dcolon = text.find("::");
  std::vector<std::uint16_t> left;
  std::vector<std::uint16_t> right;

  auto parse_groups = [](std::string_view s,
                         std::vector<std::uint16_t>& out) -> bool {
    if (s.empty()) return true;
    for (const auto part : util::split(s, ':')) {
      const auto group = parse_hex_group(part);
      if (!group) return false;
      out.push_back(*group);
    }
    return true;
  };

  if (dcolon == std::string_view::npos) {
    if (!parse_groups(text, left) || left.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", dcolon + 1) != std::string_view::npos) {
      return std::nullopt;  // at most one "::"
    }
    if (!parse_groups(text.substr(0, dcolon), left)) return std::nullopt;
    if (!parse_groups(text.substr(dcolon + 2), right)) return std::nullopt;
    if (left.size() + right.size() >= 8) return std::nullopt;
  }

  Bytes bytes{};
  for (std::size_t i = 0; i < left.size(); ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(left[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(left[i] & 0xff);
  }
  for (std::size_t i = 0; i < right.size(); ++i) {
    const std::size_t g = 8 - right.size() + i;
    bytes[2 * g] = static_cast<std::uint8_t>(right[i] >> 8);
    bytes[2 * g + 1] = static_cast<std::uint8_t>(right[i] & 0xff);
  }
  return Ipv6Address(bytes);
}

std::string Ipv6Address::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }

  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // "::" regardless of position; the preceding group did not append a
      // trailing colon, and the following group sees out.back() == ':' and
      // skips its separator.
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  return out;
}

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    if (const auto v6 = Ipv6Address::parse(text)) return IpAddress(*v6);
    return std::nullopt;
  }
  if (const auto v4 = Ipv4Address::parse(text)) return IpAddress(*v4);
  return std::nullopt;
}

std::string IpAddress::to_string() const {
  return is_v6_ ? v6_.to_string() : v4_.to_string();
}

std::size_t IpAddressHash::operator()(const IpAddress& a) const noexcept {
  if (a.is_v4()) {
    return static_cast<std::size_t>(util::splitmix64(a.v4().value()));
  }
  return static_cast<std::size_t>(
      util::hash_combine(util::splitmix64(a.v6().high()), a.v6().low()));
}

}  // namespace lockdown::net
