// IP address value types. IPv4 and IPv6 are distinct strong types unified by
// IpAddress (a variant-like tagged value). All byte order handling lives
// here: values are stored host-order (v4) / big-endian byte array (v6), and
// only the flow codecs convert to wire format.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lockdown::net {

/// IPv4 address stored as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Parse dotted-quad notation; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address stored as 16 bytes in network order.
class Ipv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Address() noexcept = default;
  explicit constexpr Ipv6Address(const Bytes& bytes) noexcept : bytes_(bytes) {}

  /// Construct from two 64-bit halves (host-order, high = first 8 bytes).
  static constexpr Ipv6Address from_halves(std::uint64_t high,
                                           std::uint64_t low) noexcept {
    Bytes b{};
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<std::uint8_t>(high >> (56 - 8 * i));
      b[8 + i] = static_cast<std::uint8_t>(low >> (56 - 8 * i));
    }
    return Ipv6Address(b);
  }

  [[nodiscard]] constexpr const Bytes& bytes() const noexcept { return bytes_; }
  [[nodiscard]] constexpr std::uint64_t high() const noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes_[i];
    return v;
  }
  [[nodiscard]] constexpr std::uint64_t low() const noexcept {
    std::uint64_t v = 0;
    for (int i = 8; i < 16; ++i) v = (v << 8) | bytes_[i];
    return v;
  }

  /// Parse RFC 4291 text form, including "::" compression; no zone IDs.
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);

  /// Canonical lowercase form with "::" compression of the longest zero run.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Address&, const Ipv6Address&) noexcept = default;

 private:
  Bytes bytes_{};
};

/// Tagged union of v4/v6. Comparison orders all v4 before all v6.
class IpAddress {
 public:
  constexpr IpAddress() noexcept : v4_(), is_v6_(false) {}
  constexpr IpAddress(Ipv4Address a) noexcept : v4_(a), is_v6_(false) {}  // NOLINT implicit
  constexpr IpAddress(Ipv6Address a) noexcept : v6_(a), is_v6_(true) {}   // NOLINT implicit

  [[nodiscard]] constexpr bool is_v4() const noexcept { return !is_v6_; }
  [[nodiscard]] constexpr bool is_v6() const noexcept { return is_v6_; }

  [[nodiscard]] constexpr Ipv4Address v4() const noexcept { return v4_; }
  [[nodiscard]] constexpr const Ipv6Address& v6() const noexcept { return v6_; }

  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const IpAddress& a, const IpAddress& b) noexcept {
    if (a.is_v6_ != b.is_v6_) return false;
    return a.is_v6_ ? a.v6_ == b.v6_ : a.v4_ == b.v4_;
  }
  friend constexpr std::strong_ordering operator<=>(const IpAddress& a,
                                                    const IpAddress& b) noexcept {
    if (a.is_v6_ != b.is_v6_) {
      return a.is_v6_ ? std::strong_ordering::greater : std::strong_ordering::less;
    }
    return a.is_v6_ ? a.v6_ <=> b.v6_ : a.v4_ <=> b.v4_;
  }

 private:
  union {
    Ipv4Address v4_;
    Ipv6Address v6_;
  };
  bool is_v6_;
};

/// Hash functor for IpAddress usable with unordered containers.
struct IpAddressHash {
  [[nodiscard]] std::size_t operator()(const IpAddress& a) const noexcept;
};

}  // namespace lockdown::net
