#include "net/prefix.hpp"

#include <charconv>

namespace lockdown::net {

namespace {

std::optional<std::uint8_t> parse_length(std::string_view s, unsigned max) {
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value > max) {
    return std::nullopt;
  }
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  const auto len = parse_length(text.substr(slash + 1), 32);
  if (!addr || !len) return std::nullopt;
  if ((addr->value() & ~mask(*len)) != 0) return std::nullopt;
  return Ipv4Prefix(*addr, *len);
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv6Address::parse(text.substr(0, slash));
  const auto len = parse_length(text.substr(slash + 1), 128);
  if (!addr || !len) return std::nullopt;
  if (!(apply_mask(*addr, *len) == *addr)) return std::nullopt;
  return Ipv6Prefix(*addr, *len);
}

std::string Ipv6Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace lockdown::net
