// CIDR prefixes over Ipv4Address / Ipv6Address with containment tests.
// Invariant: host bits below the prefix length are zero (enforced by the
// factory; the throwing constructor rejects unnormalized input).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "net/ip.hpp"

namespace lockdown::net {

/// IPv4 CIDR prefix, e.g. 192.0.2.0/24.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Throws std::invalid_argument if length > 32 or host bits are set.
  Ipv4Prefix(Ipv4Address network, std::uint8_t length)
      : network_(network), length_(length) {
    if (length > 32) throw std::invalid_argument("Ipv4Prefix: length > 32");
    if ((network.value() & ~mask(length)) != 0) {
      throw std::invalid_argument("Ipv4Prefix: host bits set in " +
                                  network.to_string() + "/" +
                                  std::to_string(length));
    }
  }

  /// Build from any address by masking off host bits.
  [[nodiscard]] static Ipv4Prefix containing(Ipv4Address addr,
                                             std::uint8_t length) {
    if (length > 32) throw std::invalid_argument("Ipv4Prefix: length > 32");
    return Ipv4Prefix(Ipv4Address(addr.value() & mask(length)), length);
  }

  /// Parse "a.b.c.d/len".
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address network() const noexcept { return network_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask(length_)) == network_.value();
  }
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// Number of addresses covered (2^(32-len)), as double to avoid overflow.
  [[nodiscard]] constexpr double size() const noexcept {
    return static_cast<double>(1ULL << (32 - length_));
  }

  /// The i-th address inside the prefix (i taken modulo prefix size).
  [[nodiscard]] constexpr Ipv4Address address_at(std::uint64_t i) const noexcept {
    const std::uint64_t span = 1ULL << (32 - length_);
    return Ipv4Address(network_.value() + static_cast<std::uint32_t>(i % span));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) noexcept = default;

 private:
  static constexpr std::uint32_t mask(std::uint8_t len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }
  Ipv4Address network_{};
  std::uint8_t length_ = 0;
};

/// IPv6 CIDR prefix.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() noexcept = default;

  Ipv6Prefix(Ipv6Address network, std::uint8_t length)
      : network_(network), length_(length) {
    if (length > 128) throw std::invalid_argument("Ipv6Prefix: length > 128");
    const Ipv6Address masked = apply_mask(network, length);
    if (!(masked == network)) {
      throw std::invalid_argument("Ipv6Prefix: host bits set");
    }
  }

  [[nodiscard]] static Ipv6Prefix containing(const Ipv6Address& addr,
                                             std::uint8_t length) {
    if (length > 128) throw std::invalid_argument("Ipv6Prefix: length > 128");
    return Ipv6Prefix(apply_mask(addr, length), length);
  }

  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr const Ipv6Address& network() const noexcept {
    return network_;
  }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }

  [[nodiscard]] bool contains(const Ipv6Address& addr) const noexcept {
    return apply_mask(addr, length_) == network_;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) noexcept = default;

 private:
  static constexpr Ipv6Address apply_mask(const Ipv6Address& addr,
                                          std::uint8_t len) noexcept {
    Ipv6Address::Bytes out = addr.bytes();
    for (std::size_t i = 0; i < 16; ++i) {
      const int bits = static_cast<int>(len) - static_cast<int>(8 * i);
      if (bits >= 8) continue;
      if (bits <= 0) {
        out[i] = 0;
      } else {
        out[i] &= static_cast<std::uint8_t>(0xff << (8 - bits));
      }
    }
    return Ipv6Address(out);
  }
  Ipv6Address network_{};
  std::uint8_t length_ = 0;
};

}  // namespace lockdown::net
