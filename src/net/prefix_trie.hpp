// Binary (uncompressed-path) trie for IPv4 longest-prefix match, mapping
// prefixes to an arbitrary value type (we map to Asn). This is the routing
// substrate the analyses use to resolve flow endpoints to origin ASes --
// the same lookup every flow pipeline in the paper performs against BGP
// snapshots.
//
// The trie stores one node per bit of each inserted prefix. At our scale
// (thousands of synthetic prefixes) this is compact and fast; lookups are
// O(32) worst case with zero allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/prefix.hpp"

namespace lockdown::net {

template <typename Value>
class Ipv4PrefixTrie {
 public:
  Ipv4PrefixTrie() { nodes_.emplace_back(); }

  /// Insert or overwrite the value for `prefix`. Returns true if a value
  /// was already present (and is now replaced).
  bool insert(const Ipv4Prefix& prefix, Value value) {
    std::size_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::size_t child = nodes_[node].child[bit];
      if (child == kNone) {
        child = nodes_.size();
        nodes_.emplace_back();  // may reallocate: re-index below, no refs held
        nodes_[node].child[bit] = child;
      }
      node = child;
    }
    const bool replaced = nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (!replaced) ++size_;
    return replaced;
  }

  /// Longest-prefix match; nullopt if no inserted prefix covers `addr`.
  [[nodiscard]] std::optional<Value> lookup(Ipv4Address addr) const {
    std::optional<Value> best;
    std::size_t node = 0;
    const std::uint32_t bits = addr.value();
    for (std::uint8_t depth = 0;; ++depth) {
      if (nodes_[node].value) best = nodes_[node].value;
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == kNone) break;
      node = child;
    }
    return best;
  }

  /// Exact-match lookup for a prefix (no covering search).
  [[nodiscard]] std::optional<Value> exact(const Ipv4Prefix& prefix) const {
    std::size_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == kNone) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  struct Node {
    std::size_t child[2] = {kNone, kNone};
    std::optional<Value> value;
  };
  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace lockdown::net
