#include "obs/build_info.hpp"

#include <chrono>
#include <cstdio>

#if defined(__unix__)
#include <unistd.h>
#endif

namespace lockdown::obs {

namespace {

#ifndef LOCKDOWN_VERSION
#define LOCKDOWN_VERSION "0.0.0"
#endif
#ifndef LOCKDOWN_GIT_SHA
#define LOCKDOWN_GIT_SHA "unknown"
#endif

std::string detect_compiler() {
#if defined(__clang__)
  return "clang-" + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc-" + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string detect_sanitizer() {
  std::string s;
#if defined(__SANITIZE_ADDRESS__)
  s += "asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  s += "asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  if (!s.empty()) s += ',';
  s += "tsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  if (!s.empty()) s += ',';
  s += "tsan";
#endif
#endif
  return s.empty() ? "none" : s;
}

double unix_now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Process start, captured at first use (static init order makes "first
// metric registration" close enough to exec for uptime purposes).
const double g_start_unix_s = unix_now_seconds();
const std::chrono::steady_clock::time_point g_start_steady =
    std::chrono::steady_clock::now();

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      LOCKDOWN_VERSION,
      LOCKDOWN_GIT_SHA,
      detect_compiler(),
      detect_sanitizer(),
  };
  return info;
}

std::uint64_t process_rss_bytes() {
#if defined(__unix__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

void register_build_info(Registry& registry) {
  const BuildInfo& info = build_info();
  std::string labels = "version=\"" + info.version + "\",git_sha=\"" +
                       info.git_sha + "\",compiler=\"" + info.compiler +
                       "\",sanitizer=\"" + info.sanitizer + "\"";
  registry
      .gauge("lockdown_build_info", labels,
             "Build identity; the payload is in the labels, value is 1")
      .set(1.0);
  registry
      .gauge("process_start_time_seconds", {},
             "Unix time the process started")
      .set(g_start_unix_s);
  refresh_process_gauges(registry);
}

void refresh_process_gauges(Registry& registry) {
  const double up = std::chrono::duration_cast<std::chrono::duration<double>>(
                        std::chrono::steady_clock::now() - g_start_steady)
                        .count();
  registry.gauge("process_uptime_seconds", {}, "Seconds since process start")
      .set(up);
  registry
      .gauge("process_resident_memory_bytes", {},
             "Resident set size in bytes")
      .set(static_cast<double>(process_rss_bytes()));
}

}  // namespace lockdown::obs
