// Identity gauges: which binary produced a series. /history makes metrics
// durable across time, so the registry must say what produced them --
// `lockdown_build_info{version,git_sha,compiler,sanitizer} 1` (the usual
// info-metric idiom: the payload lives in the labels), plus process
// start-time, uptime, and RSS gauges for correlating a series with
// restarts and memory pressure.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace lockdown::obs {

struct BuildInfo {
  std::string version;    ///< project version (CMake)
  std::string git_sha;    ///< short commit hash, "unknown" outside a checkout
  std::string compiler;   ///< e.g. "gcc-13.2.0"
  std::string sanitizer;  ///< "asan,ubsan", "tsan", or "none"
};

/// The values this binary was built with (compile definitions from
/// src/obs/CMakeLists.txt plus compiler/sanitizer detection).
[[nodiscard]] const BuildInfo& build_info();

/// Resident set size of the calling process in bytes (0 when the platform
/// offers no /proc/self/statm).
[[nodiscard]] std::uint64_t process_rss_bytes();

/// Register the identity series on `registry`:
///   lockdown_build_info{version=..,git_sha=..,compiler=..,sanitizer=..} 1
///   process_start_time_seconds  (unix epoch, set once)
///   process_uptime_seconds      (refreshed by refresh_process_gauges)
///   process_resident_memory_bytes
/// Returns after setting initial values; call refresh_process_gauges()
/// periodically (the recorder tick or a scrape hook) to keep uptime/RSS
/// current.
void register_build_info(Registry& registry);

/// Update process_uptime_seconds and process_resident_memory_bytes on
/// `registry` (no-op unless register_build_info ran on it first).
void refresh_process_gauges(Registry& registry);

}  // namespace lockdown::obs
