#include "obs/http_exposer.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/eventloop/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lockdown::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Connections accepted per listener dispatch before yielding the loop to
/// already-open connections (the listener's drain budget).
constexpr std::size_t kAcceptBudget = 16;

/// Idle-sweep / trace-deadline granularity of the loop tick.
constexpr std::chrono::milliseconds kTickInterval{100};

struct Response {
  int status = 200;
  std::string_view content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// The `ms` query parameter of a /trace target; `fallback` when absent or
/// unparsable.
std::uint64_t parse_ms_param(std::string_view target, std::uint64_t fallback) {
  const auto q = target.find('?');
  if (q == std::string_view::npos) return fallback;
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind("ms=", 0) != 0) continue;
    const std::string_view value = pair.substr(3);
    if (value.empty()) return fallback;
    std::uint64_t ms = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') return fallback;
      ms = ms * 10 + static_cast<std::uint64_t>(c - '0');
      if (ms > 1000000) return 1000000;
    }
    return ms;
  }
  return fallback;
}

/// One open connection's state machine: buffering the request head, then
/// draining the response (or parked on the trace capture session).
struct Conn {
  std::string in;            ///< request head, capped by max_request_bytes
  std::string out;           ///< rendered response
  std::size_t out_off = 0;   ///< bytes of `out` already sent
  bool responded = false;    ///< head parsed, response chosen
  bool waiting_trace = false;  ///< parked on the capture session
  Clock::time_point last_activity;
};

}  // namespace

struct HttpExposer::Impl {
  HttpExposer& owner;
  net::EventLoop loop;
  std::unordered_map<int, Conn> conns;
  Gauge* open_conns = nullptr;
  Histogram* wait_hist = nullptr;
  /// The shared /trace capture session: concurrent requests coalesce onto
  /// one window; the deadline stretches to the latest request's.
  bool trace_active = false;
  Clock::time_point trace_deadline{};
  std::vector<int> trace_waiters;
  bool ok = false;

  explicit Impl(HttpExposer& exposer) : owner(exposer) {
    if (!loop.valid()) return;
    if (owner.config_.registry != nullptr) {
      open_conns = &owner.config_.registry->gauge(
          "exposer_open_connections", {},
          "HTTP connections currently open on the exposer loop");
      wait_hist = &owner.config_.registry->histogram(
          "eventloop_wait_batch", exponential_buckets(1, 2, 7), "lane=\"http\"",
          "Ready fds returned per epoll_wait on the exposer loop");
    }
    loop.set_on_wait(
        [this](std::size_t ready, std::chrono::nanoseconds waited) {
          static const std::uint32_t wait_span =
              Tracer::instance().intern("eventloop", "loop.wait");
          if (wait_hist != nullptr) {
            wait_hist->observe(static_cast<double>(ready));
          }
          if (ready > 0) {
            const std::uint64_t t1 = trace_now_ns();
            const std::uint64_t dur = static_cast<std::uint64_t>(
                waited.count() < 0 ? 0 : waited.count());
            Tracer::instance().emit(wait_span, t1 - dur, t1, ready);
          }
        });
    loop.set_tick([this] { return tick(); });
    ok = loop.add(owner.listen_fd_, EPOLLIN | EPOLLET,
                  [this](std::uint32_t) { return on_accept(); });
  }

  [[nodiscard]] Tracer& tracer() const {
    return owner.config_.tracer != nullptr ? *owner.config_.tracer
                                           : Tracer::instance();
  }

  void publish_open_conns() {
    if (open_conns != nullptr) {
      open_conns->set(static_cast<double>(conns.size()));
    }
  }

  net::EventLoop::DrainResult on_accept() {
    for (std::size_t i = 0; i < kAcceptBudget; ++i) {
      const int fd = ::accept4(owner.listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return net::EventLoop::DrainResult::kDrained;
      owner.requests_.fetch_add(1, std::memory_order_relaxed);
      if (conns.size() >= owner.config_.max_connections) {
        // The cap bounds loop state against floods; the refusal is best
        // effort (a full send buffer just means the peer sees a reset).
        static constexpr std::string_view k503 =
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(fd, k503.data(), k503.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      if (!loop.add(fd, EPOLLIN | EPOLLET, [this, fd](std::uint32_t events) {
            return on_conn(fd, events);
          })) {
        ::close(fd);
        continue;
      }
      conns[fd].last_activity = Clock::now();
      publish_open_conns();
    }
    return net::EventLoop::DrainResult::kMoreWork;
  }

  net::EventLoop::DrainResult on_conn(int fd, std::uint32_t events) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return net::EventLoop::DrainResult::kDrained;
    Conn& conn = it->second;
    conn.last_activity = Clock::now();
    if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
        (events & (EPOLLIN | EPOLLOUT)) == 0) {
      close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
    if (!conn.out.empty()) {
      if (flush_out(fd, conn)) close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
    char buf[2048];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        // Post-request bytes (pipelining, trace waiters typing away) are
        // drained and ignored: one request per connection.
        if (conn.responded) continue;
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.find("\r\n\r\n") != std::string::npos) {
          route(fd, conn);
          return net::EventLoop::DrainResult::kDrained;
        }
        if (conn.in.size() >= owner.config_.max_request_bytes) {
          respond(fd, conn,
                  {400, "text/plain; charset=utf-8", "bad request\n"});
          return net::EventLoop::DrainResult::kDrained;
        }
        continue;
      }
      if (n == 0) {
        // EOF. A half-closed client that never finished its head still
        // gets the 400 (it may be reading); a parked trace waiter that
        // hung up is dropped from the session.
        if (conn.waiting_trace || conn.responded) {
          close_conn(fd);
        } else {
          respond(fd, conn, {400, "text/plain; charset=utf-8", "bad request\n"});
        }
        return net::EventLoop::DrainResult::kDrained;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return net::EventLoop::DrainResult::kDrained;
      }
      close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
  }

  /// Parse the buffered head and choose the response (or park the
  /// connection on the trace session). May close `fd`; the caller must
  /// not touch the Conn afterwards.
  void route(int fd, Conn& conn) {
    TRACE_SPAN("http", "http.request");
    const auto line_end = conn.in.find("\r\n");
    const std::string_view line =
        std::string_view(conn.in).substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
    Response resp;
    if (sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view path = target.substr(0, target.find('?'));
      if (path == "/metrics" && owner.config_.registry != nullptr) {
        if (owner.config_.before_scrape) owner.config_.before_scrape();
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = owner.config_.registry->expose_text();
      } else if (path == "/healthz") {
        if (owner.config_.before_scrape) owner.config_.before_scrape();
        resp.content_type = "application/json";
        resp.body = owner.config_.health ? owner.config_.health()
                                         : "{\"status\":\"ok\"}\n";
      } else if (path == "/trace") {
        auto window = std::chrono::milliseconds(parse_ms_param(target, 100));
        if (window < std::chrono::milliseconds(1)) {
          window = std::chrono::milliseconds(1);
        }
        if (window > owner.config_.max_trace_window) {
          window = owner.config_.max_trace_window;
        }
        const Clock::time_point deadline = Clock::now() + window;
        if (!trace_active) {
          // Starting gun: drop the backlog so the capture holds only
          // spans from the window.
          tracer().discard();
          trace_active = true;
          trace_deadline = deadline;
        } else if (deadline > trace_deadline) {
          trace_deadline = deadline;
        }
        conn.responded = true;
        conn.waiting_trace = true;
        trace_waiters.push_back(fd);
        return;
      } else {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      }
    }
    respond(fd, conn, resp);
  }

  /// Render the response and start draining it; closes the connection
  /// when it fits in the socket buffer (the common case), otherwise
  /// re-arms for EPOLLOUT.
  void respond(int fd, Conn& conn, const Response& resp) {
    conn.responded = true;
    conn.waiting_trace = false;
    conn.out.reserve(128 + resp.body.size());
    conn.out += "HTTP/1.1 ";
    conn.out += std::to_string(resp.status);
    conn.out += ' ';
    conn.out += reason_phrase(resp.status);
    conn.out += "\r\nContent-Type: ";
    conn.out += resp.content_type;
    conn.out += "\r\nContent-Length: ";
    conn.out += std::to_string(resp.body.size());
    conn.out += "\r\nConnection: close\r\n\r\n";
    conn.out += resp.body;
    conn.out_off = 0;
    if (flush_out(fd, conn)) {
      close_conn(fd);
      return;
    }
    loop.modify(fd, EPOLLOUT | EPOLLET);
  }

  /// Drain `out` until EAGAIN; true when the connection is finished (all
  /// sent, or the peer went away and there is nothing to salvage).
  bool flush_out(int fd, Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      return true;
    }
    return true;
  }

  void close_conn(int fd) {
    loop.remove(fd);
    ::close(fd);
    conns.erase(fd);
    if (!trace_waiters.empty()) {
      trace_waiters.erase(
          std::remove(trace_waiters.begin(), trace_waiters.end(), fd),
          trace_waiters.end());
    }
    publish_open_conns();
  }

  /// Periodic work: complete the trace session at its deadline, sweep
  /// idle connections, and pick the next epoll_wait budget.
  std::chrono::milliseconds tick() {
    const Clock::time_point now = Clock::now();
    if (trace_active && now >= trace_deadline) {
      trace_active = false;
      const std::string body = tracer().chrome_json();
      std::vector<int> waiters;
      waiters.swap(trace_waiters);
      for (const int fd : waiters) {
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        respond(fd, it->second, {200, "application/json", body});
      }
    }
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns) {
      if (conn.waiting_trace) continue;  // bounded by the trace deadline
      if (now - conn.last_activity > owner.config_.idle_timeout) {
        expired.push_back(fd);
      }
    }
    for (const int fd : expired) {
      if (!conns[fd].responded) {
        // Half-sent request: tell the slow client why, best effort.
        static constexpr std::string_view k408 =
            "HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(fd, k408.data(), k408.size(), MSG_NOSIGNAL);
      }
      close_conn(fd);
    }
    std::chrono::milliseconds next = kTickInterval;
    if (trace_active) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          trace_deadline - now);
      next = std::clamp(left, std::chrono::milliseconds(1), kTickInterval);
    }
    return next;
  }
};

std::unique_ptr<HttpExposer> HttpExposer::create(HttpExposerConfig config) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto exposer = std::unique_ptr<HttpExposer>(
      new HttpExposer(std::move(config), fd, ntohs(bound.sin_port)));
  if (!exposer->impl_->ok) return nullptr;
  return exposer;
}

HttpExposer::HttpExposer(HttpExposerConfig config, int listen_fd,
                         std::uint16_t port)
    : config_(std::move(config)),
      listen_fd_(listen_fd),
      port_(port),
      impl_(std::make_unique<Impl>(*this)) {
  if (!impl_->ok) return;
  thread_ = std::thread([this] {
    Tracer::instance().set_this_thread_name("http");
    impl_->loop.run();
  });
}

HttpExposer::~HttpExposer() { stop(); }

void HttpExposer::stop() {
  stopping_.store(true, std::memory_order_release);
  impl_->loop.stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone: tear down whatever connections remained.
  for (const auto& [fd, conn] : impl_->conns) ::close(fd);
  impl_->conns.clear();
  impl_->trace_waiters.clear();
  impl_->publish_open_conns();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace lockdown::obs
