#include "obs/http_exposer.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lockdown::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kAcceptPollMs = 100;   ///< stop() latency bound
constexpr int kClientPollMs = 2000;  ///< per-read patience with a slow client

struct Response {
  int status = 200;
  std::string_view content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to salvage
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// Read until the end of the request head ("\r\n\r\n"), a size cap, a
/// timeout, or EOF. Request bodies are ignored (every route is GET).
bool read_request_head(int fd, std::string& out) {
  char buf[2048];
  while (out.size() < kMaxRequestBytes) {
    if (out.find("\r\n\r\n") != std::string::npos) return true;
    pollfd p{fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, kClientPollMs);
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out.find("\r\n\r\n") != std::string::npos;
}

/// The `ms` query parameter of a /trace target; `fallback` when absent or
/// unparsable.
std::uint64_t parse_ms_param(std::string_view target, std::uint64_t fallback) {
  const auto q = target.find('?');
  if (q == std::string_view::npos) return fallback;
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind("ms=", 0) != 0) continue;
    const std::string_view value = pair.substr(3);
    if (value.empty()) return fallback;
    std::uint64_t ms = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') return fallback;
      ms = ms * 10 + static_cast<std::uint64_t>(c - '0');
      if (ms > 1000000) return 1000000;
    }
    return ms;
  }
  return fallback;
}

}  // namespace

std::unique_ptr<HttpExposer> HttpExposer::create(HttpExposerConfig config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<HttpExposer>(
      new HttpExposer(std::move(config), fd, ntohs(bound.sin_port)));
}

HttpExposer::HttpExposer(HttpExposerConfig config, int listen_fd,
                         std::uint16_t port)
    : config_(std::move(config)), listen_fd_(listen_fd), port_(port) {
  thread_ = std::thread([this] { serve(); });
}

HttpExposer::~HttpExposer() { stop(); }

void HttpExposer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExposer::serve() {
  Tracer::instance().set_this_thread_name("http");
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, kAcceptPollMs);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void HttpExposer::handle_connection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string head;
  Response resp;
  if (!read_request_head(fd, head)) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const auto line_end = head.find("\r\n");
    const std::string_view line = std::string_view(head).substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view path = target.substr(0, target.find('?'));
      if (path == "/metrics" && config_.registry != nullptr) {
        if (config_.before_scrape) config_.before_scrape();
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = config_.registry->expose_text();
      } else if (path == "/healthz") {
        if (config_.before_scrape) config_.before_scrape();
        resp.content_type = "application/json";
        resp.body = config_.health ? config_.health() : "{\"status\":\"ok\"}\n";
      } else if (path == "/trace") {
        Tracer& tracer = config_.tracer != nullptr ? *config_.tracer
                                                   : Tracer::instance();
        auto window = std::chrono::milliseconds(parse_ms_param(target, 100));
        if (window < std::chrono::milliseconds(1)) {
          window = std::chrono::milliseconds(1);
        }
        if (window > config_.max_trace_window) window = config_.max_trace_window;
        resp.content_type = "application/json";
        resp.body = tracer.capture_chrome_json(window);
      } else {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      }
    }
  }

  std::string out;
  out.reserve(128 + resp.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += reason_phrase(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += resp.body;
  send_all(fd, out);
}

}  // namespace lockdown::obs
