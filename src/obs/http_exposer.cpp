#include "obs/http_exposer.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <initializer_list>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/eventloop/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace lockdown::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Connections accepted per listener dispatch before yielding the loop to
/// already-open connections (the listener's drain budget).
constexpr std::size_t kAcceptBudget = 16;

/// Idle-sweep / trace-deadline granularity of the loop tick.
constexpr std::chrono::milliseconds kTickInterval{100};

struct Response {
  int status = 200;
  std::string_view content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// The raw (still percent-encoded) value of `key` in the target's query
/// string; nullopt when absent.
std::optional<std::string_view> query_param(std::string_view target,
                                            std::string_view key) {
  const auto q = target.find('?');
  if (q == std::string_view::npos) return std::nullopt;
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.size() <= key.size() || pair.substr(0, key.size()) != key ||
        pair[key.size()] != '=') {
      continue;
    }
    return pair.substr(key.size() + 1);
  }
  return std::nullopt;
}

/// %XX percent-decoding (plus '+' -> space) for query-param values, so a
/// /history series glob can carry braces, quotes, and commas.
std::string url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  const auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size() && hex(in[i + 1]) >= 0 &&
               hex(in[i + 2]) >= 0) {
      out += static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2]));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

/// Decimal query-param value clamped to [0, 1000000]; `fallback` when the
/// key is absent, empty, or non-numeric.
std::uint64_t parse_u64_param(std::string_view target, std::string_view key,
                              std::uint64_t fallback) {
  const auto raw = query_param(target, key);
  if (!raw || raw->empty()) return fallback;
  std::uint64_t v = 0;
  for (const char c : *raw) {
    if (c < '0' || c > '9') return fallback;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 1000000) return 1000000;
  }
  return v;
}

/// The `ms` query parameter of a /trace target; `fallback` when absent or
/// unparsable.
std::uint64_t parse_ms_param(std::string_view target, std::uint64_t fallback) {
  return parse_u64_param(target, "ms", fallback);
}

/// {"error":"...","active_x":A,"requested_x":B} -- the 409 body for a
/// conflicting capture request (x = the session's parameter names).
std::string conflict_body(std::string_view error,
                          std::initializer_list<
                              std::pair<std::string_view, std::uint64_t>>
                              fields) {
  std::string body = "{\"error\":\"";
  body += error;
  body += '"';
  for (const auto& [k, v] : fields) {
    body += ",\"";
    body += k;
    body += "\":";
    body += std::to_string(v);
  }
  body += "}\n";
  return body;
}

/// One open connection's state machine: buffering the request head, then
/// draining the response (or parked on the trace capture session).
struct Conn {
  std::string in;            ///< request head, capped by max_request_bytes
  std::string out;           ///< rendered response
  std::size_t out_off = 0;   ///< bytes of `out` already sent
  bool responded = false;    ///< head parsed, response chosen
  bool waiting_trace = false;    ///< parked on the trace capture session
  bool waiting_profile = false;  ///< parked on the profile capture session
  Clock::time_point last_activity;
};

}  // namespace

struct HttpExposer::Impl {
  HttpExposer& owner;
  net::EventLoop loop;
  std::unordered_map<int, Conn> conns;
  Gauge* open_conns = nullptr;
  Histogram* wait_hist = nullptr;
  /// The shared /trace capture session. The first requester fixes the
  /// window; equal ms joins, different ms is answered 409 (the coalescing
  /// rule in the header comment). Deadlines never stretch.
  bool trace_active = false;
  std::uint64_t trace_window_ms = 0;
  Clock::time_point trace_deadline{};
  std::vector<int> trace_waiters;
  /// The shared /profile capture session, same coalescing rule keyed on
  /// (seconds, hz). `profile_since` is the profiler's sample count at the
  /// starting gun, so the response holds only this window's samples.
  bool profile_active = false;
  std::uint64_t profile_seconds = 0;
  std::uint64_t profile_hz = 0;
  std::uint64_t profile_since = 0;
  Clock::time_point profile_deadline{};
  std::vector<int> profile_waiters;
  bool ok = false;

  explicit Impl(HttpExposer& exposer) : owner(exposer) {
    if (!loop.valid()) return;
    if (owner.config_.registry != nullptr) {
      open_conns = &owner.config_.registry->gauge(
          "exposer_open_connections", {},
          "HTTP connections currently open on the exposer loop");
      wait_hist = &owner.config_.registry->histogram(
          "eventloop_wait_batch", exponential_buckets(1, 2, 7), "lane=\"http\"",
          "Ready fds returned per epoll_wait on the exposer loop");
    }
    loop.set_on_wait(
        [this](std::size_t ready, std::chrono::nanoseconds waited) {
          static const std::uint32_t wait_span =
              Tracer::instance().intern("eventloop", "loop.wait");
          if (wait_hist != nullptr) {
            wait_hist->observe(static_cast<double>(ready));
          }
          if (ready > 0) {
            const std::uint64_t t1 = trace_now_ns();
            const std::uint64_t dur = static_cast<std::uint64_t>(
                waited.count() < 0 ? 0 : waited.count());
            Tracer::instance().emit(wait_span, t1 - dur, t1, ready);
          }
        });
    loop.set_tick([this] { return tick(); });
    ok = loop.add(owner.listen_fd_, EPOLLIN | EPOLLET,
                  [this](std::uint32_t) { return on_accept(); });
  }

  [[nodiscard]] Tracer& tracer() const {
    return owner.config_.tracer != nullptr ? *owner.config_.tracer
                                           : Tracer::instance();
  }

  void publish_open_conns() {
    if (open_conns != nullptr) {
      open_conns->set(static_cast<double>(conns.size()));
    }
  }

  net::EventLoop::DrainResult on_accept() {
    for (std::size_t i = 0; i < kAcceptBudget; ++i) {
      const int fd = ::accept4(owner.listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return net::EventLoop::DrainResult::kDrained;
      owner.requests_.fetch_add(1, std::memory_order_relaxed);
      if (conns.size() >= owner.config_.max_connections) {
        // The cap bounds loop state against floods; the refusal is best
        // effort (a full send buffer just means the peer sees a reset).
        static constexpr std::string_view k503 =
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(fd, k503.data(), k503.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      if (!loop.add(fd, EPOLLIN | EPOLLET, [this, fd](std::uint32_t events) {
            return on_conn(fd, events);
          })) {
        ::close(fd);
        continue;
      }
      conns[fd].last_activity = Clock::now();
      publish_open_conns();
    }
    return net::EventLoop::DrainResult::kMoreWork;
  }

  net::EventLoop::DrainResult on_conn(int fd, std::uint32_t events) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return net::EventLoop::DrainResult::kDrained;
    Conn& conn = it->second;
    conn.last_activity = Clock::now();
    if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
        (events & (EPOLLIN | EPOLLOUT)) == 0) {
      close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
    if (!conn.out.empty()) {
      if (flush_out(fd, conn)) close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
    char buf[2048];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        // Post-request bytes (pipelining, trace waiters typing away) are
        // drained and ignored: one request per connection.
        if (conn.responded) continue;
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.find("\r\n\r\n") != std::string::npos) {
          route(fd, conn);
          return net::EventLoop::DrainResult::kDrained;
        }
        if (conn.in.size() >= owner.config_.max_request_bytes) {
          respond(fd, conn,
                  {400, "text/plain; charset=utf-8", "bad request\n"});
          return net::EventLoop::DrainResult::kDrained;
        }
        continue;
      }
      if (n == 0) {
        // EOF. A half-closed client that never finished its head still
        // gets the 400 (it may be reading); a parked capture waiter that
        // hung up is dropped from its session.
        if (conn.waiting_trace || conn.waiting_profile || conn.responded) {
          close_conn(fd);
        } else {
          respond(fd, conn, {400, "text/plain; charset=utf-8", "bad request\n"});
        }
        return net::EventLoop::DrainResult::kDrained;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return net::EventLoop::DrainResult::kDrained;
      }
      close_conn(fd);
      return net::EventLoop::DrainResult::kDrained;
    }
  }

  /// Parse the buffered head and choose the response (or park the
  /// connection on the trace session). May close `fd`; the caller must
  /// not touch the Conn afterwards.
  void route(int fd, Conn& conn) {
    TRACE_SPAN("http", "http.request");
    const auto line_end = conn.in.find("\r\n");
    const std::string_view line =
        std::string_view(conn.in).substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
    Response resp;
    if (sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view path = target.substr(0, target.find('?'));
      if (path == "/metrics" && owner.config_.registry != nullptr) {
        if (owner.config_.before_scrape) owner.config_.before_scrape();
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = owner.config_.registry->expose_text();
      } else if (path == "/healthz") {
        if (owner.config_.before_scrape) owner.config_.before_scrape();
        resp.content_type = "application/json";
        resp.body = owner.config_.health ? owner.config_.health()
                                         : "{\"status\":\"ok\"}\n";
      } else if (path == "/trace") {
        auto window = std::chrono::milliseconds(parse_ms_param(target, 100));
        window = std::clamp(window, std::chrono::milliseconds(1),
                            owner.config_.max_trace_window);
        const auto ms = static_cast<std::uint64_t>(window.count());
        if (trace_active && ms != trace_window_ms) {
          // Conflicting parameters: the first requester fixed the window;
          // joining would silently hand this client the wrong capture.
          respond(fd, conn,
                  {409, "application/json",
                   conflict_body("trace capture already active",
                                 {{"active_ms", trace_window_ms},
                                  {"requested_ms", ms}})});
          return;
        }
        if (!trace_active) {
          // Starting gun: drop the backlog so the capture holds only
          // spans from the window.
          tracer().discard();
          trace_active = true;
          trace_window_ms = ms;
          trace_deadline = Clock::now() + window;
        }
        conn.responded = true;
        conn.waiting_trace = true;
        trace_waiters.push_back(fd);
        return;
      } else if (path == "/history" && owner.config_.recorder != nullptr) {
        const auto series = query_param(target, "series");
        const std::string glob =
            series ? url_decode(*series) : std::string("*");
        const auto window_sec = static_cast<std::int64_t>(
            parse_u64_param(target, "window", 0));
        const auto format = query_param(target, "format");
        if (format && *format == "csv") {
          resp.content_type = "text/csv; charset=utf-8";
          resp.body = owner.config_.recorder->to_csv(glob, window_sec);
        } else {
          resp.content_type = "application/json";
          resp.body = owner.config_.recorder->to_json(glob, window_sec);
        }
      } else if (path == "/profile" && owner.config_.profiler != nullptr) {
        route_profile(fd, conn, target);
        return;
      } else {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      }
    }
    respond(fd, conn, resp);
  }

  /// GET /profile?seconds=N&hz=H: arm the sampling profiler for one
  /// window and park the connection on the session. Same coalescing rule
  /// as /trace, keyed on (seconds, hz).
  void route_profile(int fd, Conn& conn, std::string_view target) {
    CpuProfiler& prof = *owner.config_.profiler;
    if (!CpuProfiler::supported()) {
      respond(fd, conn,
              {501, "application/json",
               "{\"error\":\"profiler not supported on this platform\"}\n"});
      return;
    }
    std::uint64_t seconds = parse_u64_param(target, "seconds", 1);
    seconds = std::clamp<std::uint64_t>(
        seconds, 1,
        static_cast<std::uint64_t>(owner.config_.max_profile_window.count()));
    std::uint64_t hz = parse_u64_param(target, "hz", 97);
    hz = std::clamp<std::uint64_t>(hz, 1, 1000);
    if (profile_active) {
      if (seconds != profile_seconds || hz != profile_hz) {
        respond(fd, conn,
                {409, "application/json",
                 conflict_body("profile capture already active",
                               {{"active_seconds", profile_seconds},
                                {"active_hz", profile_hz},
                                {"requested_seconds", seconds},
                                {"requested_hz", hz}})});
        return;
      }
    } else {
      if (!prof.start(static_cast<int>(hz))) {
        // Armed outside the exposer (e.g. a --profile-hz always-on run):
        // a timed session cannot own the stop, so refuse rather than
        // disarm someone else's profiler mid-flight.
        respond(fd, conn,
                {409, "application/json",
                 conflict_body("profiler already running outside /profile",
                               {{"running_hz",
                                 static_cast<std::uint64_t>(prof.hz())}})});
        return;
      }
      profile_active = true;
      profile_seconds = seconds;
      profile_hz = hz;
      profile_since = prof.samples();
      profile_deadline =
          Clock::now() + std::chrono::seconds(static_cast<long>(seconds));
    }
    conn.responded = true;
    conn.waiting_profile = true;
    profile_waiters.push_back(fd);
  }

  /// Render the response and start draining it; closes the connection
  /// when it fits in the socket buffer (the common case), otherwise
  /// re-arms for EPOLLOUT.
  void respond(int fd, Conn& conn, const Response& resp) {
    conn.responded = true;
    conn.waiting_trace = false;
    conn.waiting_profile = false;
    conn.out.reserve(128 + resp.body.size());
    conn.out += "HTTP/1.1 ";
    conn.out += std::to_string(resp.status);
    conn.out += ' ';
    conn.out += reason_phrase(resp.status);
    conn.out += "\r\nContent-Type: ";
    conn.out += resp.content_type;
    conn.out += "\r\nContent-Length: ";
    conn.out += std::to_string(resp.body.size());
    conn.out += "\r\nConnection: close\r\n\r\n";
    conn.out += resp.body;
    conn.out_off = 0;
    if (flush_out(fd, conn)) {
      close_conn(fd);
      return;
    }
    loop.modify(fd, EPOLLOUT | EPOLLET);
  }

  /// Drain `out` until EAGAIN; true when the connection is finished (all
  /// sent, or the peer went away and there is nothing to salvage).
  bool flush_out(int fd, Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      return true;
    }
    return true;
  }

  void close_conn(int fd) {
    loop.remove(fd);
    ::close(fd);
    conns.erase(fd);
    if (!trace_waiters.empty()) {
      trace_waiters.erase(
          std::remove(trace_waiters.begin(), trace_waiters.end(), fd),
          trace_waiters.end());
    }
    if (!profile_waiters.empty()) {
      profile_waiters.erase(
          std::remove(profile_waiters.begin(), profile_waiters.end(), fd),
          profile_waiters.end());
    }
    publish_open_conns();
  }

  /// Periodic work: complete capture sessions at their deadlines, drive
  /// the recorder's sampling clock, sweep idle connections, and pick the
  /// next epoll_wait budget.
  std::chrono::milliseconds tick() {
    const Clock::time_point now = Clock::now();
    if (trace_active && now >= trace_deadline) {
      trace_active = false;
      const std::string body = tracer().chrome_json();
      std::vector<int> waiters;
      waiters.swap(trace_waiters);
      for (const int fd : waiters) {
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        respond(fd, it->second, {200, "application/json", body});
      }
    }
    if (profile_active && now >= profile_deadline) {
      profile_active = false;
      CpuProfiler& prof = *owner.config_.profiler;
      prof.stop();
      const std::string body = prof.folded(profile_since);
      std::vector<int> waiters;
      waiters.swap(profile_waiters);
      for (const int fd : waiters) {
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        respond(fd, it->second,
                {200, "text/plain; charset=utf-8", body});
      }
    }
    std::chrono::milliseconds next = kTickInterval;
    if (owner.config_.recorder != nullptr) {
      next = std::min(next, owner.config_.recorder->maybe_sample());
    }
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns) {
      // Capture waiters are bounded by their session deadlines.
      if (conn.waiting_trace || conn.waiting_profile) continue;
      if (now - conn.last_activity > owner.config_.idle_timeout) {
        expired.push_back(fd);
      }
    }
    for (const int fd : expired) {
      if (!conns[fd].responded) {
        // Half-sent request: tell the slow client why, best effort.
        static constexpr std::string_view k408 =
            "HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(fd, k408.data(), k408.size(), MSG_NOSIGNAL);
      }
      close_conn(fd);
    }
    if (trace_active) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          trace_deadline - now);
      next = std::min(
          next, std::clamp(left, std::chrono::milliseconds(1), kTickInterval));
    }
    if (profile_active) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          profile_deadline - now);
      next = std::min(
          next, std::clamp(left, std::chrono::milliseconds(1), kTickInterval));
    }
    return std::max(next, std::chrono::milliseconds(1));
  }
};

std::unique_ptr<HttpExposer> HttpExposer::create(HttpExposerConfig config) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto exposer = std::unique_ptr<HttpExposer>(
      new HttpExposer(std::move(config), fd, ntohs(bound.sin_port)));
  if (!exposer->impl_->ok) return nullptr;
  return exposer;
}

HttpExposer::HttpExposer(HttpExposerConfig config, int listen_fd,
                         std::uint16_t port)
    : config_(std::move(config)),
      listen_fd_(listen_fd),
      port_(port),
      impl_(std::make_unique<Impl>(*this)) {
  if (!impl_->ok) return;
  thread_ = std::thread([this] {
    Tracer::instance().set_this_thread_name("http");
    impl_->loop.run();
  });
}

HttpExposer::~HttpExposer() { stop(); }

void HttpExposer::stop() {
  stopping_.store(true, std::memory_order_release);
  impl_->loop.stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone: tear down whatever connections remained.
  for (const auto& [fd, conn] : impl_->conns) ::close(fd);
  impl_->conns.clear();
  impl_->trace_waiters.clear();
  impl_->profile_waiters.clear();
  if (impl_->profile_active) {
    // An exposer-owned capture session must not leave SIGPROF armed.
    impl_->profile_active = false;
    if (config_.profiler != nullptr) config_.profiler->stop();
  }
  impl_->publish_open_conns();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace lockdown::obs
