// Non-blocking HTTP/1.1 endpoint for live observability: a collector
// process becomes scrapeable instead of only dumping metrics at exit.
//
// One thread runs a net::EventLoop (DESIGN.md §14) over the listener and
// every open connection, serving five routes, one request per connection
// (Connection: close):
//
//   GET /metrics     Prometheus text exposition of the bound Registry
//   GET /healthz     liveness JSON from a caller-supplied callback
//   GET /trace?ms=N  capture N milliseconds of pipeline spans and return
//                    them as Chrome Trace Event JSON (see obs/trace.hpp)
//   GET /history     recorded metrics history from the bound
//                    MetricsRecorder (obs/recorder.hpp); ?series=<glob>
//                    filters by series id, &window=<sec> trims to the
//                    trailing seconds, &format=csv switches to CSV
//   GET /profile     capture ?seconds=N (default 1) of CPU samples at
//                    &hz=H (default 97) via the sampling profiler
//                    (obs/profiler.hpp) and return folded stacks
//
// Connections are per-fd state machines on edge-triggered readiness: a
// read phase buffers the request head (bounded by max_request_bytes), a
// write phase drains the response through EPOLLOUT, and a periodic idle
// sweep answers half-sent or stalled clients with 408 and closes them.
//
// Capture sessions (/trace, /profile) do not block the server: waiters
// park on a shared session while /metrics and /healthz keep being served,
// and the loop's tick answers every waiter when the deadline passes. The
// coalescing rule: the FIRST requester fixes the session's parameters and
// deadline; a concurrent request with the SAME parameters joins the
// session (one window, many readers); a concurrent request with DIFFERENT
// parameters is rejected with 409 + a JSON error body naming the active
// session's parameters. Deadlines never stretch.
//
// When a MetricsRecorder is bound, the loop's tick also drives its
// sampling clock (recorder.maybe_sample()), so a live collector needs no
// extra thread for history recording.
//
// Handlers run on the loop thread while the pipeline runs, so callback
// implementations must only touch thread-safe state (the Registry and
// Tracer are; EngineStats snapshots are -- see examples/live_collector).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

namespace lockdown::obs {

class CpuProfiler;
class MetricsRecorder;
class Registry;
class Tracer;

struct HttpExposerConfig {
  /// Port to bind on 127.0.0.1; 0 lets the kernel choose (see port()).
  std::uint16_t port = 0;
  /// Source of GET /metrics; when null the route answers 404. Also hosts
  /// the exposer's own loop metrics (open-connection gauge, epoll batch
  /// histogram) when non-null.
  Registry* registry = nullptr;
  /// Source of GET /trace; defaults to Tracer::instance() when null.
  Tracer* tracer = nullptr;
  /// Source of GET /history; when null the route answers 404. The loop's
  /// tick drives its sampling clock (maybe_sample). Must outlive the
  /// exposer; do not also call MetricsRecorder::start() on it.
  MetricsRecorder* recorder = nullptr;
  /// Source of GET /profile; when null the route answers 404. Use
  /// &CpuProfiler::instance(). A session started by /profile is stopped
  /// by the loop at its deadline (or by stop()).
  CpuProfiler* profiler = nullptr;
  /// Body of GET /healthz (application/json). Default: {"status":"ok"}.
  std::function<std::string()> health;
  /// Invoked before rendering /metrics or /healthz, on the loop thread: a
  /// hook for refreshing gauges at scrape time.
  std::function<void()> before_scrape;
  /// Upper clamp for /trace?ms=N capture windows.
  std::chrono::milliseconds max_trace_window{10000};
  /// Upper clamp for /profile?seconds=N capture windows.
  std::chrono::seconds max_profile_window{30};
  /// Cap on buffered request-head bytes per connection; a head that grows
  /// past this without terminating is answered 400 and closed.
  std::size_t max_request_bytes = 8192;
  /// A connection that makes no progress for this long (half-sent
  /// request, unread response) is answered 408 (best effort) and closed.
  std::chrono::milliseconds idle_timeout{5000};
  /// Cap on concurrently open connections; excess accepts are answered
  /// 503 and closed immediately, bounding loop state against floods.
  std::size_t max_connections = 64;
};

class HttpExposer {
 public:
  /// Bind 127.0.0.1:port and start the loop thread. Null on bind failure
  /// (port taken, no sockets).
  [[nodiscard]] static std::unique_ptr<HttpExposer> create(
      HttpExposerConfig config);

  ~HttpExposer();
  HttpExposer(const HttpExposer&) = delete;
  HttpExposer& operator=(const HttpExposer&) = delete;

  /// The bound port (the kernel's choice when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted so far (any outcome), for tests and heartbeat
  /// lines.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stop the loop, close every connection, and join the thread.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// Event loop + per-connection state machines (http_exposer.cpp).
  struct Impl;

  HttpExposer(HttpExposerConfig config, int listen_fd, std::uint16_t port);

  HttpExposerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
};

}  // namespace lockdown::obs
