// Minimal blocking HTTP/1.1 endpoint for live observability: a collector
// process becomes scrapeable instead of only dumping metrics at exit.
//
// One listener thread accepts loopback connections and serves three
// routes, one request per connection (Connection: close):
//
//   GET /metrics     Prometheus text exposition of the bound Registry
//   GET /healthz     liveness JSON from a caller-supplied callback
//   GET /trace?ms=N  capture N milliseconds of pipeline spans and return
//                    them as Chrome Trace Event JSON (see obs/trace.hpp)
//
// No external dependencies, no worker pool: a metrics endpoint is scraped
// every few seconds by one Prometheus, not hammered, so a single blocking
// thread with a poll()-based accept loop is the whole server. A /trace
// capture blocks that thread for its window -- scrapes queue behind it in
// the kernel's accept backlog, which is the honest behavior for a
// single-threaded exposer.
//
// Handlers run on the listener thread while the pipeline runs, so callback
// implementations must only touch thread-safe state (the Registry and
// Tracer are; EngineStats snapshots are -- see examples/live_collector).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

namespace lockdown::obs {

class Registry;
class Tracer;

struct HttpExposerConfig {
  /// Port to bind on 127.0.0.1; 0 lets the kernel choose (see port()).
  std::uint16_t port = 0;
  /// Source of GET /metrics; when null the route answers 404.
  Registry* registry = nullptr;
  /// Source of GET /trace; defaults to Tracer::instance() when null.
  Tracer* tracer = nullptr;
  /// Body of GET /healthz (application/json). Default: {"status":"ok"}.
  std::function<std::string()> health;
  /// Invoked before rendering /metrics or /healthz, on the listener
  /// thread: a hook for refreshing gauges at scrape time.
  std::function<void()> before_scrape;
  /// Upper clamp for /trace?ms=N capture windows.
  std::chrono::milliseconds max_trace_window{10000};
};

class HttpExposer {
 public:
  /// Bind 127.0.0.1:port and start the listener thread. Null on bind
  /// failure (port taken, no sockets).
  [[nodiscard]] static std::unique_ptr<HttpExposer> create(
      HttpExposerConfig config);

  ~HttpExposer();
  HttpExposer(const HttpExposer&) = delete;
  HttpExposer& operator=(const HttpExposer&) = delete;

  /// The bound port (the kernel's choice when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (any status), for tests and heartbeat lines.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stop accepting and join the listener thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  HttpExposer(HttpExposerConfig config, int listen_fd, std::uint16_t port);
  void serve();
  void handle_connection(int fd);

  HttpExposerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace lockdown::obs
