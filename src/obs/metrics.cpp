#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lockdown::obs {

namespace {

// Prometheus renders integral values without a decimal point; %g handles
// the rest (scientific only when warranted).
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, const std::string& extra_label,
                   const std::string& value) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void append_header(std::string& out, std::string& last_name,
                   const std::string& name, const std::string& help,
                   const char* type) {
  if (name == last_name) return;
  last_name = name;
  if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += '\n';
}

}  // namespace

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

Counter& Registry::counter(std::string_view name, std::string_view labels,
                           std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[Key(std::string(name), std::string(labels))];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Counter>();
  }
  return *entry.metric;
}

bool Registry::remove_counter(std::string_view name, std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.erase(Key(std::string(name), std::string(labels))) > 0;
}

bool Registry::remove_gauge(std::string_view name, std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_.erase(Key(std::string(name), std::string(labels))) > 0;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels,
                       std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[Key(std::string(name), std::string(labels))];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Gauge>();
  }
  return *entry.metric;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds,
                               std::string_view labels, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[Key(std::string(name), std::string(labels))];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *entry.metric;
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    s.counters.push_back(
        {key.first, key.second, entry.help, entry.metric->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    s.gauges.push_back({key.first, key.second, entry.help, entry.metric->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    HistogramSnapshot h;
    h.name = key.first;
    h.labels = key.second;
    h.help = entry.help;
    h.bounds = entry.metric->bounds();
    // Snapshot the count BEFORE the buckets. observe() bumps its bucket
    // first and the count last (release); count() loads with acquire, so
    // every one of these `count` observations has its bucket increment
    // visible below. Buckets may additionally contain increments from
    // observations newer than `count` -- capping the cumulative sums at
    // `count` trims exactly those, keeping the series monotone and the
    // +Inf bucket equal to _count, which concurrent-observe scrapes would
    // otherwise violate.
    h.count = entry.metric->count();
    h.cumulative.reserve(h.bounds.size() + 1);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      running += entry.metric->bucket(i);
      h.cumulative.push_back(std::min(running, h.count));
    }
    h.sum = entry.metric->sum();
    s.histograms.push_back(std::move(h));
  }
  return s;
}

std::uint64_t RegistrySnapshot::counter_value(std::string_view name,
                                              std::string_view labels) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  return 0;
}

std::string RegistrySnapshot::to_text() const {
  std::string out;
  std::string last_name;
  for (const CounterSnapshot& c : counters) {
    append_header(out, last_name, c.name, c.help, "counter");
    append_series(out, c.name, c.labels, {}, std::to_string(c.value));
  }
  for (const GaugeSnapshot& g : gauges) {
    append_header(out, last_name, g.name, g.help, "gauge");
    append_series(out, g.name, g.labels, {}, format_value(g.value));
  }
  for (const HistogramSnapshot& h : histograms) {
    append_header(out, last_name, h.name, h.help, "histogram");
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf";
      append_series(out, h.name + "_bucket", h.labels, "le=\"" + le + "\"",
                    std::to_string(h.cumulative[i]));
    }
    append_series(out, h.name + "_sum", h.labels, {}, format_value(h.sum));
    append_series(out, h.name + "_count", h.labels, {}, std::to_string(h.count));
  }
  return out;
}

}  // namespace lockdown::obs
