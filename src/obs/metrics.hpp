// Lightweight metrics substrate for the collector stack: monotonic
// counters, gauges, and fixed-bucket histograms living in a named
// registry. The hot path is lock-free -- a metric handle is a stable
// pointer to cache-padded atomics, and increments are single relaxed
// fetch_adds -- while registration and snapshotting take a mutex (both are
// cold: registration happens at wiring time, snapshots at dump cadence).
//
// Exposition follows the Prometheus text format (HELP/TYPE lines,
// `name{labels} value`, cumulative `_bucket{le=...}` histogram rows) so
// dumps can be scraped or diffed with standard tooling, but nothing here
// depends on an external client library.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lockdown::obs {

/// Monotonic counter. add() is a relaxed atomic fetch_add: safe from any
/// thread, a handful of ns even under contention, ~1 ns uncontended.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins gauge (doubles, like Prometheus gauges).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket bounds are set at registration and never
/// change, so observe() is a bounded scan plus two relaxed fetch_adds.
/// Buckets count observations <= bound (Prometheus `le` semantics); an
/// implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1)) {}

  void observe(double v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
    // The count is bumped last, with release: a snapshot that reads the
    // count first (acquire) is then guaranteed to see at least that many
    // bucket increments, so `+Inf bucket == _count` can be restored
    // exactly (see Registry::snapshot).
    count_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `n` bucket bounds starting at `start`, multiplied by `factor` each step
/// (the usual shape for queue depths and latencies).
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t n);

struct CounterSnapshot {
  std::string name;
  std::string labels;  ///< `key="value",...` without braces; may be empty
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string labels;
  std::string help;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string labels;
  std::string help;
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;  ///< bounds.size()+1 entries, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered metric.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter by (name, labels); 0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            std::string_view labels = {}) const;
  /// Prometheus text exposition (format 0.0.4).
  [[nodiscard]] std::string to_text() const;
};

/// Named metric registry. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; registering the same
/// (name, labels) twice returns the same instance, so independent
/// components can bind the same metric and share it.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {},
               std::string_view help = {});
  /// `upper_bounds` must be sorted ascending; only the first registration's
  /// bounds are kept.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       std::string_view labels = {}, std::string_view help = {});

  /// Unregister the counter under (name, labels); later snapshots no
  /// longer show the series. Returns false when absent. The handle
  /// previously returned by counter() for this entry is destroyed --
  /// callers own the ordering and must guarantee no thread still uses it
  /// (the monitoring-object layer unbinds only after routing stopped).
  bool remove_counter(std::string_view name, std::string_view labels = {});
  /// Same contract for gauges (the stream layer unbinds per-object window
  /// gauges on shutdown).
  bool remove_gauge(std::string_view name, std::string_view labels = {});

  [[nodiscard]] RegistrySnapshot snapshot() const;
  [[nodiscard]] std::string expose_text() const { return snapshot().to_text(); }

 private:
  template <typename T>
  struct Entry {
    std::string help;
    std::unique_ptr<T> metric;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<Key, Entry<Counter>> counters_;
  std::map<Key, Entry<Gauge>> gauges_;
  std::map<Key, Entry<Histogram>> histograms_;
};

}  // namespace lockdown::obs
