#include "obs/profiler.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#if defined(__linux__) && __has_include(<execinfo.h>)
#define LOCKDOWN_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cstdlib>
#include <cstring>
#endif

namespace lockdown::obs {

#ifdef LOCKDOWN_PROFILER_SUPPORTED

namespace {

// One sample slot: seqlock generation + captured frames. Everything the
// signal handler writes is a relaxed/release atomic into memory allocated
// before the handler is installed -- no locks, no malloc, no TLS init.
struct SampleSlot {
  /// 0 while a write is in flight, else (claim index + 1).
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uintptr_t> frames[CpuProfiler::kMaxFrames];
};

SampleSlot g_ring[CpuProfiler::kRingSlots];
/// Next claim index; the handler's only cross-thread coordination.
std::atomic<std::uint64_t> g_head{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_active{false};

/// Serializes start/stop/folded (cold control plane). The handler itself
/// never takes it.
std::mutex g_control_mu;
bool g_running = false;
int g_hz = 0;
struct sigaction g_prev_action;

void sigprof_handler(int, siginfo_t*, void*) {
  // Save and restore errno: backtrace() and our stores may clobber it and
  // the interrupted thread could be mid-syscall-error-check.
  const int saved_errno = errno;
  if (g_active.load(std::memory_order_relaxed)) {
    void* frames[CpuProfiler::kMaxFrames + 2];
    // backtrace() here is safe because start() already forced the lazy
    // libgcc_s load on a normal thread (see header).
    const int depth = backtrace(frames, CpuProfiler::kMaxFrames + 2);
    // Frame 0 is this handler and frame 1 the signal trampoline; neither
    // belongs to the interrupted code.
    const int skip = depth > 2 ? 2 : 0;
    const std::uint64_t i = g_head.fetch_add(1, std::memory_order_relaxed);
    if (i >= CpuProfiler::kRingSlots) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    }
    SampleSlot& slot = g_ring[i % CpuProfiler::kRingSlots];
    slot.seq.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    const std::uint32_t n = static_cast<std::uint32_t>(depth - skip);
    for (std::uint32_t f = 0; f < n; ++f) {
      slot.frames[f].store(reinterpret_cast<std::uintptr_t>(frames[skip + f]),
                           std::memory_order_relaxed);
    }
    slot.depth.store(n, std::memory_order_relaxed);
    slot.seq.store(i + 1, std::memory_order_release);
  }
  errno = saved_errno;
}

std::string symbolize(std::uintptr_t pc) {
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  // Static / stripped frames have no dynamic symbol; keep the address so
  // the stack stays structurally intact in the flamegraph.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

}  // namespace

CpuProfiler& CpuProfiler::instance() {
  static CpuProfiler p;
  return p;
}

bool CpuProfiler::supported() noexcept { return true; }

bool CpuProfiler::start(int hz) {
  if (hz <= 0) return false;
  const std::lock_guard<std::mutex> lock(g_control_mu);
  if (g_running) return false;

  // Warm-up: force backtrace()'s lazy libgcc_s initialization (which
  // allocates) on this ordinary thread, so the handler never triggers it.
  void* warmup[4];
  backtrace(warmup, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_prev_action) != 0) return false;

  g_active.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = hz == 1 ? 1 : 0;
  timer.it_interval.tv_usec = hz == 1 ? 0 : 1000000 / hz;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    return false;
  }
  g_running = true;
  g_hz = hz;
  return true;
}

void CpuProfiler::stop() {
  const std::lock_guard<std::mutex> lock(g_control_mu);
  if (!g_running) return;
  struct itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  // Disarm the handler's work before restoring the disposition: a SIGPROF
  // already in flight between the two calls then no-ops instead of racing
  // the teardown.
  g_active.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_prev_action, nullptr);
  g_running = false;
  g_hz = 0;
}

bool CpuProfiler::running() const noexcept {
  return g_active.load(std::memory_order_acquire);
}

int CpuProfiler::hz() const noexcept {
  const std::lock_guard<std::mutex> lock(g_control_mu);
  return g_hz;
}

std::uint64_t CpuProfiler::samples() const noexcept {
  return g_head.load(std::memory_order_acquire);
}

std::uint64_t CpuProfiler::dropped() const noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string CpuProfiler::folded(std::uint64_t since_sample) const {
  const std::lock_guard<std::mutex> lock(g_control_mu);
  const std::uint64_t head = g_head.load(std::memory_order_acquire);
  std::uint64_t begin = since_sample;
  if (head > kRingSlots && begin < head - kRingSlots) {
    begin = head - kRingSlots;  // older samples were overwritten
  }

  std::map<std::string, std::uint64_t> stacks;
  std::map<std::uintptr_t, std::string> symbols;
  std::vector<std::uintptr_t> frames(kMaxFrames);
  for (std::uint64_t i = begin; i < head; ++i) {
    const SampleSlot& slot = g_ring[i % kRingSlots];
    // Seqlock read: generation must match the claim index before AND
    // after the payload copy, else the slot was overwritten mid-read.
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    const std::uint32_t depth = slot.depth.load(std::memory_order_relaxed);
    if (depth == 0 || depth > kMaxFrames) continue;
    for (std::uint32_t f = 0; f < depth; ++f) {
      frames[f] = slot.frames[f].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != i + 1) continue;

    // backtrace() lists the leaf first; folded format wants root first.
    std::string stack;
    for (std::uint32_t f = depth; f-- > 0;) {
      auto it = symbols.find(frames[f]);
      if (it == symbols.end()) {
        it = symbols.emplace(frames[f], symbolize(frames[f])).first;
      }
      if (!stack.empty()) stack += ';';
      stack += it->second;
    }
    ++stacks[stack];
  }

  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

#else  // !LOCKDOWN_PROFILER_SUPPORTED

CpuProfiler& CpuProfiler::instance() {
  static CpuProfiler p;
  return p;
}
bool CpuProfiler::supported() noexcept { return false; }
bool CpuProfiler::start(int) { return false; }
void CpuProfiler::stop() {}
bool CpuProfiler::running() const noexcept { return false; }
int CpuProfiler::hz() const noexcept { return 0; }
std::uint64_t CpuProfiler::samples() const noexcept { return 0; }
std::uint64_t CpuProfiler::dropped() const noexcept { return 0; }
std::string CpuProfiler::folded(std::uint64_t) const { return {}; }

#endif  // LOCKDOWN_PROFILER_SUPPORTED

}  // namespace lockdown::obs
