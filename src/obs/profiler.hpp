// Sampling CPU profiler (DESIGN.md §16): SIGPROF-driven stack sampling at
// a configurable rate, exported as flamegraph.pl-compatible folded stacks
// via GET /profile?seconds=N&hz=H. No external profiler, no ptrace, no
// perf binary -- the collector profiles itself in production.
//
// Mechanism: setitimer(ITIMER_PROF) fires SIGPROF every 1/hz seconds of
// process CPU time; the kernel delivers it to whichever thread is running,
// so samples land on threads in proportion to the CPU they burn -- exactly
// the per-thread attribution a flamegraph wants. The handler captures a
// backtrace() into a slot of a fixed global ring claimed with one relaxed
// fetch_add, then commits it with the TraceRing seqlock discipline (PR-5):
// generation 0 while the write is in flight, claim-index+1 once committed,
// so a reader that races an overwrite skips the torn slot instead of
// blocking the handler.
//
// Signal-safety rules (enforced here, documented in DESIGN.md §16):
//   - the handler touches only async-signal-safe state: relaxed/release
//     atomics in a pre-allocated ring, plus backtrace();
//   - glibc's backtrace() lazily dlopen()s libgcc_s on first use -- which
//     malloc()s, which is NOT safe in a handler. start() therefore takes a
//     warm-up backtrace() on the calling thread BEFORE installing the
//     handler, so every in-handler call hits the already-initialized path;
//   - symbolization (dladdr + __cxa_demangle) allocates, so it happens at
//     export time in folded(), never in the handler.
//
// Overhead: a 97 Hz profile costs ~97 handler runs per CPU-second, each a
// few microseconds -- bench_obs_recorder gates the profiler-on ingest
// throughput at >= 0.97x of profiler-off.
//
// On platforms without <execinfo.h> the class compiles to a stub whose
// start() returns false (supported() tells callers up front).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lockdown::obs {

class CpuProfiler {
 public:
  /// The process-wide profiler: SIGPROF has one handler per process, so
  /// the sampler is necessarily a singleton.
  [[nodiscard]] static CpuProfiler& instance();

  /// True when this build/platform can sample (Linux with execinfo).
  [[nodiscard]] static bool supported() noexcept;

  /// Install the handler and arm the timer at `hz` samples per CPU-second.
  /// Returns false when already running or unsupported. Takes the warm-up
  /// backtrace() before arming (see signal-safety rules above).
  bool start(int hz);

  /// Disarm the timer and restore the previous SIGPROF disposition.
  /// Idempotent. Samples already captured stay readable.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] int hz() const noexcept;

  /// Total samples captured since process start (monotonic; survives
  /// stop/start cycles). A /profile session diffs this across its window.
  [[nodiscard]] std::uint64_t samples() const noexcept;
  /// Samples lost to ring overwrite before any export read them.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Render every committed sample with index >= `since_sample` as folded
  /// stacks ("frame;frame;...;leaf count\n", root first), symbolized via
  /// dladdr and demangled. Samples older than the ring retains are
  /// silently absent (counted in dropped()).
  [[nodiscard]] std::string folded(std::uint64_t since_sample = 0) const;

  static constexpr std::size_t kMaxFrames = 32;
  static constexpr std::size_t kRingSlots = 8192;

 private:
  CpuProfiler() = default;
};

}  // namespace lockdown::obs
