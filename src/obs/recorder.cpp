#include "obs/recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace lockdown::obs {

namespace {

std::int64_t unix_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Matches the text-exposition formatting (metrics.cpp) so histogram bucket
// ids carry the same le="..." strings a /metrics scrape shows.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Series values keep full precision: integral values print without a
// decimal point (counter reconstruction stays textually exact), the rest
// round-trip through %.17g.
std::string format_point(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string series_id(const std::string& name, const std::string& labels,
                      const std::string& extra_label = {}) {
  std::string id = name;
  if (!labels.empty() || !extra_label.empty()) {
    id += '{';
    id += labels;
    if (!labels.empty() && !extra_label.empty()) id += ',';
    id += extra_label;
    id += '}';
  }
  return id;
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

// Ids contain commas and double quotes (label lists, le="...") -- always
// quote the CSV field and double interior quotes (RFC 4180).
void csv_quote_into(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view id) {
  // Iterative two-pointer match with single-star backtracking: on
  // mismatch, retry from the last `*` consuming one more character.
  std::size_t p = 0, s = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (s < id.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == id[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

MetricsRecorder::MetricsRecorder(Registry& registry, RecorderConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.interval.count() <= 0) config_.interval = std::chrono::milliseconds(1);
  stamps_.assign(config_.capacity, 0);
  occupancy_gauge_ = &registry_.gauge(
      "history_ring_occupancy", {},
      "Recorder ring fill level, retained samples / capacity");
  series_gauge_ = &registry_.gauge("history_series", {},
                                   "Series tracked by the metrics recorder");
}

MetricsRecorder::~MetricsRecorder() {
  stop();
  const std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
}

MetricsRecorder::Series& MetricsRecorder::series_slot(const std::string& id,
                                                      std::string_view type,
                                                      bool counter_like) {
  auto it = std::lower_bound(
      series_.begin(), series_.end(), id,
      [](const Series& s, const std::string& key) { return s.id < key; });
  if (it != series_.end() && it->id == id) return *it;
  Series fresh;
  fresh.id = id;
  fresh.type = std::string(type);
  fresh.first_tick = tick_;
  if (counter_like) {
    fresh.deltas.assign(config_.capacity, 0);
  } else {
    fresh.values.assign(config_.capacity, 0.0);
  }
  return *series_.insert(it, std::move(fresh));
}

void MetricsRecorder::record_counter_like(const std::string& id,
                                          std::string_view type,
                                          std::uint64_t absolute) {
  Series& s = series_slot(id, type, /*counter_like=*/true);
  const std::size_t slot = static_cast<std::size_t>(tick_ % config_.capacity);
  if (s.ticks == 0) {
    // First sample: the anchor is the absolute value and the slot holds a
    // zero delta, so reconstruction at this tick is exact immediately.
    s.anchor = absolute;
    s.deltas[slot] = 0;
  } else {
    if (s.ticks >= config_.capacity) s.anchor += s.deltas[slot];
    // uint64 wraparound keeps anchor + prefix-sum == absolute (mod 2^64)
    // even if a "monotonic" input ever steps backwards.
    s.deltas[slot] = absolute - s.last_absolute;
  }
  s.last_absolute = absolute;
  ++s.ticks;
  s.seen = true;
}

void MetricsRecorder::record_gauge_like(const std::string& id,
                                        std::string_view type, double value) {
  Series& s = series_slot(id, type, /*counter_like=*/false);
  s.values[static_cast<std::size_t>(tick_ % config_.capacity)] = value;
  ++s.ticks;
  s.seen = true;
}

void MetricsRecorder::sample_locked() {
  const RegistrySnapshot snap = registry_.snapshot();
  const std::int64_t unix_ms = unix_now_ms();
  stamps_[static_cast<std::size_t>(tick_ % config_.capacity)] = unix_ms;

  for (Series& s : series_) s.seen = false;
  for (const CounterSnapshot& c : snap.counters) {
    record_counter_like(series_id(c.name, c.labels), "counter", c.value);
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    record_gauge_like(series_id(g.name, g.labels), "gauge", g.value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf";
      record_counter_like(
          series_id(h.name + "_bucket", h.labels, "le=\"" + le + "\""),
          "histogram_bucket", h.cumulative[i]);
    }
    record_counter_like(series_id(h.name + "_count", h.labels),
                        "histogram_count", h.count);
    record_gauge_like(series_id(h.name + "_sum", h.labels), "histogram_sum",
                      h.sum);
  }
  // A series missing from this snapshot was unregistered
  // (remove_counter/remove_gauge); retire it so a later re-registration
  // starts a fresh ring instead of inheriting stale deltas.
  std::erase_if(series_, [](const Series& s) { return !s.seen; });

  ++tick_;
  if (!config_.journal_path.empty()) journal_write_locked(unix_ms);
  if (occupancy_gauge_ != nullptr) occupancy_gauge_->set(ring_occupancy_locked());
  if (series_gauge_ != nullptr) {
    series_gauge_->set(static_cast<double>(series_.size()));
  }
}

double MetricsRecorder::ring_occupancy_locked() const {
  return static_cast<double>(std::min<std::uint64_t>(tick_, config_.capacity)) /
         static_cast<double>(config_.capacity);
}

void MetricsRecorder::journal_write_locked(std::int64_t unix_ms) {
  if (journal_ == nullptr) {
    const std::string path =
        config_.journal_path + "." + std::to_string(unix_ms) + ".csv";
    journal_ = std::fopen(path.c_str(), "w");
    if (journal_ == nullptr) return;  // disk trouble must not stop sampling
    std::fputs("unix_ms,series,type,value\n", journal_);
    journal_samples_ = 0;
  }
  std::string row;
  for (const Series& s : series_) {
    row.clear();
    row += std::to_string(unix_ms);
    row += ',';
    csv_quote_into(row, s.id);
    row += ',';
    row += s.type;
    row += ',';
    const double value =
        s.values.empty()
            ? static_cast<double>(s.last_absolute)
            : s.values[static_cast<std::size_t>((tick_ - 1) % config_.capacity)];
    row += format_point(value);
    row += '\n';
    std::fputs(row.c_str(), journal_);
  }
  std::fflush(journal_);
  if (++journal_samples_ >= config_.journal_rotate_samples) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
}

void MetricsRecorder::sample() {
  const std::lock_guard<std::mutex> lock(mu_);
  sample_locked();
  last_sample_ = std::chrono::steady_clock::now();
  sampled_once_ = true;
}

std::chrono::milliseconds MetricsRecorder::maybe_sample() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (!sampled_once_ || now - last_sample_ >= config_.interval) {
    sample_locked();
    last_sample_ = now;
    sampled_once_ = true;
    return config_.interval;
  }
  const auto due = std::chrono::duration_cast<std::chrono::milliseconds>(
      config_.interval - (now - last_sample_));
  return std::max(due, std::chrono::milliseconds(1));
}

void MetricsRecorder::start() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void MetricsRecorder::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  const std::lock_guard<std::mutex> lock(stop_mu_);
  started_ = false;
}

void MetricsRecorder::run() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    lock.unlock();
    sample();
    lock.lock();
    stop_cv_.wait_for(lock, config_.interval, [this] { return stopping_; });
  }
}

std::vector<HistorySeries> MetricsRecorder::query(std::string_view glob,
                                                  std::int64_t window_sec) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistorySeries> out;
  if (tick_ == 0) return out;
  const std::size_t n = config_.capacity;
  const std::int64_t newest =
      stamps_[static_cast<std::size_t>((tick_ - 1) % n)];
  const std::int64_t cutoff =
      window_sec > 0 ? newest - window_sec * 1000 : INT64_MIN;
  for (const Series& s : series_) {
    if (!glob.empty() && glob != "*" && !glob_match(glob, s.id)) continue;
    HistorySeries hs;
    hs.id = s.id;
    hs.type = s.type;
    const std::uint64_t retained = std::min<std::uint64_t>(s.ticks, n);
    const std::uint64_t begin_t = s.first_tick + (s.ticks - retained);
    std::uint64_t running = s.anchor;
    hs.points.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t t = begin_t; t < s.first_tick + s.ticks; ++t) {
      const std::size_t slot = static_cast<std::size_t>(t % n);
      double value;
      if (s.values.empty()) {
        running += s.deltas[slot];
        value = static_cast<double>(running);
      } else {
        value = s.values[slot];
      }
      const std::int64_t stamp = stamps_[slot];
      if (stamp < cutoff) continue;
      hs.points.emplace_back(stamp, value);
    }
    if (!hs.points.empty()) out.push_back(std::move(hs));
  }
  return out;
}

std::string MetricsRecorder::to_json(std::string_view glob,
                                     std::int64_t window_sec) const {
  const std::vector<HistorySeries> matched = query(glob, window_sec);
  std::string out = "{\"interval_ms\":";
  out += std::to_string(config_.interval.count());
  out += ",\"samples\":";
  out += std::to_string(samples());
  out += ",\"series\":[";
  bool first = true;
  for (const HistorySeries& s : matched) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":\"";
    json_escape_into(out, s.id);
    out += "\",\"type\":\"";
    json_escape_into(out, s.type);
    out += "\",\"points\":[";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      if (i != 0) out += ',';
      out += '[';
      out += std::to_string(s.points[i].first);
      out += ',';
      out += format_point(s.points[i].second);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsRecorder::to_csv(std::string_view glob,
                                    std::int64_t window_sec) const {
  const std::vector<HistorySeries> matched = query(glob, window_sec);
  std::string out = "unix_ms,series,type,value\n";
  for (const HistorySeries& s : matched) {
    for (const auto& [stamp, value] : s.points) {
      out += std::to_string(stamp);
      out += ',';
      csv_quote_into(out, s.id);
      out += ',';
      out += s.type;
      out += ',';
      out += format_point(value);
      out += '\n';
    }
  }
  return out;
}

std::uint64_t MetricsRecorder::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tick_;
}

std::size_t MetricsRecorder::series() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

double MetricsRecorder::ring_occupancy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_occupancy_locked();
}

}  // namespace lockdown::obs
