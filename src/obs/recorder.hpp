// Flight recorder for the metrics registry (DESIGN.md §16): a scrape-only
// /metrics shows the current instant, so anything that happens between two
// scrapes -- a traffic dip, a backpressure episode, a detector firing -- is
// invisible. The MetricsRecorder snapshots the whole Registry every
// interval into fixed-size per-series ring buffers, so the process carries
// its own recent history and GET /history can reconstruct the exact series
// an external scraper would have collected, with zero external
// dependencies.
//
// Storage is delta-encoded per sample: counters keep a uint64 delta per
// slot plus a rolling anchor (the absolute value just before the oldest
// retained slot, advanced as the ring overwrites), so reconstruction
// `anchor + prefix-sum(deltas)` is EXACT -- integer sums, no float drift.
// Gauges keep the sampled value. Histograms keep per-bucket deltas (one
// flat stride per slot) plus a sum delta, reconstructed cumulatively the
// same way. A series that disappears from a snapshot (unbind_metrics) is
// retired from the recorder; one that appears mid-run starts recording at
// its first sampled tick.
//
// Ticking: start() runs an owned sampling thread; alternatively the owner
// drives maybe_sample() from an event-loop TickFn (the HttpExposer does
// this when a recorder is bound, so a --listen daemon needs no extra
// thread). sample() forces one tick from any thread; all entry points
// serialize on one mutex (sampling is cold -- a registry snapshot plus a
// few hundred ring stores per tick).
//
// Export: query()/to_json()/to_csv() reconstruct absolute series over the
// trailing `window_sec` seconds, filtered by a `*`/`?` glob over
// "name{labels}" ids. CSV is long-format (`unix_ms,series,type,value`) --
// pandas/Grafana ready. An optional on-disk journal appends every sample
// as CSV and rotates like trace slices (a new `<base>.<unix_ms>.csv` file
// every journal_rotate_samples ticks).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace lockdown::obs {

/// `*` matches any run (including empty), `?` any single character;
/// everything else is literal. Matches the whole id.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view id);

struct RecorderConfig {
  /// Sampling period for start()/maybe_sample().
  std::chrono::milliseconds interval{1000};
  /// Samples retained per series (ring capacity; older ticks fall off).
  std::size_t capacity = 512;
  /// Journal base path; empty disables the journal. Files are created as
  /// `<journal_path>.<unix_ms>.csv`.
  std::string journal_path;
  /// Samples per journal file before rotating to a fresh one.
  std::size_t journal_rotate_samples = 3600;
};

/// One reconstructed series, absolute values per retained tick.
struct HistorySeries {
  std::string id;    ///< "name{labels}" ("name" when unlabeled)
  std::string type;  ///< "counter" | "gauge" | "histogram_bucket" | ...
  /// (unix milliseconds, value) per retained sample, oldest first.
  std::vector<std::pair<std::int64_t, double>> points;
};

class MetricsRecorder {
 public:
  /// `registry` must outlive the recorder.
  MetricsRecorder(Registry& registry, RecorderConfig config);
  ~MetricsRecorder();

  MetricsRecorder(const MetricsRecorder&) = delete;
  MetricsRecorder& operator=(const MetricsRecorder&) = delete;

  /// Take one sample now (any thread; serialized internally).
  void sample();

  /// Tick-driven sampling: samples when `interval` has elapsed since the
  /// last tick and returns the time until the next one is due (an
  /// event-loop TickFn can return this as its wait budget).
  std::chrono::milliseconds maybe_sample();

  /// Start the owned sampling thread (idempotent). Use either start() or
  /// external maybe_sample() ticking, not both.
  void start();
  /// Stop and join the owned thread (idempotent; destructor calls it).
  void stop();

  /// Reconstructed absolute series whose id matches `glob`, restricted to
  /// the trailing `window_sec` seconds (0 = everything retained).
  /// Counter/histogram reconstruction is exact (integer prefix sums over
  /// the retained deltas anchored at the pre-ring absolute value).
  [[nodiscard]] std::vector<HistorySeries> query(std::string_view glob,
                                                 std::int64_t window_sec) const;

  /// {"interval_ms":..,"samples":..,"series":[{"id":..,"type":..,
  ///  "points":[[unix_ms,value],..]},..]}
  [[nodiscard]] std::string to_json(std::string_view glob,
                                    std::int64_t window_sec) const;
  /// Long format: header "unix_ms,series,type,value", one row per point.
  [[nodiscard]] std::string to_csv(std::string_view glob,
                                   std::int64_t window_sec) const;

  /// Sampling ticks taken so far.
  [[nodiscard]] std::uint64_t samples() const;
  /// Live (non-retired) series being recorded.
  [[nodiscard]] std::size_t series() const;
  /// Retained samples / capacity in [0,1] -- the ring fill level the
  /// heartbeat line reports.
  [[nodiscard]] double ring_occupancy() const;

  [[nodiscard]] const RecorderConfig& config() const noexcept { return config_; }

 private:
  /// One recorded series. Every sampled quantity is flattened into either
  /// a counter-like series (uint64 delta ring + rolling anchor; counters,
  /// histogram buckets, histogram counts) or a gauge-like series (double
  /// value ring; gauges, histogram sums). The ring retains the trailing
  /// min(ticks, capacity) global ticks.
  struct Series {
    std::string id;
    std::string type;
    /// Absolute value immediately before the oldest retained slot
    /// (counter-like only); reconstruction is anchor + prefix-sum(deltas).
    std::uint64_t anchor = 0;
    std::uint64_t last_absolute = 0;    ///< previous sample, for deltas
    std::vector<std::uint64_t> deltas;  ///< counter-like ring
    std::vector<double> values;         ///< gauge-like ring
    std::uint64_t first_tick = 0;       ///< global tick of the first sample
    std::uint64_t ticks = 0;            ///< samples recorded into this ring
    bool seen = false;                  ///< touched by the current sweep
  };

  void sample_locked();
  void record_counter_like(const std::string& id, std::string_view type,
                           std::uint64_t absolute);
  void record_gauge_like(const std::string& id, std::string_view type,
                         double value);
  Series& series_slot(const std::string& id, std::string_view type,
                      bool counter_like);
  void journal_write_locked(std::int64_t unix_ms);
  [[nodiscard]] double ring_occupancy_locked() const;
  void run();

  Registry& registry_;
  RecorderConfig config_;

  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::vector<std::int64_t> stamps_;  ///< unix_ms ring, shared by all series
  std::uint64_t tick_ = 0;            ///< global sample tick counter
  std::chrono::steady_clock::time_point last_sample_{};
  bool sampled_once_ = false;

  std::FILE* journal_ = nullptr;
  std::size_t journal_samples_ = 0;

  Gauge* occupancy_gauge_ = nullptr;  ///< history_ring_occupancy
  Gauge* series_gauge_ = nullptr;     ///< history_series

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace lockdown::obs
