#include "obs/trace.hpp"

#include <cstdio>
#include <thread>
#include <utility>

namespace lockdown::obs {

TraceRing::TraceRing(std::size_t min_capacity, std::uint32_t tid) : tid_(tid) {
  std::size_t cap = 2;
  while (cap < min_capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

std::size_t TraceRing::drain(std::vector<SpanEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t start = drained_.load(std::memory_order_relaxed);
  if (head - start > capacity()) {
    // Everything older than one capacity has been overwritten (and was
    // counted into dropped_ by the writer as it happened).
    start = head - capacity();
  }
  std::size_t appended = 0;
  for (std::uint64_t j = start; j != head; ++j) {
    Slot& s = slots_[j & mask_];
    // Seqlock read: the generation must match before and after the payload
    // copy, otherwise the writer lapped us mid-read and the slot now
    // belongs to a newer span (which a later drain will pick up).
    if (s.seq.load(std::memory_order_acquire) != j + 1) continue;
    SpanEvent e;
    e.name_id = s.name.load(std::memory_order_relaxed);
    e.tid = tid_;
    e.t_start_ns = s.t_start.load(std::memory_order_relaxed);
    e.t_end_ns = s.t_end.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != j + 1) continue;
    out.push_back(e);
    ++appended;
  }
  drained_.store(head, std::memory_order_release);
  return appended;
}

namespace {

/// Tracer identity for the thread-local ring cache: unique across the
/// process lifetime, never reused, so a cache entry for a destroyed tracer
/// can never alias a new one allocated at the same address.
std::atomic<std::uint64_t>& tracer_id_source() {
  static std::atomic<std::uint64_t> next{1};
  return next;
}

struct TlsRingEntry {
  std::uint64_t tracer_id;
  TraceRing* ring;
};

thread_local std::vector<TlsRingEntry> tls_rings;

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 2 : ring_capacity),
      epoch_ns_(trace_now_ns()),
      id_for_tls_(tracer_id_source().fetch_add(1, std::memory_order_relaxed)) {
  // Reserve name id 0 as "unknown" so a zeroed slot never aliases a real
  // span name.
  names_.emplace_back("trace", "unknown");
}

Tracer::~Tracer() = default;

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint32_t Tracer::intern(std::string_view category, std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::pair(std::string(category), std::string(name));
  const auto it = name_ids_.find(key);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(key);
  name_ids_.emplace(std::move(key), id);
  return id;
}

TraceRing& Tracer::this_thread_ring() {
  for (const TlsRingEntry& e : tls_rings) {
    if (e.tracer_id == id_for_tls_) return *e.ring;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const auto tid = static_cast<std::uint32_t>(threads_.size());
  threads_.push_back({std::make_unique<TraceRing>(ring_capacity_, tid), {}});
  TraceRing* ring = threads_.back().ring.get();
  tls_rings.push_back({id_for_tls_, ring});
  return *ring;
}

void Tracer::set_this_thread_name(std::string name) {
  const std::uint32_t tid = this_thread_ring().tid();
  const std::lock_guard<std::mutex> lock(mu_);
  threads_[tid].name = std::move(name);
}

std::size_t Tracer::drain(std::vector<SpanEvent>& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (ThreadEntry& t : threads_) n += t.ring->drain(out);
  return n;
}

void Tracer::discard() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (ThreadEntry& t : threads_) t.ring->discard();
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const ThreadEntry& t : threads_) n += t.ring->dropped();
  return n;
}

std::size_t Tracer::threads() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::chrome_json() {
  std::vector<SpanEvent> spans;
  std::vector<std::pair<std::string, std::string>> names;
  std::vector<std::string> thread_names;
  std::uint64_t dropped_total = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (ThreadEntry& t : threads_) {
      t.ring->drain(spans);
      dropped_total += t.ring->dropped();
      thread_names.push_back(t.name);
    }
    names = names_;
  }

  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":\"";
  out += std::to_string(dropped_total);
  out += "\"},\"traceEvents\":[";
  bool first = true;
  for (std::size_t tid = 0; tid < thread_names.size(); ++tid) {
    if (thread_names[tid].empty()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, thread_names[tid]);
    out += "\"}}";
  }
  for (const SpanEvent& e : spans) {
    if (!first) out += ',';
    first = false;
    const auto& [cat, name] =
        e.name_id < names.size() ? names[e.name_id] : names[0];
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.t_start_ns >= epoch_ns_ ? e.t_start_ns - epoch_ns_ : 0);
    out += ",\"dur\":";
    append_us(out, e.t_end_ns >= e.t_start_ns ? e.t_end_ns - e.t_start_ns : 0);
    out += ",\"cat\":\"";
    append_json_escaped(out, cat);
    out += "\",\"name\":\"";
    append_json_escaped(out, name);
    out += "\",\"args\":{\"arg\":";
    out += std::to_string(e.arg);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::capture_chrome_json(std::chrono::milliseconds window) {
  discard();
  std::this_thread::sleep_for(window);
  return chrome_json();
}

}  // namespace lockdown::obs
